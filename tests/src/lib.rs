//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/` (one file per concern:
//! `e2e_pipeline`, `cross_crate_invariants`, `paper_shapes`,
//! `properties`).

use colt_core::sim::{self, SimConfig, SimResult};
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::{PreparedWorkload, Scenario};
use colt_workloads::spec::benchmark;

/// Prepares `name` under the default Linux scenario.
///
/// # Panics
/// Panics when `name` is not a Table-1 benchmark or preparation fails.
pub fn prepare(name: &str) -> PreparedWorkload {
    let spec = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    Scenario::default_linux()
        .prepare(&spec)
        .unwrap_or_else(|e| panic!("prepare({name}) failed: {e}"))
}

/// Runs a short simulation of `workload` under `tlb`.
pub fn short_sim(workload: &PreparedWorkload, tlb: TlbConfig) -> SimResult {
    sim::run(workload, &SimConfig::new(tlb).with_accesses(30_000))
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_work() {
        let w = super::prepare("FastaProt");
        let r = super::short_sim(&w, colt_tlb::config::TlbConfig::baseline());
        assert_eq!(r.tlb.accesses, 30_000);
    }
}
