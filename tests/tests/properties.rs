//! Cross-crate property tests: randomized workloads through the full
//! stack.

use colt_core::sim::{self, SimConfig};
use colt_os_mem::kernel::CompactionMode;
use colt_os_mem::policy::PolicyKind;
use colt_tlb::config::TlbConfig;
use colt_workloads::background::AgingConfig;
use colt_workloads::calibration::paper_benchmark;
use colt_workloads::pattern::PatternSpec;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::{AllocBehavior, BenchmarkSpec, PopulatePolicy};
use colt_workloads::Suite;
use colt_quickprop::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = BenchmarkSpec> {
    (
        512u64..4000,              // footprint
        prop_oneof![Just(4u64), Just(16), Just(64), Just(512)], // chunk
        prop::bool::ANY,           // eager?
        0u64..16,                  // interleave
        0.0f64..0.4,               // file fraction
        prop_oneof![
            Just(PatternSpec::UniformRandom),
            Just(PatternSpec::PointerChase),
            Just(PatternSpec::Sequential { accesses_per_page: 4 }),
            Just(PatternSpec::HotCold { hot_fraction: 0.05, hot_probability: 0.9 }),
            Just(PatternSpec::Strided { stride_pages: 3, accesses_per_touch: 2 }),
        ],
    )
        .prop_map(|(fp, chunk, eager, interleave, file, pattern)| BenchmarkSpec {
            name: "Fuzz",
            suite: Suite::Spec,
            footprint_pages: fp,
            alloc: AllocBehavior {
                chunk_pages: chunk.min(fp),
                populate: if eager { PopulatePolicy::Eager } else { PopulatePolicy::Faulted },
                interleave_pages: interleave,
                churn_rounds: 0,
                file_fraction: file,
            },
            pattern,
            instructions_per_access: 3,
            paper: paper_benchmark("Gobmk").expect("table entry"),
        })
}

fn small_scenario(ths: bool, low_compaction: bool, seed: u64, policy: PolicyKind) -> Scenario {
    Scenario {
        name: "fuzz".into(),
        ths,
        compaction: if low_compaction { CompactionMode::Low } else { CompactionMode::Normal },
        memhog_fraction: 0.0,
        nr_frames: 1 << 15, // keep fuzz preparations fast
        aging: AgingConfig { churn_ops: 100, ..AgingConfig::default() },
        pressure_split_fraction: 0.85,
        dirty_fraction: 0.0,
        seed,
        faults: None,
        policy,
    }
}

fn arbitrary_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Default),
        Just(PolicyKind::GreedyContig),
        Just(PolicyKind::Adversarial),
        Just(PolicyKind::NoThp),
        Just(PolicyKind::DeferThp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any synthetic workload under any kernel configuration simulates
    /// with consistent accounting under every TLB design, and no design
    /// ever mistranslates.
    #[test]
    fn any_workload_simulates_consistently(
        spec in arbitrary_spec(),
        ths in prop::bool::ANY,
        low in prop::bool::ANY,
        seed in 0u64..500,
        policy in arbitrary_policy(),
    ) {
        let scenario = small_scenario(ths, low, seed, policy);
        let workload = scenario.prepare(&spec).expect("scenario sized generously");
        prop_assert_eq!(workload.footprint.len() as u64, spec.footprint_pages);

        // Contiguity scan is internally consistent.
        let report = workload.contiguity();
        let run_pages: u64 = report.runs().iter().map(|r| r.len).sum();
        prop_assert_eq!(run_pages, report.total_pages());

        for config in [
            TlbConfig::baseline(),
            TlbConfig::colt_sa(),
            TlbConfig::colt_fa(),
            TlbConfig::colt_all(),
        ] {
            let r = sim::run(&workload, &SimConfig::new(config).with_accesses(5_000));
            prop_assert_eq!(r.tlb.l1_hits + r.tlb.l1_misses, r.tlb.accesses);
            prop_assert_eq!(r.tlb.l2_hits + r.tlb.l2_misses, r.tlb.l1_misses);
            prop_assert_eq!(r.walker.walks, r.tlb.l2_misses);
            prop_assert_eq!(r.walker.faults, 0, "footprints are always resident");
            prop_assert_eq!(r.walk_cycles, r.walker.total_latency);
        }
    }

    /// Baseline misses upper-bound what coalescing can eliminate: a CoLT
    /// design never eliminates more misses than the baseline had.
    #[test]
    fn elimination_is_bounded_by_baseline(
        spec in arbitrary_spec(),
        seed in 0u64..100,
        policy in arbitrary_policy(),
    ) {
        let scenario = small_scenario(true, false, seed, policy);
        let workload = scenario.prepare(&spec).expect("fits");
        let base = sim::run(&workload, &SimConfig::new(TlbConfig::baseline()).with_accesses(5_000));
        for config in [TlbConfig::colt_sa(), TlbConfig::colt_fa(), TlbConfig::colt_all()] {
            let r = sim::run(&workload, &SimConfig::new(config).with_accesses(5_000));
            let elim = colt_tlb::stats::pct_misses_eliminated(base.tlb.l2_misses, r.tlb.l2_misses);
            prop_assert!(elim <= 100.0 + 1e-9, "cannot eliminate more than everything");
        }
    }
}
