//! Resume-equivalence: a pressure sweep interrupted after `k` cells and
//! finished with `--resume` must produce the *byte-identical*
//! machine-readable result of an uninterrupted run, for any `k` —
//! including `k = 0` (nothing journaled) and `k = all` (nothing left to
//! run) — and must re-run exactly the missing cells, no more.

use colt_core::artifact;
use colt_core::experiments::{pressure, ExperimentOptions};
use colt_core::journal::Journal;
use colt_os_mem::faults::FaultConfig;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("colt-crash-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fault rate for the swept configuration. Nonzero rates triple the
/// sweep (three intensities, three prepared scenarios); workload
/// preparation dominates unoptimized builds, so debug keeps the
/// single-scenario rate-0 sweep — resume semantics are identical, and
/// the release suite plus the `verify.sh` crash smoke cover the
/// faults-armed path.
const RATE: f64 = if cfg!(debug_assertions) { 0.0 } else { 0.3 };

fn small_opts() -> ExperimentOptions {
    // Tiny access budget: byte-identity and replay accounting do not
    // depend on sweep length, and this file re-runs the sweep several
    // times.
    ExperimentOptions {
        faults: Some(FaultConfig { rate: RATE, window: 50, seed: 11 }),
        jobs: 4,
        accesses: 4_000,
        ..ExperimentOptions::quick().with_benchmarks(&["FastaProt"])
    }
}

/// Runs the pressure sweep against the journal in `dir`, returning the
/// deterministic result JSON plus (cells re-run, cells replayed).
fn run_pressure(dir: &Path, resume: bool) -> (String, u64, usize) {
    let base = small_opts();
    let journal = Arc::new(
        Journal::open(dir, "pressure", base.fingerprint("pressure"), resume)
            .expect("journal open"),
    );
    let opts = ExperimentOptions { journal: Some(Arc::clone(&journal)), ..base };
    let (report, _) = pressure::run(&opts);
    assert!(report.failures.is_empty(), "no cell may fail: {:?}", report.failures);
    let json = artifact::pressure_json(&report, opts.faults.unwrap(), opts.cores);
    (json, journal.appended(), journal.open_report().replayed)
}

#[test]
fn resume_after_any_interruption_point_is_byte_identical() {
    let dir = tmpdir("equiv");
    let (reference, ran, replayed) = run_pressure(&dir, false);
    assert_eq!(replayed, 0, "fresh run must replay nothing");
    assert!(ran > 0);
    let journal_path = dir.join("pressure.jsonl");
    let full: Vec<String> =
        std::fs::read_to_string(&journal_path).unwrap().lines().map(String::from).collect();
    assert_eq!(full.len() as u64, ran, "one journal record per cell");

    // Interrupt after k cells: k = 0 (lost everything), a mid-sweep
    // point, and k = all (crash after the last fsync).
    let total = full.len();
    for k in [0, total / 3, total] {
        std::fs::write(&journal_path, format!("{}\n", full[..k].join("\n"))).unwrap();
        let (json, ran_now, replayed_now) = run_pressure(&dir, true);
        assert_eq!(json, reference, "resume from k={k} must be byte-identical");
        assert_eq!(replayed_now, k, "resume from k={k} must replay exactly k cells");
        assert_eq!(
            ran_now,
            (total - k) as u64,
            "resume from k={k} must re-run exactly the missing cells"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_flags_invalidate_the_journal_instead_of_reusing_it() {
    let dir = tmpdir("fingerprint");
    let (_, ran, _) = run_pressure(&dir, false);
    assert!(ran > 0);

    // Same journal, different --faults: every record's fingerprint
    // mismatches, so nothing is replayable — stale results are never
    // silently blended into a differently-configured run.
    let base = ExperimentOptions {
        faults: Some(FaultConfig { rate: RATE + 0.3, window: 50, seed: 11 }),
        ..small_opts()
    };
    let journal =
        Journal::open(&dir, "pressure", base.fingerprint("pressure"), true).unwrap();
    let report = journal.open_report();
    assert_eq!(report.replayed, 0, "no record may match the changed flags");
    assert_eq!(report.fingerprint_mismatches as u64, ran);
    assert!(journal.completed("any/label").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
