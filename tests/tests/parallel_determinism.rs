//! The parallel sweep runner's core contract: the same seed and options
//! produce identical counters and byte-identical rendered tables at any
//! worker count. These run real experiment drivers end to end at
//! `--jobs 1` and `--jobs 8` and compare everything.

use colt_core::experiments::{contiguity, memhog_load, miss_elimination, ExperimentOptions};

fn opts(jobs: usize) -> ExperimentOptions {
    ExperimentOptions {
        accesses: 10_000,
        ..ExperimentOptions::quick()
    }
    .with_benchmarks(&["Gobmk", "Bzip2"])
    .with_jobs(jobs)
}

#[test]
fn fig18_counters_and_tables_identical_across_jobs() {
    let (rows1, out1) = miss_elimination::run(&opts(1));
    let (rows8, out8) = miss_elimination::run(&opts(8));
    assert_eq!(rows1.len(), rows8.len());
    for (a, b) in rows1.iter().zip(&rows8) {
        assert_eq!(a.name, b.name);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.tlb, rb.tlb, "{}: TLB counters must not depend on --jobs", a.name);
            assert_eq!(ra.walker.walks, rb.walker.walks);
            assert_eq!(ra.walk_cycles, rb.walk_cycles);
            assert_eq!(ra.instructions, rb.instructions);
        }
    }
    assert_eq!(out1.render(), out8.render(), "rendered tables must be byte-identical");
}

#[test]
fn contiguity_tables_identical_across_jobs() {
    let (rows1, out1) = contiguity::run(contiguity::ContiguityConfig::ThsOn, &opts(1));
    let (rows8, out8) = contiguity::run(contiguity::ContiguityConfig::ThsOn, &opts(8));
    for (a, b) in rows1.iter().zip(&rows8) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.average.to_bits(), b.average.to_bits());
        assert_eq!(a.cdf, b.cdf);
    }
    assert_eq!(out1.render(), out8.render());
}

#[test]
fn memhog_figures_identical_across_jobs() {
    let (figs1, out1) = memhog_load::run(&opts(1));
    let (figs8, out8) = memhog_load::run(&opts(8));
    for (a, b) in figs1.iter().zip(&figs8) {
        assert_eq!(a.ths, b.ths);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.averages.map(f64::to_bits), rb.averages.map(f64::to_bits));
        }
    }
    assert_eq!(out1.render(), out8.render());
}
