//! The paper's qualitative results, asserted at reduced scale. These are
//! the claims a reviewer would check first; each test names the table or
//! figure it guards.

use colt_core::experiments::{
    ablation, associativity, contiguity, index_shift, miss_elimination, performance,
    ExperimentOptions,
};
use colt_core::metrics::mean;
use colt_tests::{prepare, short_sim};
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

fn opts() -> ExperimentOptions {
    ExperimentOptions::quick().with_benchmarks(&["Mcf", "CactusADM", "Bzip2", "Gobmk"])
}

/// Table 1's headline: TLB stressors stress, light benchmarks do not.
#[test]
fn table1_shape_mcf_stresses_more_than_fasta() {
    let mcf = prepare("Mcf");
    let fasta = prepare("FastaProt");
    let mcf_r = short_sim(&mcf, TlbConfig::baseline());
    let fasta_r = short_sim(&fasta, TlbConfig::baseline());
    assert!(
        mcf_r.l2_mpmi() > 5.0 * fasta_r.l2_mpmi(),
        "Mcf L2 MPMI ({:.0}) must dwarf FastaProt's ({:.0})",
        mcf_r.l2_mpmi(),
        fasta_r.l2_mpmi()
    );
}

/// Figures 7–15: intermediate contiguity exists under every kernel
/// configuration, and the three configurations order as in the paper.
#[test]
fn contiguity_exists_under_every_configuration_and_orders_correctly() {
    let o = opts();
    let (on, _) = contiguity::run(contiguity::ContiguityConfig::ThsOn, &o);
    let (off, _) = contiguity::run(contiguity::ContiguityConfig::ThsOff, &o);
    let (low, _) = contiguity::run(contiguity::ContiguityConfig::LowCompaction, &o);
    let avg = |rows: &[contiguity::ContiguityRow]| {
        mean(&rows.iter().map(|r| r.average).collect::<Vec<_>>())
    };
    let (a_on, a_off, a_low) = (avg(&on), avg(&off), avg(&low));
    // §6.6 conclusion 1: contiguity always exists.
    assert!(a_low > 1.0, "even low compaction retains contiguity ({a_low:.2})");
    // §6.1/6.2: THS on produces the most.
    assert!(a_on > a_off, "THS must add contiguity ({a_on:.1} vs {a_off:.1})");
    assert!(a_on > a_low);
}

/// Figure 18: all three CoLT designs eliminate a large share of misses,
/// with FA/All generally ahead of SA.
#[test]
fn fig18_shape_all_designs_eliminate_misses() {
    let (rows, _) = miss_elimination::run(&opts());
    let avg_l2 = |design: usize| {
        mean(&rows.iter().map(|r| r.l2_elim(design)).collect::<Vec<_>>())
    };
    let (sa, fa, all) = (avg_l2(1), avg_l2(2), avg_l2(3));
    assert!(sa > 10.0, "CoLT-SA must eliminate a large share, got {sa:.1}%");
    assert!(fa > 25.0, "CoLT-FA must eliminate a large share, got {fa:.1}%");
    assert!(all > 25.0, "CoLT-All must eliminate a large share, got {all:.1}%");
    assert!(
        fa + 10.0 > sa,
        "CoLT-FA ({fa:.1}%) should generally lead CoLT-SA ({sa:.1}%)"
    );
}

/// Figure 19: left-shift 2 beats 1 on average; 3 is not clearly better
/// than 2 (conflict misses bite).
#[test]
fn fig19_shape_shift_two_is_the_sweet_spot() {
    let (rows, _) = index_shift::run(&opts());
    let avg = |i: usize| mean(&rows.iter().map(|r| r.l2_elim(i)).collect::<Vec<_>>());
    let (s1, s2, s3) = (avg(0), avg(1), avg(2));
    assert!(s2 >= s1 - 1.0, "shift 2 ({s2:.1}%) must match or beat shift 1 ({s1:.1}%)");
    assert!(
        s2 + 15.0 > s3,
        "shift 3 ({s3:.1}%) must not decisively beat shift 2 ({s2:.1}%)"
    );
}

/// Figure 20: associativity alone is a poor substitute for coalescing,
/// and the combination wins.
#[test]
fn fig20_shape_coalescing_beats_associativity() {
    let (rows, _) = associativity::run(&opts());
    let avg = |i: usize| mean(&rows.iter().map(|r| r.l2_elim(i)).collect::<Vec<_>>());
    let (sa4, no8, sa8) = (avg(0), avg(1), avg(2));
    assert!(
        sa4 > no8,
        "4-way CoLT-SA ({sa4:.1}%) must beat mere 8-way associativity ({no8:.1}%)"
    );
    assert!(
        sa8 + 5.0 >= sa4,
        "8-way CoLT-SA ({sa8:.1}%) should not trail 4-way CoLT-SA ({sa4:.1}%)"
    );
}

/// Figure 21: CoLT captures a meaningful share of the perfect-TLB
/// headroom on TLB-stressed benchmarks.
#[test]
fn fig21_shape_colt_realizes_performance_gains() {
    let o = ExperimentOptions::quick().with_benchmarks(&["Mcf", "CactusADM"]);
    let (rows, _) = performance::run(&o);
    for r in &rows {
        assert!(r.perfect > 1.0, "{}: must have TLB headroom", r.name);
        let best = r.colt.iter().cloned().fold(f64::MIN, f64::max);
        // At quick scale warm-up is partial; full runs capture ~30-40%
        // of the headroom (EXPERIMENTS.md).
        assert!(
            best > 0.12 * r.perfect,
            "{}: best CoLT ({best:.1}%) should capture real headroom (perfect {:.1}%)",
            r.name,
            r.perfect
        );
    }
}

/// §7.1.3: the fill-to-L2 policy is worth keeping.
#[test]
fn sec713_shape_l2_fill_policy_helps() {
    let o = ExperimentOptions::quick().with_benchmarks(&["CactusADM", "Gobmk"]);
    let rows = ablation::l2_fill_policy(&o);
    let get = |label: &str| {
        rows.iter()
            .find(|r| r.label.contains(label))
            .map(|r| r.l2_elim)
            .expect("variant present")
    };
    assert!(get("CoLT-FA, fill L2 (paper)") + 2.0 >= get("CoLT-FA, no L2 fill"));
    assert!(get("CoLT-All, fill L2 (paper)") + 2.0 >= get("CoLT-All, no L2 fill"));
}

/// §6.4: moderate memhog load does not destroy contiguity; heavy load
/// reduces it.
#[test]
fn fig16_shape_heavy_load_reduces_contiguity() {
    let spec = benchmark("Mcf").unwrap();
    let base = Scenario::default_linux().prepare(&spec).unwrap();
    let heavy = Scenario::default_with_memhog(0.5).prepare(&spec).unwrap();
    let c_base = base.contiguity().average_contiguity();
    let c_heavy = heavy.contiguity().average_contiguity();
    assert!(
        c_heavy < c_base,
        "memhog(50%) ({c_heavy:.1}) must reduce Mcf's contiguity ({c_base:.1})"
    );
    assert!(c_heavy > 1.0, "but intermediate contiguity survives (§6.5)");
}
