//! End-to-end pipeline tests: scenario preparation → TLB/cache/walker
//! simulation → experiment drivers, across crate boundaries.

use colt_core::experiments::{contiguity, miss_elimination, ExperimentOptions};
use colt_core::perf::PerfModel;
use colt_core::sim::{self, SimConfig};
use colt_tests::{prepare, short_sim};
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::{all_benchmarks, benchmark};

#[test]
fn every_benchmark_prepares_under_every_paper_scenario() {
    // The heaviest smoke test: all 14 models × the five focus scenarios
    // must allocate without OOM and produce non-degenerate contiguity.
    for scenario in Scenario::paper_five() {
        for spec in all_benchmarks() {
            let w = scenario
                .prepare(&spec)
                .unwrap_or_else(|e| panic!("{} under '{}': {e}", spec.name, scenario.name));
            assert_eq!(w.footprint.len() as u64, spec.footprint_pages);
            let report = w.contiguity();
            assert!(report.average_contiguity() >= 1.0);
            assert!(report.total_pages() > 0);
        }
    }
}

#[test]
fn simulation_translates_exactly_like_the_page_table() {
    // The whole stack (pattern → TLB → walker → caches) must be a
    // transparent cache over the kernel's page table.
    let w = prepare("Astar");
    let proc = w.kernel.process(w.asid).unwrap();
    let mut pattern = w.pattern(1);
    let mut tlb = colt_tlb::hierarchy::TlbHierarchy::new(TlbConfig::colt_all());
    let mut walker = colt_memsim::walker::PageWalker::paper_default();
    let mut caches = colt_memsim::hierarchy::CacheHierarchy::core_i7();
    for _ in 0..20_000 {
        let r = pattern.next_ref();
        let expected = proc.translate(r.vpn).expect("footprint mapped").pfn;
        let got = match tlb.lookup(r.vpn) {
            Some(hit) => hit.pfn,
            None => {
                let o = walker.walk(proc.page_table(), r.vpn, &mut caches).expect("mapped");
                let fill = match o.leaf {
                    colt_memsim::walker::WalkedLeaf::Base { line } => {
                        colt_tlb::hierarchy::WalkFill::Base { line }
                    }
                    colt_memsim::walker::WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
                        colt_tlb::hierarchy::WalkFill::Super { base_vpn, base_pfn, flags }
                    }
                };
                tlb.fill(r.vpn, &fill);
                o.translation.pfn
            }
        };
        assert_eq!(got, expected, "TLB must agree with the page table at {}", r.vpn);
    }
}

#[test]
fn end_to_end_determinism() {
    let spec = benchmark("Povray").unwrap();
    let run = || {
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let r = sim::run(&w, &SimConfig::new(TlbConfig::colt_fa()).with_accesses(20_000));
        (r.tlb, r.walk_cycles, r.data_stall_cycles)
    };
    assert_eq!(run(), run(), "two identical preparations must simulate identically");
}

#[test]
fn perf_model_orders_designs_consistently_with_walks() {
    let w = prepare("CactusADM");
    let model = PerfModel::default();
    let base = short_sim(&w, TlbConfig::baseline());
    let fa = short_sim(&w, TlbConfig::colt_fa());
    assert!(fa.tlb.l2_misses < base.tlb.l2_misses);
    assert!(
        model.improvement_pct(&base, &fa) > 0.0,
        "fewer walks must translate into positive speedup"
    );
    assert!(model.perfect_improvement_pct(&base) >= model.improvement_pct(&base, &fa) - 1e-9);
}

#[test]
fn experiment_drivers_produce_complete_tables() {
    let opts = ExperimentOptions::quick().with_benchmarks(&["Gobmk", "Povray"]);
    let (rows, out) = miss_elimination::run(&opts);
    assert_eq!(rows.len(), 2);
    let text = out.render();
    assert!(text.contains("Gobmk") && text.contains("Povray") && text.contains("Average"));

    let (rows, out) = contiguity::run(contiguity::ContiguityConfig::ThsOn, &opts);
    assert_eq!(rows.len(), 2);
    assert!(out.render().contains("cdf@1024"));
}

#[test]
fn warmup_excludes_cold_misses_from_measurement() {
    let w = prepare("FastaProt");
    let cold = sim::run(
        &w,
        &SimConfig {
            warmup: 0,
            ..SimConfig::new(TlbConfig::baseline()).with_accesses(20_000)
        },
    );
    let warm = sim::run(
        &w,
        &SimConfig {
            warmup: 20_000,
            ..SimConfig::new(TlbConfig::baseline()).with_accesses(20_000)
        },
    );
    assert!(
        warm.tlb.l1_miss_ratio() <= cold.tlb.l1_miss_ratio(),
        "warmed measurement must not show more misses than the cold one"
    );
}

#[test]
fn trace_export_replay_matches_generated_run() {
    // Export the exact reference stream a pattern produces, replay it
    // via run_trace, and get bit-identical TLB statistics.
    use colt_workloads::trace::{read_trace, write_trace};
    let w = prepare("Gobmk");
    let n = 10_000usize;
    let refs = w.pattern(123).take_refs(n);
    let mut buf = Vec::new();
    write_trace(&mut buf, &refs).unwrap();
    let loaded = read_trace(&buf[..]).unwrap();
    assert_eq!(loaded, refs);

    let cfg = SimConfig {
        warmup: 0,
        pattern_seed: 123,
        ..SimConfig::new(TlbConfig::colt_all()).with_accesses(n as u64)
    };
    let generated = sim::run(&w, &cfg);
    let replayed = colt_core::sim::run_trace(&w, &cfg, &loaded);
    assert_eq!(generated.tlb, replayed.tlb);
    assert_eq!(generated.walk_cycles, replayed.walk_cycles);
}

#[test]
fn shootdown_churn_increases_misses() {
    let w = prepare("Gobmk");
    let quiet = sim::run(&w, &SimConfig::new(TlbConfig::colt_all()).with_accesses(20_000));
    let churny = sim::run(
        &w,
        &SimConfig::new(TlbConfig::colt_all())
            .with_accesses(20_000)
            .with_invalidations(32),
    );
    assert!(
        churny.tlb.l2_misses > quiet.tlb.l2_misses,
        "shootdowns must cost walks ({} vs {})",
        churny.tlb.l2_misses,
        quiet.tlb.l2_misses
    );
}
