//! Invariants that only hold (or break) across crate boundaries:
//! kernel memory management interacting with TLB state and walkers.

use colt_os_mem::addr::Vpn;
use colt_os_mem::kernel::{Kernel, KernelConfig};
use colt_tests::prepare;
use colt_tlb::config::TlbConfig;
use colt_tlb::hierarchy::{TlbHierarchy, WalkFill};

/// Fill a hierarchy for `vpn` straight from a kernel page table.
fn walk_and_fill(kernel: &Kernel, asid: colt_os_mem::addr::Asid, tlb: &mut TlbHierarchy, vpn: Vpn) {
    let pt = kernel.process(asid).unwrap().page_table();
    let mut walker = colt_memsim::walker::PageWalker::paper_default();
    let mut caches = colt_memsim::hierarchy::CacheHierarchy::core_i7();
    let o = walker.walk(pt, vpn, &mut caches).expect("mapped");
    let fill = match o.leaf {
        colt_memsim::walker::WalkedLeaf::Base { line } => WalkFill::Base { line },
        colt_memsim::walker::WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
            WalkFill::Super { base_vpn, base_pfn, flags }
        }
    };
    tlb.fill(vpn, &fill);
}

#[test]
fn compaction_invalidation_protocol_keeps_tlb_coherent() {
    // Migrate pages under a live TLB: after invalidating the moved
    // translations (as an OS must), lookups re-walk and see new frames.
    let mut kernel = Kernel::new(KernelConfig {
        nr_frames: 4096,
        ths_enabled: false,
        compaction: colt_os_mem::kernel::CompactionMode::Low,
        ..KernelConfig::default()
    });
    let asid = kernel.spawn();
    // Scatter allocations so compaction has work.
    let mut keep = Vec::new();
    for i in 0..32 {
        let base = kernel.malloc(asid, 8).unwrap();
        if i % 2 == 0 {
            kernel.free(asid, base).unwrap();
        } else {
            keep.push(base);
        }
    }
    let mut tlb = TlbHierarchy::new(TlbConfig::colt_all());
    for &base in &keep {
        for i in 0..8 {
            let vpn = base.offset(i);
            if tlb.lookup(vpn).is_none() {
                walk_and_fill(&kernel, asid, &mut tlb, vpn);
            }
        }
    }
    let before = kernel.process(asid).unwrap().translate(keep[0]).unwrap().pfn;
    kernel.compact_now();
    let after = kernel.process(asid).unwrap().translate(keep[0]).unwrap().pfn;

    // OS invalidates every (possibly stale) translation it moved.
    for &base in &keep {
        for i in 0..8 {
            tlb.invalidate(base.offset(i));
        }
    }
    // Every lookup now misses (checked before any refill, since one
    // refill coalesces neighbors back in)...
    for &base in &keep {
        for i in 0..8 {
            assert!(
                tlb.lookup(base.offset(i)).is_none(),
                "stale entry survived invalidation"
            );
        }
    }
    // ...and re-filling yields the migrated frames.
    for &base in &keep {
        for i in 0..8 {
            let vpn = base.offset(i);
            if tlb.lookup(vpn).is_none() {
                walk_and_fill(&kernel, asid, &mut tlb, vpn);
            }
            let hit = tlb.lookup(vpn).expect("refilled");
            let truth = kernel.process(asid).unwrap().translate(vpn).unwrap().pfn;
            assert_eq!(hit.pfn, truth);
        }
    }
    // The compaction itself must have moved something for this test to
    // mean anything.
    assert_ne!(before, after, "compaction should have migrated keep[0]");
}

#[test]
fn superpage_split_then_walk_produces_base_fills() {
    let mut kernel = Kernel::new(KernelConfig { nr_frames: 8192, ..KernelConfig::default() });
    let asid = kernel.spawn();
    let base = kernel.malloc(asid, 512).unwrap();
    assert_eq!(kernel.live_superpage_count(), 1);

    // While the superpage is live, a walk fills the superpage TLB.
    let mut tlb = TlbHierarchy::new(TlbConfig::baseline());
    walk_and_fill(&kernel, asid, &mut tlb, base.offset(7));
    assert_eq!(tlb.stats().superpage_fills, 1);
    assert_eq!(tlb.sp().occupancy(), 1);

    // Split it (with puncturing); invalidate; re-walk: base fills now.
    kernel.split_superpages(1);
    tlb.invalidate(base.offset(7));
    assert!(tlb.lookup(base.offset(7)).is_none());
    walk_and_fill(&kernel, asid, &mut tlb, base.offset(7));
    assert_eq!(tlb.stats().superpage_fills, 1, "no new superpage fill after split");
    let hit = tlb.lookup(base.offset(7)).expect("refilled as base page");
    let truth = kernel.process(asid).unwrap().translate(base.offset(7)).unwrap();
    assert_eq!(hit.pfn, truth.pfn);
    assert!(matches!(truth.kind, colt_os_mem::page_table::PageKind::Base));
}

#[test]
fn coalesced_entries_survive_unrelated_kernel_activity() {
    // TLB entries reference frames; unrelated allocation elsewhere in the
    // kernel must not perturb what a resident coalesced entry translates.
    let w = prepare("Gobmk");
    let proc = w.kernel.process(w.asid).unwrap();
    let mut tlb = TlbHierarchy::new(TlbConfig::colt_fa());
    let probe: Vec<Vpn> = w.footprint.iter().copied().take(64).collect();
    for &vpn in &probe {
        if tlb.lookup(vpn).is_none() {
            walk_and_fill(&w.kernel, w.asid, &mut tlb, vpn);
        }
    }
    for &vpn in &probe {
        if let Some(hit) = tlb.lookup(vpn) {
            assert_eq!(hit.pfn, proc.translate(vpn).unwrap().pfn);
        }
    }
}

#[test]
fn memhog_load_raises_tlb_pressure_benchmarks_walk_more_or_equal() {
    // More fragmentation → shorter runs → less coalescing benefit. The
    // *baseline* miss counts stay comparable (same pattern), but the
    // CoLT-FA advantage shrinks.
    use colt_core::sim::{self, SimConfig};
    use colt_workloads::scenario::Scenario;
    use colt_workloads::spec::benchmark;
    let spec = benchmark("CactusADM").unwrap();
    let light = Scenario::default_linux().prepare(&spec).unwrap();
    let heavy = Scenario::default_with_memhog(0.5).prepare(&spec).unwrap();
    let run = |w| sim::run(w, &SimConfig::new(TlbConfig::colt_fa()).with_accesses(30_000));
    let light_r = run(&light);
    let heavy_r = run(&heavy);
    assert!(
        heavy_r.tlb.avg_coalescing() <= light_r.tlb.avg_coalescing() + 0.5,
        "heavy fragmentation should not coalesce better: {:.2} vs {:.2}",
        heavy_r.tlb.avg_coalescing(),
        light_r.tlb.avg_coalescing()
    );
}
