//! Oracle-driven interleaving tests: the differential checker
//! ([`colt_core::check`]) replaying adversarial orderings of kernel
//! events against live TLB + page-walk-cache state, across every TLB
//! configuration and THS setting.

use colt_core::check::{self, FuzzEvent};
use colt_memsim::hierarchy::CacheHierarchy;
use colt_memsim::walker::{PageWalker, WalkedLeaf};
use colt_os_mem::kernel::{CompactionMode, Kernel, KernelConfig};
use colt_tlb::config::TlbConfig;
use colt_tlb::hierarchy::{TlbHierarchy, WalkFill};

/// Regression for the compaction-migration stale-TLB path: before the
/// per-VPN shootdown protocol, migrated pages kept answering lookups
/// with their pre-move frames, and the walker's MMU cache kept serving
/// the pre-move paging structures. The oracle must see the staleness,
/// and the recorded [`colt_os_mem::shootdown::ShootdownEvent`]s must be
/// sufficient to clear it entry by entry — no full flush.
#[test]
fn compaction_migration_shootdown_restores_coherence() {
    let mut kernel = Kernel::new(KernelConfig {
        nr_frames: 4096,
        ths_enabled: false,
        compaction: CompactionMode::Low,
        ..KernelConfig::default()
    });
    let asid = kernel.spawn();
    let mut keep = Vec::new();
    for i in 0..32 {
        let base = kernel.malloc(asid, 8).unwrap();
        if i % 2 == 0 {
            kernel.free(asid, base).unwrap();
        } else {
            keep.push(base);
        }
    }

    let mut tlb = TlbHierarchy::new(TlbConfig::colt_all());
    let mut walker = PageWalker::paper_default();
    let mut caches = CacheHierarchy::core_i7();
    for &base in &keep {
        for i in 0..8 {
            let vpn = base.offset(i);
            if tlb.lookup(vpn).is_none() {
                let pt = kernel.process(asid).unwrap().page_table();
                let o = walker.walk(pt, vpn, &mut caches).expect("mapped");
                let fill = match o.leaf {
                    WalkedLeaf::Base { line } => WalkFill::Base { line },
                    WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
                        WalkFill::Super { base_vpn, base_pfn, flags }
                    }
                };
                tlb.fill(vpn, &fill);
            }
        }
    }

    kernel.enable_shootdown_log();
    kernel.compact_now();
    let events = kernel.take_shootdowns();
    assert!(!events.is_empty(), "fragmented heap must migrate pages");
    let resident_moved = events
        .iter()
        .any(|ev| tlb.lookup(ev.vpn).is_some_and(|hit| Some(hit.pfn) == ev.old_pfn));
    assert!(resident_moved, "a resident translation must have moved");

    // The oracle sees the staleness the miss counters never would.
    let pt = kernel.process(asid).unwrap().page_table();
    assert!(
        !check::check_hierarchy(&tlb, pt).is_empty(),
        "stale post-migration entries must fail the oracle"
    );

    // Deliver each shootdown per-VPN: TLB entry plus the cached
    // paging-structure entries that led to it.
    for ev in &events {
        tlb.invalidate(ev.vpn);
        walker.invalidate_addrs(&ev.entry_addrs);
        for &addr in &ev.entry_addrs {
            assert!(
                !walker.mmu_contains(addr),
                "MMU cache must drop shot entry {addr:?}"
            );
        }
    }
    let pt = kernel.process(asid).unwrap().page_table();
    assert_eq!(check::check_hierarchy(&tlb, pt), vec![]);

    // Re-walks land on the migrated frames.
    for ev in &events {
        let o = walker.walk(pt, ev.vpn, &mut caches).expect("still mapped");
        assert_eq!(Some(o.translation.pfn), ev.new_pfn, "walk must see the new frame");
    }
}

/// Hand-picked adversarial orderings of kernel events around
/// translation bursts. Each list replays clean — zero violations —
/// under every TLB configuration (plus its future-work variant) and
/// with THS on and off.
#[test]
fn fixed_interleavings_are_clean_across_configs_and_ths() {
    let orderings: [&[FuzzEvent]; 3] = [
        // Compaction racing translation, then THP split + puncture.
        &[
            FuzzEvent::Translate { salt: 11, count: 48 },
            FuzzEvent::Compact,
            FuzzEvent::Translate { salt: 12, count: 48 },
            FuzzEvent::SplitSupers { n: 1 },
            FuzzEvent::Translate { salt: 13, count: 48 },
        ],
        // Reclaim (unmap) and refault around a context switch.
        &[
            FuzzEvent::Translate { salt: 21, count: 32 },
            FuzzEvent::Reclaim { target: 48 },
            FuzzEvent::Translate { salt: 22, count: 48 },
            FuzzEvent::ContextSwitch,
            FuzzEvent::Translate { salt: 23, count: 32 },
            FuzzEvent::Reclaim { target: 32 },
            FuzzEvent::ContextSwitch,
            FuzzEvent::Translate { salt: 24, count: 32 },
        ],
        // munmap + fresh allocation + background ticks + dirtying.
        &[
            FuzzEvent::Translate { salt: 31, count: 48 },
            FuzzEvent::Free { slot: 1 },
            FuzzEvent::Malloc { pages: 600 },
            FuzzEvent::Translate { salt: 32, count: 48 },
            FuzzEvent::Tick,
            FuzzEvent::MarkDirty { salt: 33 },
            FuzzEvent::Translate { salt: 34, count: 48 },
        ],
    ];
    let configs = [
        TlbConfig::baseline(),
        TlbConfig::colt_sa(),
        TlbConfig::colt_fa(),
        TlbConfig::colt_all(),
    ];
    for config in configs {
        for cfg in [config, config.with_future_work()] {
            for ths in [true, false] {
                let kcfg = if ths {
                    KernelConfig { nr_frames: 1 << 14, ..KernelConfig::ths_on() }
                } else {
                    KernelConfig { nr_frames: 1 << 14, ..KernelConfig::ths_off() }
                };
                for (i, events) in orderings.iter().enumerate() {
                    let outcome = check::replay(cfg, kcfg, events);
                    assert_eq!(
                        outcome.violations,
                        vec![],
                        "ordering {i} under {:?} ths={ths}",
                        cfg.mode
                    );
                    assert!(outcome.translations > 0);
                }
            }
        }
    }
}

/// The fuzz sweep fans out through the PR-1 parallel runner; its report
/// (labels, seeds, violations, minimised reproducers, translation
/// counts) must be byte-identical at any worker count.
#[test]
fn fuzz_report_is_identical_at_jobs_1_and_8() {
    let serial = check::run_check(2, 48, 1);
    let wide = check::run_check(2, 48, 8);
    assert_eq!(serial, wide);
    assert!(serial.is_clean(), "fuzz cases must be clean: {:?}", serial.cases);
}
