#!/usr/bin/env bash
# Full verification: offline release build, the whole test suite, a
# quick 4-core SMP smoke run, a fault-injection pressure smoke (sweep
# plus oracle fuzz under a seeded fault plan), a crash-recovery smoke
# (kill a sweep mid-run, --resume, diff against an uninterrupted
# reference), a snapshot-cache cold/warm smoke, a serve smoke (resident
# server + load generator, with a served-vs-direct byte-identity check),
# a chaos smoke (the seeded network-fault soak; every verdict in
# BENCH_chaos.json must hold),
# a storage-torture smoke (seeded I/O fault schedules x simulated
# power cuts over the durability layers; every verdict in
# BENCH_torture.json must hold and no tmp litter may survive),
# a storage-fault crash smoke (kill a sweep mid-run with the I/O fault
# plan armed — ENOSPC, torn renames, failed fsyncs — then a clean
# --resume must still be byte-identical),
# an MM-policy smoke (the policy sweep on a small grid, a
# `--policy default` byte-identity diff, and policy-counter gates),
# and a quick parallel smoke sweep with a throughput regression gate.
#
# The gate compares the smoke sweep's aggregate refs/sec against the
# committed results/BENCH_sweep.json baseline and fails on a >20% drop.
# Set COLT_SKIP_PERF_CHECK=1 to skip the gate (e.g. on heavily loaded or
# much slower machines); the build and tests still run.
#
# With --check, a differential-oracle fuzz stage runs after the perf
# gate: `repro --check` interleaves kernel events (compaction, THP
# split/puncture, munmap, reclaim, context switches) with translation
# streams across every TLB configuration and fails on any stale-entry
# or coalescing-invariant violation. Fixed seed budget, deterministic
# at any --jobs width.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_CHECK=0
for arg in "$@"; do
    case "$arg" in
        --check) RUN_CHECK=1 ;;
        *) echo "usage: verify.sh [--check]" >&2; exit 2 ;;
    esac
done

SWEEP_ARGS=(--quick --bench Gobmk,Bzip2 --jobs "$(nproc)" fig18 fig7-9)
BASELINE=results/BENCH_sweep.json

echo "== cargo build --release (offline) =="
cargo build --release

echo "== cargo test =="
cargo test -q

baseline_rps=""
baseline_amortized=""
if [[ -f "$BASELINE" ]]; then
    baseline_rps=$(grep -o '"aggregate_refs_per_sec": [0-9.]*' "$BASELINE" | awk '{print $2}')
    # Absent in baselines written before the field existed; the
    # amortized gate is simply skipped then.
    baseline_amortized=$(grep -o '"prep_amortized_refs_per_sec": [0-9.]*' "$BASELINE" | awk '{print $2}' || true)
fi

# SMP smoke: a quick 4-core mix + core-count sweep. Runs after the
# baseline capture (it rewrites $BASELINE too) and before the smoke
# sweep, which leaves $BASELINE holding the single-core numbers the
# perf gate has always gated on.
SMP_ARGS=(--quick --cores 4 --jobs "$(nproc)" smp_mix smp_scaling)
echo "== SMP smoke: repro ${SMP_ARGS[*]} =="
./target/release/repro "${SMP_ARGS[@]}" > /dev/null
if [[ ! -f results/BENCH_smp.json ]]; then
    echo "FAIL: SMP smoke did not write results/BENCH_smp.json" >&2
    exit 1
fi
if ! grep -q '"mode": "tagged"' results/BENCH_smp.json; then
    echo "FAIL: results/BENCH_smp.json is missing tagged-mode rows" >&2
    exit 1
fi

# Fault-injection smoke: a quick pressure sweep with a seeded fault
# plan. Every cell must complete (panic isolation reports failures in
# the json instead of aborting the sweep, and a non-empty failure list
# exits nonzero), injection must actually fire, and THP base-page
# fallback must engage. Also fuzzes the translation oracle with the
# same plan armed. Runs before the smoke sweep so $BASELINE still ends
# up holding the single-core perf-gate numbers.
FAULT_ARGS=(--quick --jobs "$(nproc)" --faults rate=0.05,window=0,seed=7 pressure)
echo "== fault-injection smoke: repro ${FAULT_ARGS[*]} =="
./target/release/repro "${FAULT_ARGS[@]}" > /dev/null
if [[ ! -f results/BENCH_pressure.json ]]; then
    echo "FAIL: pressure smoke did not write results/BENCH_pressure.json" >&2
    exit 1
fi
if ! grep -q '"failures": \[\]' results/BENCH_pressure.json; then
    echo "FAIL: results/BENCH_pressure.json reports failed sweep cells" >&2
    exit 1
fi
for counter in faults_injected thp_fallbacks; do
    if ! grep -o "\"$counter\": [0-9]*" results/BENCH_pressure.json \
            | awk '{ sum += $2 } END { exit !(sum > 0) }'; then
        echo "FAIL: fault-injection smoke never incremented $counter" >&2
        exit 1
    fi
done
echo "== fault-injection oracle fuzz: repro pressure --check =="
./target/release/repro pressure --check --seeds 2 --events 120 \
    --jobs "$(nproc)" --faults rate=0.05,window=0,seed=7

# Crash-recovery smoke: run a pressure sweep in a scratch directory,
# kill it mid-sweep (COLT_CRASH_AFTER_CELLS aborts right after the k-th
# journal fsync — a SIGKILL-equivalent death), then finish it with
# --resume. The resumed run must leave BENCH_pressure.json and the CSV
# output byte-identical to an uninterrupted reference run, with exactly
# the k fsynced journal records surviving the crash.
CRASH_DIR=$(mktemp -d)
IOCRASH_DIR=$(mktemp -d)
CACHE_DIR=$(mktemp -d)
SERVE_DIR=$(mktemp -d)
POLICY_DIR=$(mktemp -d)
CHAOS_DIR=$(mktemp -d)
trap 'rm -rf "$CRASH_DIR" "$IOCRASH_DIR" "$CACHE_DIR" "$SERVE_DIR" "$POLICY_DIR" "$CHAOS_DIR"' EXIT
REPRO="$PWD/target/release/repro"

# MM-policy smoke: a small policy-sweep grid (every shipped policy x
# one benchmark x the checker's 8 TLB configs), plus the byte-identity
# contract: `--policy default` must be a byte-level no-op on a headline
# table, and every non-default policy must actually exercise its hooks
# (nonzero policy-decision counters in the summaries). Runs before the
# smoke sweep so $BASELINE still ends up holding the perf-gate numbers.
POLICY_ARGS=(--quick --bench Gobmk --jobs "$(nproc)" policy)
echo "== policy smoke: repro ${POLICY_ARGS[*]} =="
./target/release/repro "${POLICY_ARGS[@]}" > /dev/null
if [[ ! -f results/BENCH_policy.json ]]; then
    echo "FAIL: policy smoke did not write results/BENCH_policy.json" >&2
    exit 1
fi
if ! grep -q '"failures": \[\]' results/BENCH_policy.json; then
    echo "FAIL: results/BENCH_policy.json reports failed sweep cells" >&2
    exit 1
fi
for pol in greedy_contig adversarial no_thp defer_thp; do
    if ! grep "\"policy\": \"$pol\"" results/BENCH_policy.json \
            | grep -o '"decisions": [0-9]*' \
            | awk '{ sum += $2 } END { exit !(sum > 0) }'; then
        echo "FAIL: policy smoke shows zero policy decisions under $pol" >&2
        exit 1
    fi
done
# The policy-dependence spread the experiment exists to measure:
# greedy_contig must hand the TLB at least as much contiguity as the
# stock kernel, and adversarial strictly less.
summary_contig() {
    grep "\"policy\": \"$1\"" results/BENCH_policy.json \
        | grep -o '"avg_contiguity": [0-9.]*' | head -n1 | awk '{print $2}'
}
if ! awk -v g="$(summary_contig greedy_contig)" -v d="$(summary_contig default)" \
        -v a="$(summary_contig adversarial)" 'BEGIN { exit !(g >= d && d > a) }'; then
    echo "FAIL: policy contiguity spread broken (greedy=$(summary_contig greedy_contig) default=$(summary_contig default) adversarial=$(summary_contig adversarial))" >&2
    exit 1
fi
(cd "$POLICY_DIR" && "$REPRO" --quick --bench Gobmk,Bzip2 fig18 --csv > default_implicit.csv)
(cd "$POLICY_DIR" && "$REPRO" --quick --bench Gobmk,Bzip2 --policy default fig18 --csv > default_explicit.csv)
if ! cmp -s "$POLICY_DIR/default_implicit.csv" "$POLICY_DIR/default_explicit.csv"; then
    echo "FAIL: --policy default changed headline-table bytes" >&2
    exit 1
fi
echo "policy smoke passed (5 policies swept, default byte-identical, contiguity spread holds)"
CRASH_ARGS=(--quick --bench Sjeng --faults rate=0.3,window=50,seed=11
            --jobs "$(nproc)" pressure --csv)
echo "== crash-recovery smoke: kill mid-sweep, then --resume =="
(cd "$CRASH_DIR" && "$REPRO" "${CRASH_ARGS[@]}" > ref.csv)
cp "$CRASH_DIR/results/BENCH_pressure.json" "$CRASH_DIR/ref_pressure.json"
rm -rf "$CRASH_DIR/results"
if (cd "$CRASH_DIR" && COLT_CRASH_AFTER_CELLS=5 "$REPRO" "${CRASH_ARGS[@]}" \
        > crash.csv 2> crash.err); then
    echo "FAIL: crash injection did not kill the sweep" >&2
    exit 1
fi
crash_lines=$(wc -l < "$CRASH_DIR/results/journal/pressure.jsonl")
if [[ "$crash_lines" -ne 5 ]]; then
    echo "FAIL: expected 5 fsynced journal records after the crash, got $crash_lines" >&2
    exit 1
fi
(cd "$CRASH_DIR" && "$REPRO" "${CRASH_ARGS[@]}" --resume > resume.csv)
if ! cmp -s "$CRASH_DIR/ref_pressure.json" "$CRASH_DIR/results/BENCH_pressure.json"; then
    echo "FAIL: resumed BENCH_pressure.json differs from the uninterrupted run" >&2
    exit 1
fi
if ! cmp -s "$CRASH_DIR/ref.csv" "$CRASH_DIR/resume.csv"; then
    echo "FAIL: resumed CSV output differs from the uninterrupted run" >&2
    exit 1
fi
echo "crash-recovery smoke passed (5 journaled cells survived, resume byte-identical)"

# Storage-fault crash smoke: the same kill-then-resume, but with the
# seeded I/O fault plan armed during the doomed run — ENOSPC on
# writes, torn renames, failed and lying fsyncs, short writes. Journal
# appends that fail after retries only cost that cell its
# resumability (the resumed run recomputes it); corrupt journal lines
# left by torn writes are quarantined on re-open, never replayed. A
# clean --resume must still reproduce BENCH_pressure.json and the CSV
# byte-identically against the uninterrupted, unfaulted reference
# captured above. The exact journal line count is NOT gated here:
# under injected faults, retried appends legitimately leave extra
# (quarantined) partial lines.
echo "== storage-fault crash smoke: kill under --io-faults, then --resume =="
if (cd "$IOCRASH_DIR" && COLT_CRASH_AFTER_CELLS=5 "$REPRO" "${CRASH_ARGS[@]}" \
        --io-faults rate=0.1,window=0,seed=23 > crash.csv 2> crash.err); then
    echo "FAIL: crash injection did not kill the faulted sweep" >&2
    exit 1
fi
if ! grep -q 'io-faults armed' "$IOCRASH_DIR/crash.err"; then
    echo "FAIL: faulted crash run never armed the I/O fault plan" >&2
    cat "$IOCRASH_DIR/crash.err" >&2
    exit 1
fi
(cd "$IOCRASH_DIR" && "$REPRO" "${CRASH_ARGS[@]}" --resume > resume.csv)
if ! cmp -s "$CRASH_DIR/ref_pressure.json" "$IOCRASH_DIR/results/BENCH_pressure.json"; then
    echo "FAIL: resume after a faulted crash diverged in BENCH_pressure.json" >&2
    exit 1
fi
if ! cmp -s "$CRASH_DIR/ref.csv" "$IOCRASH_DIR/resume.csv"; then
    echo "FAIL: resume after a faulted crash diverged in CSV output" >&2
    exit 1
fi
if find "$IOCRASH_DIR/results" -name '*.tmp-*' | grep -q .; then
    echo "FAIL: faulted crash run leaked tmp files past the startup sweep" >&2
    exit 1
fi
echo "storage-fault crash smoke passed (resume byte-identical under injected ENOSPC + torn renames)"

# Snapshot-cache smoke: the same sweep twice in a scratch directory —
# cold (every pair prepares and persists a snapshot under
# results/snapshots/), then warm in a fresh process (every pair decodes
# its snapshot). The warm run must build nothing, spend almost no prep
# time, and produce a BENCH_sweep.json byte-identical to the cold run
# once the timing/cache fields are stripped.
echo "== snapshot-cache smoke: cold vs warm sweep =="
(cd "$CACHE_DIR" && "$REPRO" "${SWEEP_ARGS[@]}" > /dev/null)
cp "$CACHE_DIR/results/BENCH_sweep.json" "$CACHE_DIR/cold.json"
(cd "$CACHE_DIR" && "$REPRO" "${SWEEP_ARGS[@]}" > /dev/null)
cp "$CACHE_DIR/results/BENCH_sweep.json" "$CACHE_DIR/warm.json"
strip_timing() {
    sed -E 's/"(wall_seconds|prep_seconds|sim_seconds|refs_per_sec|aggregate_refs_per_sec|prep_amortized_refs_per_sec|prep_seconds_total|snapshot_seconds|serial_seconds_estimate|speedup_vs_1_thread_estimate|prep_cache_hits|prep_cache_misses|prep_cache_evictions)": -?[0-9.]+,?//g' "$1"
}
if ! cmp -s <(strip_timing "$CACHE_DIR/cold.json") <(strip_timing "$CACHE_DIR/warm.json"); then
    echo "FAIL: warm-cache sweep results differ from the cold run (beyond timing)" >&2
    diff <(strip_timing "$CACHE_DIR/cold.json") <(strip_timing "$CACHE_DIR/warm.json") >&2 || true
    exit 1
fi
json_field() {
    grep -o "\"$1\": [0-9.]*" "$2" | head -n1 | awk '{print $2}'
}
warm_misses=$(json_field prep_cache_misses "$CACHE_DIR/warm.json")
if [[ "$warm_misses" != "0" ]]; then
    echo "FAIL: warm-cache sweep still built $warm_misses preparation(s) from scratch" >&2
    exit 1
fi
cold_prep=$(json_field prep_seconds_total "$CACHE_DIR/cold.json")
warm_prep=$(json_field prep_seconds_total "$CACHE_DIR/warm.json")
if ! awk -v w="$warm_prep" -v c="$cold_prep" 'BEGIN { exit !(w < 0.25 * c) }'; then
    echo "FAIL: warm-cache prep time not ~0 (warm ${warm_prep}s vs cold ${cold_prep}s)" >&2
    exit 1
fi
echo "snapshot-cache smoke passed (0 warm misses, prep ${cold_prep}s cold -> ${warm_prep}s warm)"

# Serve smoke: a resident `repro serve` plus the serve-bench load
# generator in a scratch directory. The bench drives mixed
# translate/sweep traffic, requests the sweep twice (the second must be
# an LRU result-cache hit), and byte-compares the served sweep against
# a direct in-process run (--verify-sweep). The server must then shut
# down cleanly with zero quarantined cells, and the published
# BENCH_serve.json must show real throughput and a warm cache.
echo "== serve smoke: repro serve + serve-bench =="
REPO_RESULTS="$PWD/results"
(cd "$SERVE_DIR" && "$REPRO" serve --port 0 --port-file serve.port \
    > serve.log 2>&1) &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -s "$SERVE_DIR/serve.port" ]] && break
    sleep 0.1
done
if [[ ! -s "$SERVE_DIR/serve.port" ]]; then
    echo "FAIL: repro serve never wrote its port file" >&2
    exit 1
fi
(cd "$SERVE_DIR" && "$REPRO" serve-bench --port-file serve.port \
    --conns 4 --requests 100 --accesses 5000 \
    --sweep fig18 --sweep-every 25 --sweep-accesses 20000 --bench Gobmk \
    --verify-sweep --shutdown --quiet --out "$REPO_RESULTS/BENCH_serve.json")
if ! wait "$SERVE_PID"; then
    echo "FAIL: repro serve exited nonzero after shutdown" >&2
    cat "$SERVE_DIR/serve.log" >&2
    exit 1
fi
for needle in "clean shutdown" "quarantined cells: 0"; do
    if ! grep -q "$needle" "$SERVE_DIR/serve.log"; then
        echo "FAIL: serve log is missing '$needle'" >&2
        cat "$SERVE_DIR/serve.log" >&2
        exit 1
    fi
done
serve_rps=$(json_field requests_per_sec "$REPO_RESULTS/BENCH_serve.json")
if ! awk -v r="$serve_rps" 'BEGIN { exit !(r > 0) }'; then
    echo "FAIL: BENCH_serve.json reports no throughput (requests_per_sec=$serve_rps)" >&2
    exit 1
fi
serve_hit_rate=$(json_field cache_hit_rate "$REPO_RESULTS/BENCH_serve.json")
if ! awk -v h="$serve_hit_rate" 'BEGIN { exit !(h > 0) }'; then
    echo "FAIL: repeated identical sweeps never hit the result cache (cache_hit_rate=$serve_hit_rate)" >&2
    exit 1
fi
if ! grep -q '"verified": true' "$REPO_RESULTS/BENCH_serve.json"; then
    echo "FAIL: serve-bench did not verify served-vs-direct byte identity" >&2
    exit 1
fi
echo "serve smoke passed ($serve_rps req/s, sweep cache hit rate $serve_hit_rate, clean shutdown)"

# Chaos smoke: the seeded network-fault soak. An in-process server with
# the chaos plan armed (torn frames, resets, stalls, accept hiccups)
# serves retrying clients; the run must exit zero with every verdict
# true in BENCH_chaos.json — zero server panics, every injected fault
# accounted for as exactly one retried transport error, no leaked queue
# slots or in-flight sweep leaders after the graceful drain, sweep
# bytes under retries identical to a direct in-process run, and a
# warm restart serving the drained cache byte-identically.
echo "== chaos smoke: repro chaos-serve =="
(cd "$CHAOS_DIR" && "$REPRO" chaos-serve --chaos rate=0.15,window=0,seed=7 \
    --conns 2 --requests 10 --accesses 500 \
    --sweep fig18 --sweep-every 4 --sweep-accesses 1000 --bench Gobmk \
    --quiet --out "$REPO_RESULTS/BENCH_chaos.json")
for verdict in zero_panics faults_accounted no_leaked_slots byte_identity \
               warm_restart_identity all_ok; do
    if ! grep -q "\"$verdict\": true" "$REPO_RESULTS/BENCH_chaos.json"; then
        echo "FAIL: BENCH_chaos.json verdict '$verdict' did not hold" >&2
        cat "$REPO_RESULTS/BENCH_chaos.json" >&2
        exit 1
    fi
done
chaos_faults=$(json_field faults_injected "$REPO_RESULTS/BENCH_chaos.json")
if ! awk -v f="$chaos_faults" 'BEGIN { exit !(f > 0) }'; then
    echo "FAIL: chaos smoke injected no faults (faults_injected=$chaos_faults)" >&2
    exit 1
fi
echo "chaos smoke passed ($chaos_faults faults injected, all verdicts hold)"

# Storage-torture smoke: the crash-consistency harness on a reduced
# but still 3-seed grid with its fixed default base seed. Each cycle
# runs a sweep doomed by a seeded storage-fault schedule (ENOSPC, EIO,
# torn writes, lying fsyncs, dropped renames, bit flips), simulates a
# power cut, re-opens everything cold, and recovers with --resume.
# Every verdict in BENCH_torture.json must hold, injection must have
# fired, and no tmp litter may survive anywhere under results/.
TORTURE_ARGS=(torture --seeds 3 --cuts 1 --accesses 1000 --quiet)
echo "== storage-torture smoke: repro ${TORTURE_ARGS[*]} =="
./target/release/repro "${TORTURE_ARGS[@]}"
for verdict in zero_panics no_corrupt_accepted resume_identity warm_identity \
               ledger_identity all_ok; do
    if ! grep -q "\"$verdict\": true" results/BENCH_torture.json; then
        echo "FAIL: BENCH_torture.json verdict '$verdict' did not hold" >&2
        cat results/BENCH_torture.json >&2
        exit 1
    fi
done
torture_faults=$(json_field io_faults_injected results/BENCH_torture.json)
if ! awk -v f="$torture_faults" 'BEGIN { exit !(f > 0) }'; then
    echo "FAIL: torture smoke injected no I/O faults (io_faults_injected=$torture_faults)" >&2
    exit 1
fi
if find results -name '*.tmp-*' | grep -q .; then
    echo "FAIL: torture smoke leaked tmp files under results/" >&2
    find results -name '*.tmp-*' >&2
    exit 1
fi
echo "storage-torture smoke passed ($torture_faults I/O faults injected, all verdicts hold)"

echo "== smoke sweep: repro ${SWEEP_ARGS[*]} =="
# The sweep rewrites $BASELINE with this run's numbers; the baseline
# value was captured above first. Drop any disk snapshots first so the
# gate always times a *cold* sweep: a fresh checkout starts cold, and
# gating warm-vs-cold would trip on cache temperature, not performance
# (the warm path is asserted by the snapshot-cache smoke above).
rm -rf results/snapshots
./target/release/repro "${SWEEP_ARGS[@]}" > /dev/null
current_rps=$(grep -o '"aggregate_refs_per_sec": [0-9.]*' "$BASELINE" | awk '{print $2}')
current_amortized=$(grep -o '"prep_amortized_refs_per_sec": [0-9.]*' "$BASELINE" | awk '{print $2}' || true)
echo "aggregate refs/sec: current=$current_rps baseline=${baseline_rps:-none}"
echo "prep-amortized refs/sec: current=${current_amortized:-none} baseline=${baseline_amortized:-none}"

if [[ "${COLT_SKIP_PERF_CHECK:-0}" == "1" ]]; then
    echo "perf gate skipped (COLT_SKIP_PERF_CHECK=1)"
elif [[ -z "$baseline_rps" ]]; then
    echo "no committed baseline; perf gate skipped (commit $BASELINE to enable it)"
else
    if ! awk -v c="$current_rps" -v b="$baseline_rps" 'BEGIN { exit !(c >= 0.8 * b) }'; then
        echo "FAIL: quick sweep regressed >20% vs baseline ($current_rps < 0.8 * $baseline_rps)" >&2
        exit 1
    fi
    # The aggregate gate can be flattered by the snapshot cache hiding
    # prep regressions; the prep-amortized (sim-only) rate cannot.
    if [[ -n "$baseline_amortized" && -n "$current_amortized" ]]; then
        if ! awk -v c="$current_amortized" -v b="$baseline_amortized" 'BEGIN { exit !(c >= 0.8 * b) }'; then
            echo "FAIL: prep-amortized throughput regressed >20% vs baseline ($current_amortized < 0.8 * $baseline_amortized)" >&2
            exit 1
        fi
    fi
    echo "perf gate passed (>= 80% of baseline, aggregate and prep-amortized)"
fi

if [[ "$RUN_CHECK" == "1" ]]; then
    echo "== oracle + invariant fuzz: repro --check (single-core + 4-core SMP) =="
    ./target/release/repro --check --seeds 6 --events 160 --jobs "$(nproc)" --cores 4
fi

echo "verify.sh: all checks passed"
