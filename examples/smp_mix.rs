//! A four-core multiprogrammed mix on the SMP machine: eight
//! benchmarks co-scheduled two per core, private CoLT-All TLB
//! hierarchies, one shared LLC, and cross-core TLB shootdowns under
//! kernel churn. Runs the same mix untagged (full translation flush at
//! every context switch, the paper's machine) and ASID-tagged, then
//! prints per-core and aggregate miss rates plus the IPI bill.
//!
//! Run with: `cargo run --release -p colt-core --example smp_mix`

use colt_core::experiments::smp::MIX_LIGHT;
use colt_smp::{SmpConfig, SmpMachine, SmpResult};
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

const CORES: usize = 4;
const WARMUP: u64 = 20_000;
const MEASURE: u64 = 120_000;

fn run_mode(tagged: bool) -> SmpResult {
    let specs: Vec<_> =
        MIX_LIGHT.iter().map(|n| benchmark(n).expect("a Table-1 benchmark")).collect();
    let multi = Scenario::default_linux().prepare_many(&specs).expect("mix fits in memory");
    let mut cfg = SmpConfig::new(CORES, TlbConfig::colt_all());
    if tagged {
        cfg = cfg.tagged();
    }
    let mut machine = SmpMachine::new(multi, cfg, 0x5EED);
    machine.run(WARMUP);
    machine.mark();
    machine.run(MEASURE);
    machine.result()
}

fn report(label: &str, result: &SmpResult) {
    println!("== {label} ==");
    println!(
        "  {:>6} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "core", "accesses", "L1 MPMI", "L2 MPMI", "full flush", "IPIs rx", "IPI cyc"
    );
    for (c, core) in result.cores.iter().enumerate() {
        println!(
            "  {:>6} {:>12} {:>10.2} {:>10.2} {:>12} {:>10} {:>10}",
            c,
            core.counters.accesses,
            core.l1_mpmi(),
            core.l2_mpmi(),
            core.counters.full_flushes,
            core.counters.ipis_received,
            core.counters.ipi_cycles,
        );
    }
    let agg = result.aggregate();
    println!(
        "  {:>6} {:>12} {:>10.2} {:>10.2} {:>12} {:>10} {:>10}",
        "ALL",
        agg.counters.accesses,
        agg.l1_mpmi(),
        agg.l2_mpmi(),
        agg.counters.full_flushes,
        agg.counters.ipis_received,
        agg.counters.ipi_cycles,
    );
    println!(
        "  switches: {}   flushes avoided: {}   IPIs sent: {}   remote invalidations: {}\n",
        agg.counters.context_switches,
        agg.counters.flushes_avoided,
        agg.counters.ipis_sent,
        agg.counters.remote_invalidations,
    );
}

fn main() {
    println!(
        "SMP mix: {} benchmarks on {CORES} cores, CoLT-All per core, shared LLC\n",
        MIX_LIGHT.len()
    );
    let untagged = run_mode(false);
    report("untagged (flush every context switch)", &untagged);
    let tagged = run_mode(true);
    report("ASID-tagged (switches keep warmed state)", &tagged);

    let (u, t) = (untagged.aggregate(), tagged.aggregate());
    println!(
        "tagging cut page walks {} -> {} and full flushes {} -> {}, \
         at a shootdown bill of {} IPI cycles",
        u.tlb.l2_misses,
        t.tlb.l2_misses,
        u.counters.full_flushes,
        t.counters.full_flushes,
        t.counters.ipi_cycles,
    );
}
