//! TLB design-space exploration: sweep the CoLT knobs the paper examines
//! (design, index shift, superpage-TLB size, CoLT-All threshold) over one
//! workload and print the resulting miss eliminations.
//!
//! Run with: `cargo run --release -p colt-core --example tlb_design_space`

use colt_core::sim::{self, SimConfig, SimResult};
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = benchmark("CactusADM").expect("a Table-1 benchmark");
    let workload = Scenario::default_linux().prepare(&spec)?;
    let accesses = 150_000;
    let run = |tlb: TlbConfig| -> SimResult {
        sim::run(&workload, &SimConfig::new(tlb).with_accesses(accesses))
    };

    let baseline = run(TlbConfig::baseline());
    println!(
        "CactusADM baseline: {} L1 misses, {} walks over {} accesses\n",
        baseline.tlb.l1_misses, baseline.tlb.l2_misses, baseline.tlb.accesses
    );

    let report = |label: &str, r: SimResult| {
        println!(
            "{label:38} L1 elim {:6.1}%   walk elim {:6.1}%",
            pct_misses_eliminated(baseline.tlb.l1_misses, r.tlb.l1_misses),
            pct_misses_eliminated(baseline.tlb.l2_misses, r.tlb.l2_misses),
        );
    };

    // The three designs (Figure 18).
    report("CoLT-SA (shift 2)", run(TlbConfig::colt_sa()));
    report("CoLT-FA (8-entry SP)", run(TlbConfig::colt_fa()));
    report("CoLT-All (threshold 4)", run(TlbConfig::colt_all()));
    println!();

    // Index-shift sweep (Figure 19).
    for shift in [1u32, 2, 3] {
        report(
            &format!("CoLT-SA, index left-shift {shift}"),
            run(TlbConfig::colt_sa().with_shift(shift)),
        );
    }
    println!();

    // Associativity (Figure 20).
    report("8-way L2, no CoLT", run(TlbConfig::baseline().with_l2_ways(8)));
    report("8-way L2, CoLT-SA", run(TlbConfig::colt_sa().with_l2_ways(8)));
    println!();

    // Superpage-TLB size and CoLT-All threshold (ablation extras).
    report(
        "CoLT-FA with 16-entry SP TLB",
        run(TlbConfig { sp_entries: 16, ..TlbConfig::colt_fa() }),
    );
    for threshold in [2u64, 4, 8] {
        report(
            &format!("CoLT-All, threshold {threshold}"),
            run(TlbConfig { all_threshold: threshold, ..TlbConfig::colt_all() }),
        );
    }
    Ok(())
}
