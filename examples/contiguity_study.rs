//! Contiguity study: reproduce the paper's §6 characterization for a few
//! benchmarks — how buddy allocation, memory compaction, THS, and memhog
//! load shape page-allocation contiguity.
//!
//! Run with: `cargo run --release -p colt-core --example contiguity_study`

use colt_os_mem::contiguity::PAPER_CDF_POINTS;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = ["Mcf", "CactusADM", "Sjeng", "Xalancbmk"];
    let scenarios = [
        Scenario::default_linux(),
        Scenario::no_ths(),
        Scenario::no_ths_low_compaction(),
        Scenario::default_with_memhog(0.25),
        Scenario::default_with_memhog(0.50),
    ];

    for name in names {
        let spec = benchmark(name).expect("a Table-1 benchmark");
        println!(
            "== {name} (paper avgs: THS-on {:.1}, THS-off {:.1}, low {:.1}) ==",
            spec.paper.contig_ths_on, spec.paper.contig_ths_off,
            spec.paper.contig_low_compaction
        );
        for scenario in &scenarios {
            let workload = scenario.prepare(&spec)?;
            let report = workload.contiguity();
            let cdf = report.cdf(&PAPER_CDF_POINTS);
            let cdf_str: Vec<String> = PAPER_CDF_POINTS
                .iter()
                .zip(&cdf)
                .map(|(p, c)| format!("{p}:{c:.2}"))
                .collect();
            println!(
                "  {:32} avg {:7.2}  cdf[{}]  >=512: {:.1}%",
                scenario.name,
                report.average_contiguity(),
                cdf_str.join(" "),
                100.0 * report.fraction_with_contiguity_at_least(512),
            );
        }
        println!();
    }
    Ok(())
}
