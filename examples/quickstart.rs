//! Quickstart: allocate a workload under the default Linux scenario,
//! run it through the baseline and CoLT-All TLB hierarchies, and compare
//! miss rates — the paper's core result in ~40 lines.
//!
//! Run with: `cargo run --release -p colt-core --example quickstart`

use colt_core::sim::{self, SimConfig};
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a TLB-hungry benchmark model and prepare it under the
    //    paper's default system configuration (THS on, normal memory
    //    compaction). This boots a simulated kernel, ages it, and lets
    //    the buddy allocator + THS back the benchmark's address space.
    let spec = benchmark("Mcf").expect("Mcf is a Table-1 benchmark");
    let workload = Scenario::default_linux().prepare(&spec)?;

    // 2. How much page-allocation contiguity did the OS produce?
    let contiguity = workload.contiguity();
    println!(
        "Mcf footprint: {} pages, average contiguity {:.1} pages (max {})",
        contiguity.total_pages(),
        contiguity.average_contiguity(),
        contiguity.max_contiguity(),
    );

    // 3. Replay the same reference stream through the baseline hierarchy
    //    and through CoLT-All.
    let accesses = 200_000;
    let baseline = sim::run(
        &workload,
        &SimConfig::new(TlbConfig::baseline()).with_accesses(accesses),
    );
    let colt = sim::run(
        &workload,
        &SimConfig::new(TlbConfig::colt_all()).with_accesses(accesses),
    );

    println!(
        "baseline: {:6} L1 misses, {:6} page walks",
        baseline.tlb.l1_misses, baseline.tlb.l2_misses
    );
    println!(
        "CoLT-All: {:6} L1 misses, {:6} page walks (avg {:.1} translations/fill)",
        colt.tlb.l1_misses,
        colt.tlb.l2_misses,
        colt.tlb.avg_coalescing()
    );
    println!(
        "eliminated: {:.1}% of L1 misses, {:.1}% of walks",
        pct_misses_eliminated(baseline.tlb.l1_misses, colt.tlb.l1_misses),
        pct_misses_eliminated(baseline.tlb.l2_misses, colt.tlb.l2_misses),
    );
    Ok(())
}
