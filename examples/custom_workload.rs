//! Build your own workload: define a custom benchmark model (allocation
//! behavior + access pattern), prepare it under a custom scenario, and
//! measure how much CoLT would help it.
//!
//! Run with: `cargo run --release -p colt-core --example custom_workload`

use colt_core::perf::PerfModel;
use colt_core::sim::{self, SimConfig};
use colt_os_mem::kernel::CompactionMode;
use colt_tlb::config::TlbConfig;
use colt_workloads::background::AgingConfig;
use colt_workloads::calibration::paper_benchmark;
use colt_workloads::pattern::PatternSpec;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::{AllocBehavior, BenchmarkSpec, PopulatePolicy};
use colt_workloads::Suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical in-memory database: large bulk-loaded tables
    // (eager, big chunks — lots of contiguity) scanned sequentially with
    // a hot index.
    let spec = BenchmarkSpec {
        name: "MiniDB",
        suite: Suite::Spec,
        footprint_pages: 12_000,
        alloc: AllocBehavior {
            chunk_pages: 512,
            populate: PopulatePolicy::Eager,
            interleave_pages: 4,
            churn_rounds: 0,
            file_fraction: 0.2,
        },
        pattern: PatternSpec::Mixture(vec![
            // Hot index pages.
            (0.55, PatternSpec::HotCold { hot_fraction: 0.002, hot_probability: 1.0 }),
            // Table scans.
            (0.35, PatternSpec::Sequential { accesses_per_page: 16 }),
            // Random point lookups.
            (0.10, PatternSpec::UniformRandom),
        ]),
        instructions_per_access: 4,
        // Calibration targets are only used for reporting; borrow Mcf's.
        paper: paper_benchmark("Mcf").expect("table entry"),
    };

    // A custom scenario: bigger machine, light aging, defrag on.
    let scenario = Scenario {
        name: "big box, light load".into(),
        ths: true,
        compaction: CompactionMode::Normal,
        memhog_fraction: 0.0,
        nr_frames: 1 << 17, // 512MB
        aging: AgingConfig { fill_fraction: 0.80, ..AgingConfig::default() },
        // Keep few live superpages: more than the 8-entry CoLT-FA TLB
        // can hold makes FA *regress* (they thrash) — try 0.4 to see it.
        pressure_split_fraction: 0.9,
        dirty_fraction: 0.0,
        seed: 7,
        faults: None,
        // The stock MM policy; try PolicyKind::GreedyContig or
        // PolicyKind::Adversarial to move the contiguity the OS hands
        // the TLB (see DESIGN.md §14).
        policy: colt_os_mem::policy::PolicyKind::Default,
    };

    let workload = scenario.prepare(&spec)?;
    println!(
        "MiniDB: {} pages allocated, avg contiguity {:.1}, {} live superpages",
        workload.footprint.len(),
        workload.contiguity().average_contiguity(),
        workload.kernel.live_superpage_count(),
    );

    let accesses = 200_000;
    let model = PerfModel::default();
    let baseline = sim::run(
        &workload,
        &SimConfig::new(TlbConfig::baseline()).with_accesses(accesses),
    );
    println!(
        "perfect-TLB headroom: {:.1}%",
        model.perfect_improvement_pct(&baseline)
    );
    for config in [TlbConfig::colt_sa(), TlbConfig::colt_fa(), TlbConfig::colt_all()] {
        let r = sim::run(&workload, &SimConfig::new(config).with_accesses(accesses));
        println!(
            "{:9} walks {:6} (baseline {:6}), speedup {:+.1}%",
            config.mode.label(),
            r.tlb.l2_misses,
            baseline.tlb.l2_misses,
            model.improvement_pct(&baseline, &r),
        );
    }
    Ok(())
}
