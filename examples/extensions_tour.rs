//! Tour of the reproduction's extensions beyond the paper's figures:
//! nested paging (virtualization), the sequential-prefetcher baseline,
//! and the §4.1.5/§4.2.3 future-work TLB refinements.
//!
//! Run with: `cargo run --release -p colt-core --example extensions_tour`

use colt_core::perf::PerfModel;
use colt_core::sim::{self, SimConfig};
use colt_tlb::config::TlbConfig;
use colt_tlb::prefetch::PrefetchConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = benchmark("Omnetpp").expect("a Table-1 benchmark");
    let workload = Scenario::default_linux().prepare(&spec)?;
    let accesses = 150_000;
    let model = PerfModel::default();

    // 1. Virtualization: the same designs under nested paging.
    println!("== nested paging (the paper's sec 7.2 expectation) ==");
    for nested in [false, true] {
        let mk = |tlb: TlbConfig| {
            let mut cfg = SimConfig::new(tlb).with_accesses(accesses);
            if nested {
                cfg = cfg.virtualized();
            }
            sim::run(&workload, &cfg)
        };
        let base = mk(TlbConfig::baseline());
        let colt = mk(TlbConfig::colt_all());
        println!(
            "  {:7}: perfect headroom {:5.1}%, CoLT-All speedup {:+5.1}%",
            if nested { "nested" } else { "native" },
            model.perfect_improvement_pct(&base),
            model.improvement_pct(&base, &colt),
        );
    }

    // 2. The related-work prefetcher baseline.
    println!("\n== sequential TLB prefetching vs CoLT (sec 2.1/2.4) ==");
    let base = sim::run(&workload, &SimConfig::new(TlbConfig::baseline()).with_accesses(accesses));
    for (label, tlb) in [
        (
            "prefetch d=1",
            TlbConfig::baseline().with_prefetch(PrefetchConfig { buffer_entries: 16, degree: 1 }),
        ),
        (
            "prefetch d=2",
            TlbConfig::baseline().with_prefetch(PrefetchConfig { buffer_entries: 16, degree: 2 }),
        ),
        ("CoLT-All", TlbConfig::colt_all()),
    ] {
        let r = sim::run(&workload, &SimConfig::new(tlb).with_accesses(accesses));
        println!(
            "  {label:13} eliminates {:5.1}% of walks",
            pct_misses_eliminated(base.tlb.l2_misses, r.tlb.l2_misses),
        );
    }

    // 3. Future work: graceful invalidation under shootdown churn.
    println!("\n== graceful uncoalescing under shootdown churn (sec 4.1.5) ==");
    let churny = |tlb: TlbConfig| {
        sim::run(
            &workload,
            &SimConfig::new(tlb).with_accesses(accesses).with_invalidations(64),
        )
    };
    let base = churny(TlbConfig::baseline());
    let flush = churny(TlbConfig::colt_all());
    let graceful = churny(TlbConfig { graceful_invalidation: true, ..TlbConfig::colt_all() });
    println!(
        "  whole-entry flush: {:5.1}%   graceful: {:5.1}%",
        pct_misses_eliminated(base.tlb.l2_misses, flush.tlb.l2_misses),
        pct_misses_eliminated(base.tlb.l2_misses, graceful.tlb.l2_misses),
    );
    Ok(())
}
