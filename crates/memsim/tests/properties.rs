//! Property-based tests of the memory-hierarchy substrate.

use colt_memsim::cache::Cache;
use colt_memsim::hierarchy::CacheHierarchy;
use colt_memsim::mmu_cache::MmuCache;
use colt_memsim::walker::PageWalker;
use colt_os_mem::addr::{Pfn, PhysAddr, Vpn};
use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
use colt_quickprop::prelude::*;
use std::collections::HashSet;

proptest! {
    /// The set-associative cache matches a reference model: an access
    /// hits iff the line is among the `ways` most recently used lines of
    /// its set.
    #[test]
    fn cache_matches_lru_model(addrs in prop::collection::vec(0u64..(1 << 14), 1..400)) {
        let mut cache = Cache::new(1024, 2); // 8 sets, 2 ways
        let num_sets = cache.num_sets() as u64;
        // Model: per-set MRU list of lines.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); num_sets as usize];
        for a in addrs {
            let addr = PhysAddr::new(a);
            let line = a / 64;
            let set = (line % num_sets) as usize;
            let model_hit = model[set].contains(&line);
            let hit = cache.access(addr);
            prop_assert_eq!(hit, model_hit, "address {:#x}", a);
            model[set].retain(|&l| l != line);
            model[set].insert(0, line);
            model[set].truncate(2);
        }
    }

    /// Cache occupancy never exceeds geometry, and flush empties it.
    #[test]
    fn cache_capacity_and_flush(addrs in prop::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut cache = Cache::new(2048, 4);
        for a in &addrs {
            cache.access(PhysAddr::new(*a));
            prop_assert!(cache.occupancy() <= 32);
        }
        cache.flush();
        prop_assert_eq!(cache.occupancy(), 0);
    }

    /// The MMU cache never reports a hit for an address that was not
    /// inserted, and respects capacity.
    #[test]
    fn mmu_cache_is_honest(ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..200)) {
        let mut cache = MmuCache::new(8);
        let mut inserted: HashSet<u64> = HashSet::new();
        for (addr, insert) in ops {
            let a = PhysAddr::new(addr);
            if insert {
                cache.insert(a);
                inserted.insert(addr);
            } else if cache.lookup(a) {
                prop_assert!(inserted.contains(&addr), "phantom hit at {:#x}", addr);
            }
            prop_assert!(cache.occupancy() <= 8);
        }
    }

    /// Walks always return the page table's exact translation, with
    /// positive latency, for both native and nested modes — and nested
    /// is never cheaper than native on a cold system.
    #[test]
    fn walks_translate_exactly(
        mappings in prop::collection::vec((0u64..(1 << 18), 0u64..(1 << 16)), 1..50),
    ) {
        let mut pt = PageTable::new();
        let mut seen = HashSet::new();
        for (v, p) in &mappings {
            if seen.insert(*v) {
                pt.map_base(Vpn::new(*v), Pte::new(Pfn::new(*p), PteFlags::user_data()));
            }
        }
        let mut native = PageWalker::paper_default();
        let mut nested = PageWalker::paper_default().nested();
        let mut caches_a = CacheHierarchy::core_i7();
        let mut caches_b = CacheHierarchy::core_i7();
        for (v, _) in &mappings {
            let vpn = Vpn::new(*v);
            let truth = pt.translate(vpn).expect("mapped above").pfn;
            let a = native.walk(&pt, vpn, &mut caches_a).expect("mapped");
            let b = nested.walk(&pt, vpn, &mut caches_b).expect("mapped");
            prop_assert_eq!(a.translation.pfn, truth);
            prop_assert_eq!(b.translation.pfn, truth);
            prop_assert!(a.latency > 0 && b.latency > 0);
            prop_assert!(a.memory_accesses >= 1);
            prop_assert!(b.memory_accesses >= a.memory_accesses);
        }
        // Aggregate: nested costs strictly more on any non-trivial set.
        prop_assert!(
            nested.stats().total_latency >= native.stats().total_latency,
            "nested ({}) must cost at least native ({})",
            nested.stats().total_latency,
            native.stats().total_latency
        );
    }
}
