//! # colt-memsim — memory-hierarchy substrate for the CoLT reproduction
//!
//! Models the memory system beneath the TLBs (paper §5.2.1): a
//! three-level cache hierarchy ([`hierarchy`]), a 22-entry MMU page-walk
//! cache ([`mmu_cache`]), and the page-table walker ([`walker`]) that
//! fetches 64-byte cache lines of eight PTEs — the window CoLT's
//! coalescing logic inspects after every miss.
//!
//! ## Quick example
//!
//! ```
//! use colt_memsim::{hierarchy::CacheHierarchy, walker::PageWalker};
//! use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
//! use colt_os_mem::addr::{Pfn, Vpn};
//!
//! let mut pt = PageTable::new();
//! pt.map_base(Vpn::new(8), Pte::new(Pfn::new(100), PteFlags::user_data()));
//! let mut caches = CacheHierarchy::core_i7();
//! let mut walker = PageWalker::paper_default();
//! let outcome = walker.walk(&pt, Vpn::new(8), &mut caches).expect("mapped");
//! assert!(outcome.latency > 0);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod latency;
pub mod mmu_cache;
pub mod walker;

pub use cache::Cache;
pub use hierarchy::{CacheHierarchy, PrivateCaches, PteFetch, SharedLlc};
pub use latency::LatencyModel;
pub use mmu_cache::MmuCache;
pub use walker::{PageWalker, WalkOutcome, WalkedLeaf};
