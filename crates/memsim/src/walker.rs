//! The hardware page-table walker.
//!
//! On a TLB miss the walker traverses the 4-level page table. The MMU
//! page-walk cache lets it skip upper levels; every remaining level is a
//! PTE fetch through the cache hierarchy (LLC at best, §4.1.1). The final
//! fetch brings in a 64-byte cache line holding eight PTEs — handed back
//! so CoLT's coalescing logic can inspect it without further memory
//! references (§4.1.4).

use crate::hierarchy::PteFetch;
use crate::mmu_cache::{MmuCache, MmuCacheStats};
use colt_os_mem::addr::{Asid, Pfn, PhysAddr, Vpn};
use colt_os_mem::page_table::{PageKind, PageTable, PteFlags, PteLine, Translation};

/// The leaf a walk resolved to, in the form the TLB fill path needs.
#[derive(Clone, Copy, Debug)]
pub enum WalkedLeaf {
    /// A base page, plus the PTE cache line fetched with it.
    Base {
        /// The eight-PTE line covering the requested page.
        line: PteLine,
    },
    /// A 2MB superpage leaf.
    Super {
        /// First virtual page of the superpage.
        base_vpn: Vpn,
        /// First physical frame of the superpage.
        base_pfn: Pfn,
        /// Attribute bits.
        flags: PteFlags,
    },
}

/// The outcome of one page walk.
#[derive(Clone, Copy, Debug)]
pub struct WalkOutcome {
    /// The translation found.
    pub translation: Translation,
    /// The leaf payload for the TLB fill path.
    pub leaf: WalkedLeaf,
    /// Walk latency in cycles (PTE fetches for all non-skipped levels).
    pub latency: u64,
    /// Number of memory (LLC/DRAM) accesses the walk performed.
    pub memory_accesses: u64,
}

/// Per-walker counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WalkerStats {
    /// Walks performed.
    pub walks: u64,
    /// Total cycles spent walking.
    pub total_latency: u64,
    /// Walks that faulted (unmapped page).
    pub faults: u64,
}

impl WalkerStats {
    /// Counter-wise difference `self - before` (measurement windows).
    #[must_use]
    pub fn since(&self, before: &Self) -> Self {
        Self {
            walks: self.walks - before.walks,
            total_latency: self.total_latency - before.total_latency,
            faults: self.faults - before.faults,
        }
    }

    /// Counter-wise sum (aggregating per-core walkers).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            walks: self.walks + other.walks,
            total_latency: self.total_latency + other.total_latency,
            faults: self.faults + other.faults,
        }
    }
}

/// Whether walks run natively or under nested paging (virtualization).
///
/// Under nested paging every guest page-table access itself requires a
/// host (EPT/NPT) translation, turning the 4-access walk into the
/// two-dimensional walk of up to 24 accesses — the environment where TLB
/// misses cost the most and where the paper anticipates CoLT's benefits
/// growing ("this number worsens to 50% in virtualized environments",
/// §1; "as ... virtualization is considered, these performance
/// improvements will be even higher", §7.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WalkMode {
    /// Ordinary native walk (the paper's evaluation).
    #[default]
    Native,
    /// Two-dimensional guest-over-host walk: each guest level costs a
    /// host walk plus the guest entry fetch, and the final guest physical
    /// address needs one more host walk.
    Nested,
}

/// Simulated physical region where the host (EPT/NPT) page tables live.
const HOST_PT_REGION_BASE: u64 = 1 << 44;
/// Host page-table radix levels.
const HOST_PT_LEVELS: u64 = 4;

/// The page-table walker with its MMU page-walk cache.
///
/// ```
/// use colt_memsim::walker::PageWalker;
/// use colt_memsim::hierarchy::CacheHierarchy;
/// use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
/// use colt_os_mem::addr::{Pfn, PhysAddr, Vpn};
///
/// let mut pt = PageTable::new();
/// pt.map_base(Vpn::new(42), Pte::new(Pfn::new(7), PteFlags::user_data()));
/// let mut walker = PageWalker::paper_default();
/// let mut caches = CacheHierarchy::core_i7();
/// let outcome = walker.walk(&pt, Vpn::new(42), &mut caches).expect("mapped");
/// assert_eq!(outcome.translation.pfn, Pfn::new(7));
/// ```
#[derive(Clone, Debug)]
pub struct PageWalker {
    mmu_cache: MmuCache,
    mode: WalkMode,
    /// Nested-mode only: caches host page-table entries so repeat host
    /// walks skip levels (a nested-TLB/paging-structure cache).
    host_mmu_cache: MmuCache,
    stats: WalkerStats,
    /// SMP tagged mode: MMU-cache entries carry the ASID they were
    /// walked under, so a context switch retargets instead of flushing.
    asid_tagged: bool,
    current_asid: Asid,
}

impl PageWalker {
    /// Creates a walker with an `mmu_entries`-entry page-walk cache.
    pub fn new(mmu_entries: usize) -> Self {
        Self {
            mmu_cache: MmuCache::new(mmu_entries),
            mode: WalkMode::Native,
            host_mmu_cache: MmuCache::new(mmu_entries),
            stats: WalkerStats::default(),
            asid_tagged: false,
            current_asid: Asid(0),
        }
    }

    /// The paper's configuration (22-entry MMU cache, §5.2.1).
    pub fn paper_default() -> Self {
        Self::new(22)
    }

    /// Switches the walker to two-dimensional nested walks.
    #[must_use]
    pub fn nested(mut self) -> Self {
        self.mode = WalkMode::Nested;
        self
    }

    /// Enables ASID tagging of the MMU page-walk cache (SMP extension):
    /// entries are keyed `(asid, addr)` and a context switch becomes a
    /// tag change instead of a flush. Entry addresses alias across
    /// processes (each page table numbers nodes independently), so the
    /// tag is part of the key, not just a filter.
    #[must_use]
    pub fn with_asid_tagging(mut self) -> Self {
        self.asid_tagged = true;
        self
    }

    /// Retargets MMU-cache lookups to `asid` (tagged mode; a no-op tag in
    /// untagged mode where everything is keyed ASID 0).
    pub fn set_current_asid(&mut self, asid: Asid) {
        self.current_asid = asid;
    }

    /// The ASID walks currently run under.
    pub fn current_asid(&self) -> Asid {
        self.current_asid
    }

    /// The MMU-cache key tag in effect.
    fn tag(&self) -> Asid {
        if self.asid_tagged { self.current_asid } else { Asid(0) }
    }

    /// The walk mode in effect.
    pub fn mode(&self) -> WalkMode {
        self.mode
    }

    /// Charges the host-side translation of one guest-physical access
    /// during a nested walk: a host radix walk over the guest-physical
    /// address, with the host paging-structure cache skipping upper
    /// levels. Returns (cycles, memory accesses).
    fn charge_host_walk(
        &mut self,
        guest_phys: PhysAddr,
        caches: &mut impl PteFetch,
    ) -> (u64, u64) {
        // Host PT entry address for each level: a radix over the
        // guest-physical page number, so nearby guest addresses share
        // upper-level host entries (and cache lines).
        let gpn = guest_phys.raw() >> 12;
        let mut addrs = [PhysAddr::new(0); HOST_PT_LEVELS as usize];
        for (i, slot) in addrs.iter_mut().enumerate() {
            let level = HOST_PT_LEVELS as usize - 1 - i; // root first
            let index = gpn >> (9 * level);
            *slot = PhysAddr::new(
                HOST_PT_REGION_BASE | ((level as u64) << 41) | (index * 8),
            );
        }
        // Skip levels whose entries the host structure cache holds.
        let mut start = 0usize;
        for i in (0..addrs.len() - 1).rev() {
            if self.host_mmu_cache.lookup(addrs[i]) {
                start = i + 1;
                break;
            }
        }
        let mut latency = 0u64;
        let mut accesses = 0u64;
        for (i, &a) in addrs.iter().enumerate().skip(start) {
            latency += caches.access_pte(a);
            accesses += 1;
            if i < addrs.len() - 1 {
                self.host_mmu_cache.insert(a);
            }
        }
        (latency, accesses)
    }

    /// Walker counters.
    pub fn stats(&self) -> WalkerStats {
        self.stats
    }

    /// MMU-cache counters.
    pub fn mmu_stats(&self) -> MmuCacheStats {
        self.mmu_cache.stats()
    }

    /// Walks `vpn` through `page_table`, charging PTE fetches to
    /// `caches` — a private [`crate::hierarchy::CacheHierarchy`] on a
    /// single core, the machine-wide [`crate::hierarchy::SharedLlc`]
    /// under SMP. Returns `None` on a page fault (unmapped address).
    pub fn walk(
        &mut self,
        page_table: &PageTable,
        vpn: Vpn,
        caches: &mut impl PteFetch,
    ) -> Option<WalkOutcome> {
        let tag = self.tag();
        self.stats.walks += 1;
        let Some(path) = page_table.walk(vpn) else {
            self.stats.faults += 1;
            return None;
        };
        let levels = path.entry_addrs.len();
        debug_assert!(levels >= 2, "walks touch at least two levels");

        // Find the deepest non-leaf level whose entry the MMU cache
        // holds; the walk resumes just below it. (Leaf is index
        // levels-1; non-leaf candidates are indices 0..levels-1, where
        // deeper = closer to the leaf.)
        let mut start = 0usize;
        for i in (0..levels - 1).rev() {
            if self.mmu_cache.lookup_tagged(path.entry_addrs[i], tag) {
                start = i + 1;
                break;
            }
        }

        let mut latency = 0u64;
        let mut memory_accesses = 0u64;
        for (i, &addr) in path.entry_addrs.iter().enumerate().skip(start) {
            if self.mode == WalkMode::Nested {
                // Each guest page-table access is itself host-translated.
                let (l, a) = self.charge_host_walk(addr, caches);
                latency += l;
                memory_accesses += a;
            }
            latency += caches.access_pte(addr);
            memory_accesses += 1;
            if i < levels - 1 {
                self.mmu_cache.insert_tagged(addr, tag);
            }
        }
        if self.mode == WalkMode::Nested {
            // The final guest-physical data address needs one more host
            // translation before the access can issue.
            let (l, a) =
                self.charge_host_walk(path.translation.pfn.addr(), caches);
            latency += l;
            memory_accesses += a;
        }

        let leaf = match path.translation.kind {
            PageKind::Base => WalkedLeaf::Base { line: page_table.pte_line(vpn) },
            PageKind::Super { base_vpn } => {
                let within = vpn.distance_from(base_vpn).expect("vpn within superpage");
                WalkedLeaf::Super {
                    base_vpn,
                    base_pfn: Pfn::new(path.translation.pfn.raw() - within),
                    flags: path.translation.flags,
                }
            }
        };

        self.stats.total_latency += latency;
        Some(WalkOutcome {
            translation: path.translation,
            leaf,
            latency,
            memory_accesses,
        })
    }

    /// Batched walk: translates every VPN of `vpns` in order, appending
    /// one outcome per VPN to `out` (`None` for page faults). MMU-cache
    /// state, counters, and cache-hierarchy charging are byte-identical
    /// to the same sequence of [`PageWalker::walk`] calls.
    pub fn translate_batch(
        &mut self,
        page_table: &PageTable,
        vpns: &[Vpn],
        caches: &mut impl PteFetch,
        out: &mut Vec<Option<WalkOutcome>>,
    ) {
        out.reserve(vpns.len());
        for &vpn in vpns {
            out.push(self.walk(page_table, vpn, caches));
        }
    }

    /// Removes the given page-table entry addresses from the guest MMU
    /// page-walk cache — the per-VPN shootdown a kernel page-table
    /// mutation must deliver, so the next walk of the affected page
    /// re-fetches its (changed) path instead of relying on a whole-cache
    /// [`PageWalker::flush`]. The host (EPT) cache is untouched: guest
    /// `invlpg` does not reach host paging structures.
    ///
    /// Returns how many addresses were actually resident.
    pub fn invalidate_addrs(&mut self, addrs: &[PhysAddr]) -> usize {
        let tag = self.tag();
        self.invalidate_addrs_asid(addrs, tag)
    }

    /// ASID-directed shootdown (SMP tagged mode): drops the given entry
    /// addresses from `asid`'s slice of the MMU cache only — an aliasing
    /// entry another process walked must survive. Returns how many
    /// addresses were resident.
    pub fn invalidate_addrs_asid(&mut self, addrs: &[PhysAddr], asid: Asid) -> usize {
        addrs
            .iter()
            .filter(|&&a| self.mmu_cache.invalidate_addr_tagged(a, asid))
            .count()
    }

    /// Per-VPN shootdown convenience: drops every MMU-cache entry on the
    /// current walk path of `vpn` in `page_table`. Free of latency and
    /// stat charges — this models invalidation hardware, not a walk.
    /// Returns how many cached levels were dropped.
    pub fn invalidate(&mut self, page_table: &PageTable, vpn: Vpn) -> usize {
        match page_table.walk(vpn) {
            Some(path) => self.invalidate_addrs(&path.entry_addrs),
            None => 0,
        }
    }

    /// Whether the guest MMU cache holds `addr` under the ASID-0 tag
    /// (checker visibility, untagged mode).
    pub fn mmu_contains(&self, addr: PhysAddr) -> bool {
        self.mmu_cache.contains(addr)
    }

    /// Whether the guest MMU cache holds `addr` under `asid`'s tag
    /// (cross-core checker visibility in SMP tagged mode).
    pub fn mmu_contains_asid(&self, addr: PhysAddr, asid: Asid) -> bool {
        self.mmu_cache.contains_tagged(addr, asid)
    }

    /// Flushes the MMU caches (e.g. context switch).
    pub fn flush(&mut self) {
        self.mmu_cache.flush();
        self.host_mmu_cache.flush();
    }

    /// Drops every guest MMU-cache entry tagged `asid` (process exit /
    /// ASID recycling). Returns the number removed.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.mmu_cache.flush_asid(asid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;
    use colt_os_mem::page_table::Pte;

    fn mapped_pt(n: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..n {
            pt.map_base(Vpn::new(0x1000 + i), Pte::new(Pfn::new(0x500 + i), PteFlags::user_data()));
        }
        pt
    }

    #[test]
    fn cold_walk_touches_four_levels() {
        let pt = mapped_pt(1);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        let o = w.walk(&pt, Vpn::new(0x1000), &mut caches).unwrap();
        assert_eq!(o.memory_accesses, 4);
        assert_eq!(o.latency, 4 * caches.latency_model().dram);
        assert_eq!(o.translation.pfn, Pfn::new(0x500));
    }

    #[test]
    fn mmu_cache_skips_upper_levels_on_repeat_walks() {
        let pt = mapped_pt(16);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        let first = w.walk(&pt, Vpn::new(0x1000), &mut caches).unwrap();
        // A neighboring page shares all non-leaf entries: only the leaf
        // PTE fetch remains, and it hits the LLC line just fetched.
        let second = w.walk(&pt, Vpn::new(0x1001), &mut caches).unwrap();
        assert_eq!(second.memory_accesses, 1, "MMU cache skipped 3 levels");
        assert!(second.latency < first.latency);
        assert_eq!(second.latency, caches.latency_model().llc);
    }

    #[test]
    fn unmapped_walk_is_a_fault() {
        let pt = PageTable::new();
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        assert!(w.walk(&pt, Vpn::new(9), &mut caches).is_none());
        assert_eq!(w.stats().faults, 1);
    }

    #[test]
    fn base_walk_returns_the_pte_line() {
        let pt = mapped_pt(8);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        let o = w.walk(&pt, Vpn::new(0x1002), &mut caches).unwrap();
        match o.leaf {
            WalkedLeaf::Base { line } => {
                assert_eq!(line.base_vpn, Vpn::new(0x1000));
                assert!(line.ptes.iter().all(Option::is_some));
            }
            WalkedLeaf::Super { .. } => panic!("expected base leaf"),
        }
    }

    #[test]
    fn superpage_walk_returns_super_leaf_with_three_levels() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(2048), PteFlags::user_data()));
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        let o = w.walk(&pt, Vpn::new(512 + 33), &mut caches).unwrap();
        assert_eq!(o.memory_accesses, 3);
        match o.leaf {
            WalkedLeaf::Super { base_vpn, base_pfn, .. } => {
                assert_eq!(base_vpn, Vpn::new(512));
                assert_eq!(base_pfn, Pfn::new(2048));
            }
            WalkedLeaf::Base { .. } => panic!("expected superpage leaf"),
        }
        assert_eq!(o.translation.pfn, Pfn::new(2048 + 33));
    }

    #[test]
    fn cold_nested_walk_is_far_costlier_than_native() {
        // The textbook two-dimensional walk is 24 accesses; the host
        // paging-structure cache (shared across the five host walks of
        // one guest walk) brings the cold cost to 15 here — still ~4x
        // the native walk's 4.
        let pt = mapped_pt(1);
        let mut w = PageWalker::paper_default().nested();
        let mut caches = CacheHierarchy::core_i7();
        let o = w.walk(&pt, Vpn::new(0x1000), &mut caches).unwrap();
        assert!(
            (15..=24).contains(&o.memory_accesses),
            "got {} accesses",
            o.memory_accesses
        );
        assert_eq!(w.mode(), WalkMode::Nested);
    }

    #[test]
    fn nested_walks_amortize_through_both_mmu_caches() {
        let pt = mapped_pt(16);
        let mut w = PageWalker::paper_default().nested();
        let mut caches = CacheHierarchy::core_i7();
        let first = w.walk(&pt, Vpn::new(0x1000), &mut caches).unwrap();
        let second = w.walk(&pt, Vpn::new(0x1001), &mut caches).unwrap();
        assert!(second.memory_accesses < first.memory_accesses / 3);
        assert!(second.latency < first.latency);
    }

    #[test]
    fn nested_walks_cost_more_than_native() {
        let pt = mapped_pt(64);
        let run = |nested: bool| {
            let mut w = if nested {
                PageWalker::paper_default().nested()
            } else {
                PageWalker::paper_default()
            };
            let mut caches = CacheHierarchy::core_i7();
            let mut total = 0u64;
            for i in 0..64 {
                total += w.walk(&pt, Vpn::new(0x1000 + i), &mut caches).unwrap().latency;
            }
            total
        };
        let native = run(false);
        let nested = run(true);
        assert!(
            nested > native * 3 / 2,
            "nested ({nested}) must cost well beyond native ({native})"
        );
    }

    #[test]
    fn walker_stats_accumulate() {
        let pt = mapped_pt(4);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        w.walk(&pt, Vpn::new(0x1000), &mut caches);
        w.walk(&pt, Vpn::new(0x1001), &mut caches);
        let s = w.stats();
        assert_eq!(s.walks, 2);
        assert!(s.total_latency > 0);
    }

    #[test]
    fn per_vpn_invalidation_refetches_only_the_shot_path() {
        let pt = mapped_pt(16);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        w.walk(&pt, Vpn::new(0x1000), &mut caches);
        // Shoot down vpn 0x1000's path: all three non-leaf levels drop.
        let dropped = w.invalidate(&pt, Vpn::new(0x1000));
        assert_eq!(dropped, 3, "three non-leaf levels were cached");
        caches.flush();
        let o = w.walk(&pt, Vpn::new(0x1001), &mut caches).unwrap();
        assert_eq!(o.memory_accesses, 4, "full path re-fetched after shootdown");
        // A second shootdown finds nothing left to drop.
        assert_eq!(w.invalidate_addrs(&pt.walk(Vpn::new(0x1000)).unwrap().entry_addrs), 3);
        assert_eq!(w.invalidate(&pt, Vpn::new(0x1000)), 0);
    }

    #[test]
    fn invalidate_of_unmapped_vpn_is_harmless() {
        let pt = mapped_pt(1);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        w.walk(&pt, Vpn::new(0x1000), &mut caches);
        assert_eq!(w.invalidate(&pt, Vpn::new(0x9999)), 0);
        assert_eq!(w.stats().walks, 1, "invalidation charges no walk");
    }

    #[test]
    fn translate_batch_matches_sequential_walks() {
        let pt = mapped_pt(16);
        let vpns: Vec<Vpn> = [0x1000, 0x1001, 0x1008, 0x9999, 0x100f].map(Vpn::new).to_vec();
        let mut seq = PageWalker::paper_default();
        let mut seq_caches = CacheHierarchy::core_i7();
        let expected: Vec<Option<WalkOutcome>> =
            vpns.iter().map(|&v| seq.walk(&pt, v, &mut seq_caches)).collect();
        let mut batched = PageWalker::paper_default();
        let mut batched_caches = CacheHierarchy::core_i7();
        let mut got = Vec::new();
        batched.translate_batch(&pt, &vpns, &mut batched_caches, &mut got);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            match (g, e) {
                (None, None) => {}
                (Some(g), Some(e)) => {
                    assert_eq!(g.translation.pfn, e.translation.pfn);
                    assert_eq!(g.latency, e.latency);
                    assert_eq!(g.memory_accesses, e.memory_accesses);
                }
                _ => panic!("fault/translation mismatch"),
            }
        }
        assert_eq!(batched.stats(), seq.stats());
        assert_eq!(batched.mmu_stats(), seq.mmu_stats());
    }

    #[test]
    fn flush_forgets_cached_levels() {
        let pt = mapped_pt(2);
        let mut w = PageWalker::paper_default();
        let mut caches = CacheHierarchy::core_i7();
        w.walk(&pt, Vpn::new(0x1000), &mut caches);
        w.flush();
        caches.flush();
        let o = w.walk(&pt, Vpn::new(0x1001), &mut caches).unwrap();
        assert_eq!(o.memory_accesses, 4, "everything re-fetched after flush");
    }
}
