//! Generic set-associative cache with LRU replacement, used for the L1,
//! L2, and last-level data caches of the simulated memory hierarchy
//! (paper §5.2.1: 32KB L1 / 256KB L2 / 4MB LLC, Core-i7-like).

use colt_os_mem::addr::{PhysAddr, CACHE_LINE_SIZE};

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// A physically indexed set-associative cache of 64-byte lines.
///
/// ```
/// use colt_memsim::cache::Cache;
/// use colt_os_mem::addr::PhysAddr;
/// let mut c = Cache::new(32 * 1024, 8); // 32KB, 8-way
/// assert!(!c.access(PhysAddr::new(0x1000)));  // cold miss
/// assert!(c.access(PhysAddr::new(0x1008)));   // same line: hit
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // line numbers, MRU first
    ways: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways` associativity.
    ///
    /// # Panics
    /// Panics unless the resulting set count is a positive power of two.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let lines = size_bytes / CACHE_LINE_SIZE as usize;
        assert!(lines.is_multiple_of(ways), "size must divide into ways");
        let num_sets = lines / ways;
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: u64) -> usize {
        (line as usize) & (self.sets.len() - 1)
    }

    /// Accesses `addr`, returning `true` on a hit. Misses allocate the
    /// line (evicting LRU if needed).
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let line = addr.cache_line();
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.ways {
            set.pop();
            self.stats.evictions += 1;
        }
        set.insert(0, line);
        false
    }

    /// Checks residency without updating LRU or counters.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let line = addr.cache_line();
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        let line = addr.cache_line();
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            return true;
        }
        false
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_derived_from_size_and_ways() {
        let c = Cache::new(32 * 1024, 8);
        assert_eq!(c.num_sets(), 64);
        let c = Cache::new(4 * 1024 * 1024, 16);
        assert_eq!(c.num_sets(), 4096);
    }

    #[test]
    fn same_line_hits_after_miss() {
        let mut c = Cache::new(1024, 2);
        assert!(!c.access(PhysAddr::new(100)));
        assert!(c.access(PhysAddr::new(100)));
        assert!(c.access(PhysAddr::new(127)), "same 64B line");
        assert!(!c.access(PhysAddr::new(128)), "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = Cache::new(256, 2); // 2 sets, 2 ways
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.access(PhysAddr::new(0));
        c.access(PhysAddr::new(2 * 64));
        c.access(PhysAddr::new(0)); // line 0 MRU
        c.access(PhysAddr::new(4 * 64)); // evicts line 2
        assert!(c.probe(PhysAddr::new(0)));
        assert!(!c.probe(PhysAddr::new(2 * 64)));
        assert!(c.probe(PhysAddr::new(4 * 64)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = Cache::new(1024, 2);
        c.access(PhysAddr::new(0));
        c.access(PhysAddr::new(64));
        assert!(c.invalidate(PhysAddr::new(0)));
        assert!(!c.invalidate(PhysAddr::new(0)));
        assert_eq!(c.occupancy(), 1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = Cache::new(1024, 2);
        c.access(PhysAddr::new(0));
        c.access(PhysAddr::new(0));
        c.access(PhysAddr::new(0));
        c.access(PhysAddr::new(4096));
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        let _ = Cache::new(192, 1);
    }
}
