//! The three-level data-cache hierarchy (paper §5.2.1: 32KB L1, 256KB
//! L2, 4MB LLC). Page-table entries are cached no higher than the LLC
//! (§4.1.1), matching x86 systems with dedicated MMU caches.

use crate::cache::{Cache, CacheStats};
use crate::latency::LatencyModel;
use colt_os_mem::addr::PhysAddr;

/// Where page-table-entry fetches land during a walk. The walker is
/// generic over this so the same walk logic runs against a single-core
/// [`CacheHierarchy`] (PTEs go to its private LLC) or, in the SMP model,
/// against the one [`SharedLlc`] all cores' walkers contend on.
pub trait PteFetch {
    /// Fetches one page-table entry, returning the latency in cycles.
    fn access_pte(&mut self, addr: PhysAddr) -> u64;
}

/// The simulated cache hierarchy.
///
/// ```
/// use colt_memsim::hierarchy::CacheHierarchy;
/// use colt_os_mem::addr::PhysAddr;
/// let mut caches = CacheHierarchy::core_i7();
/// let cold = caches.access_data(PhysAddr::new(0x10_000));
/// let warm = caches.access_data(PhysAddr::new(0x10_000));
/// assert!(warm < cold);
/// ```
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    latency: LatencyModel,
}

impl CacheHierarchy {
    /// Builds a hierarchy with explicit geometries:
    /// `(size_bytes, ways)` per level.
    pub fn new(l1: (usize, usize), l2: (usize, usize), llc: (usize, usize), latency: LatencyModel) -> Self {
        Self {
            l1: Cache::new(l1.0, l1.1),
            l2: Cache::new(l2.0, l2.1),
            llc: Cache::new(llc.0, llc.1),
            latency,
        }
    }

    /// The paper's Core-i7-like configuration: 32KB/8-way L1,
    /// 256KB/8-way L2, 4MB/16-way LLC.
    pub fn core_i7() -> Self {
        Self::new(
            (32 * 1024, 8),
            (256 * 1024, 8),
            (4 * 1024 * 1024, 16),
            LatencyModel::default(),
        )
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// A data access: probes L1 → L2 → LLC, fills all levels on the way
    /// back. Returns the access latency in cycles.
    pub fn access_data(&mut self, addr: PhysAddr) -> u64 {
        if self.l1.access(addr) {
            return self.latency.data_hit_at(1);
        }
        if self.l2.access(addr) {
            return self.latency.data_hit_at(2);
        }
        if self.llc.access(addr) {
            return self.latency.data_hit_at(3);
        }
        self.latency.data_hit_at(4)
    }

    /// A page-table-entry fetch during a walk: the LLC is the highest
    /// cache level for PTEs (§4.1.1). Returns the fetch latency.
    pub fn access_pte(&mut self, addr: PhysAddr) -> u64 {
        let hit = self.llc.access(addr);
        self.latency.pte_fetch(hit)
    }

    /// L1 data-cache counters.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 cache counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// LLC counters (data + PTE traffic).
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Flushes all levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::core_i7()
    }
}

impl PteFetch for CacheHierarchy {
    fn access_pte(&mut self, addr: PhysAddr) -> u64 {
        CacheHierarchy::access_pte(self, addr)
    }
}

/// The last-level cache all cores of an SMP machine share. PTE fetches
/// (from every core's walker) and private-cache misses both land here,
/// so one core's walk traffic warms — or thrashes — the LLC the others
/// see, which is exactly the contention the multiprogrammed experiments
/// measure. The SMP simulator is single-threaded, so plain `&mut`
/// sharing suffices.
#[derive(Clone, Debug)]
pub struct SharedLlc {
    llc: Cache,
    latency: LatencyModel,
}

impl SharedLlc {
    /// Builds a shared LLC with an explicit `(size_bytes, ways)`
    /// geometry.
    pub fn new(llc: (usize, usize), latency: LatencyModel) -> Self {
        Self { llc: Cache::new(llc.0, llc.1), latency }
    }

    /// The paper's 4MB/16-way LLC, shared instead of private.
    pub fn core_i7() -> Self {
        Self::new((4 * 1024 * 1024, 16), LatencyModel::default())
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// LLC counters (data + PTE traffic from all cores).
    pub fn stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Flushes the LLC.
    pub fn flush(&mut self) {
        self.llc.flush();
    }
}

impl PteFetch for SharedLlc {
    fn access_pte(&mut self, addr: PhysAddr) -> u64 {
        let hit = self.llc.access(addr);
        self.latency.pte_fetch(hit)
    }
}

/// One core's private L1/L2 data caches, backed by a [`SharedLlc`].
#[derive(Clone, Debug)]
pub struct PrivateCaches {
    l1: Cache,
    l2: Cache,
    latency: LatencyModel,
}

impl PrivateCaches {
    /// Builds private caches with explicit `(size_bytes, ways)`
    /// geometries per level.
    pub fn new(l1: (usize, usize), l2: (usize, usize), latency: LatencyModel) -> Self {
        Self { l1: Cache::new(l1.0, l1.1), l2: Cache::new(l2.0, l2.1), latency }
    }

    /// The paper's per-core levels: 32KB/8-way L1, 256KB/8-way L2.
    pub fn core_i7() -> Self {
        Self::new((32 * 1024, 8), (256 * 1024, 8), LatencyModel::default())
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// A data access: probes the private L1 → L2, then the shared LLC,
    /// filling all levels on the way back. Returns the latency in
    /// cycles.
    pub fn access_data(&mut self, addr: PhysAddr, llc: &mut SharedLlc) -> u64 {
        if self.l1.access(addr) {
            return self.latency.data_hit_at(1);
        }
        if self.l2.access(addr) {
            return self.latency.data_hit_at(2);
        }
        if llc.llc.access(addr) {
            return self.latency.data_hit_at(3);
        }
        self.latency.data_hit_at(4)
    }

    /// Private L1 counters.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// Private L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Flushes both private levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_access_fills_all_levels() {
        let mut h = CacheHierarchy::core_i7();
        let a = PhysAddr::new(0x4_0000);
        assert_eq!(h.access_data(a), h.latency_model().dram);
        assert_eq!(h.access_data(a), h.latency_model().l1);
        assert_eq!(h.l1_stats().hits, 1);
        assert_eq!(h.llc_stats().misses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut h = CacheHierarchy::new((128, 2), (1024, 2), (8192, 2), LatencyModel::default());
        let victim = PhysAddr::new(0);
        h.access_data(victim);
        // Evict the victim line from tiny L1 set 0 (64B lines, 1 set).
        h.access_data(PhysAddr::new(2 * 64));
        h.access_data(PhysAddr::new(4 * 64));
        let lat = h.access_data(victim);
        assert_eq!(lat, h.latency_model().l2, "victim still in L2");
    }

    #[test]
    fn pte_fetches_bypass_l1_and_l2() {
        let mut h = CacheHierarchy::core_i7();
        let pte_addr = PhysAddr::new(1 << 40);
        assert_eq!(h.access_pte(pte_addr), h.latency_model().dram);
        assert_eq!(h.access_pte(pte_addr), h.latency_model().llc);
        assert_eq!(h.l1_stats().hits + h.l1_stats().misses, 0, "PTEs never touch L1");
        assert_eq!(h.l2_stats().hits + h.l2_stats().misses, 0);
    }

    #[test]
    fn one_pte_line_serves_eight_neighbors() {
        // The fill property CoLT relies on: one LLC line = 8 PTEs.
        let mut h = CacheHierarchy::core_i7();
        let base = 1u64 << 40;
        h.access_pte(PhysAddr::new(base));
        for i in 1..8 {
            assert_eq!(
                h.access_pte(PhysAddr::new(base + i * 8)),
                h.latency_model().llc,
                "PTE {i} shares the fetched line"
            );
        }
        assert_eq!(
            h.access_pte(PhysAddr::new(base + 64)),
            h.latency_model().dram,
            "ninth PTE is the next line"
        );
    }

    #[test]
    fn flush_empties_everything() {
        let mut h = CacheHierarchy::core_i7();
        let a = PhysAddr::new(0x8000);
        h.access_data(a);
        h.flush();
        assert_eq!(h.access_data(a), h.latency_model().dram);
    }
}
