//! MMU page-walk cache (paper §5.2.1: "unlike past work, we model a more
//! realistic TLB hierarchy with 22-entry MMU caches, accessed on TLB
//! misses to accelerate page table walks").
//!
//! The cache holds upper-level (non-leaf) page-table entries, keyed by the
//! physical address of the entry. On a walk, the deepest cached entry
//! lets the walker skip every level above it; the leaf PTE must always be
//! fetched from the memory hierarchy.

use colt_os_mem::addr::{Asid, PhysAddr};

/// Hit/miss counters for the MMU cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MmuCacheStats {
    /// Walk levels skipped thanks to cached entries.
    pub level_hits: u64,
    /// Non-leaf levels that had to be fetched.
    pub level_misses: u64,
}

/// A small fully-associative page-walk cache with LRU replacement.
///
/// ```
/// use colt_memsim::mmu_cache::MmuCache;
/// use colt_os_mem::addr::PhysAddr;
/// let mut c = MmuCache::new(22);
/// assert!(!c.contains(PhysAddr::new(0x100)));
/// c.insert(PhysAddr::new(0x100));
/// assert!(c.contains(PhysAddr::new(0x100)));
/// ```
#[derive(Clone, Debug)]
pub struct MmuCache {
    entries: Vec<(Asid, u64)>, // (tag, entry address), MRU first
    capacity: usize,
    stats: MmuCacheStats,
}

impl MmuCache {
    /// Creates a cache of `capacity` entries (the paper uses 22).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MMU cache must hold at least one entry");
        Self { entries: Vec::with_capacity(capacity), capacity, stats: MmuCacheStats::default() }
    }

    /// The paper's 22-entry configuration.
    pub fn paper_default() -> Self {
        Self::new(22)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MmuCacheStats {
        self.stats
    }

    /// Checks membership without LRU update. Untagged entry point:
    /// checks the shared ASID-0 tag all entries carry outside SMP tagged
    /// mode.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.contains_tagged(addr, Asid(0))
    }

    /// Checks membership of `(asid, addr)` without LRU update. Entry
    /// addresses alias across processes (each page table numbers its
    /// nodes independently), so the tag is part of the key.
    pub fn contains_tagged(&self, addr: PhysAddr, asid: Asid) -> bool {
        self.entries.contains(&(asid, addr.raw()))
    }

    /// Looks up an entry address, promoting it on hit and counting the
    /// outcome.
    pub fn lookup(&mut self, addr: PhysAddr) -> bool {
        self.lookup_tagged(addr, Asid(0))
    }

    /// Tagged lookup: only `(asid, addr)` can hit.
    pub fn lookup_tagged(&mut self, addr: PhysAddr, asid: Asid) -> bool {
        if let Some(pos) = self.entries.iter().position(|&e| e == (asid, addr.raw())) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            self.stats.level_hits += 1;
            true
        } else {
            self.stats.level_misses += 1;
            false
        }
    }

    /// Inserts an entry address (no-op if already resident; promotes it).
    pub fn insert(&mut self, addr: PhysAddr) {
        self.insert_tagged(addr, Asid(0));
    }

    /// Tagged insert: the entry is keyed `(asid, addr)`.
    pub fn insert_tagged(&mut self, addr: PhysAddr, asid: Asid) {
        if let Some(pos) = self.entries.iter().position(|&e| e == (asid, addr.raw())) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (asid, addr.raw()));
    }

    /// Removes one entry address if resident (the per-entry half of an
    /// `invlpg`-style shootdown: dropping exactly the page-table entries
    /// a mutated walk path used, instead of flushing the whole cache).
    /// Returns whether the address was present.
    pub fn invalidate_addr(&mut self, addr: PhysAddr) -> bool {
        self.invalidate_addr_tagged(addr, Asid(0))
    }

    /// Tagged invalidation: removes `(asid, addr)` if resident. A
    /// shootdown for one address space must not clip another space's
    /// aliasing entry.
    pub fn invalidate_addr_tagged(&mut self, addr: PhysAddr, asid: Asid) -> bool {
        if let Some(pos) = self.entries.iter().position(|&e| e == (asid, addr.raw())) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every entry tagged `asid` (process exit / ASID
    /// recycling). Returns the number removed.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let before = self.entries.len();
        self.entries.retain(|&(a, _)| a != asid);
        before - self.entries.len()
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Live entry count.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_and_promotes() {
        let mut c = MmuCache::new(2);
        c.insert(PhysAddr::new(1));
        c.insert(PhysAddr::new(2));
        assert!(c.lookup(PhysAddr::new(1))); // promotes 1
        c.insert(PhysAddr::new(3)); // evicts 2 (LRU)
        assert!(c.contains(PhysAddr::new(1)));
        assert!(!c.contains(PhysAddr::new(2)));
        let s = c.stats();
        assert_eq!(s.level_hits, 1);
    }

    #[test]
    fn reinsert_promotes_without_duplicating() {
        let mut c = MmuCache::new(3);
        c.insert(PhysAddr::new(1));
        c.insert(PhysAddr::new(2));
        c.insert(PhysAddr::new(1));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn paper_default_is_22_entries() {
        let mut c = MmuCache::paper_default();
        for i in 0..30 {
            c.insert(PhysAddr::new(i));
        }
        assert_eq!(c.occupancy(), 22);
    }

    #[test]
    fn invalidate_addr_removes_exactly_one_entry() {
        let mut c = MmuCache::new(4);
        c.insert(PhysAddr::new(1));
        c.insert(PhysAddr::new(2));
        assert!(c.invalidate_addr(PhysAddr::new(1)));
        assert!(!c.contains(PhysAddr::new(1)));
        assert!(c.contains(PhysAddr::new(2)), "other entries untouched");
        assert!(!c.invalidate_addr(PhysAddr::new(1)), "already gone");
    }

    #[test]
    fn flush_empties() {
        let mut c = MmuCache::new(4);
        c.insert(PhysAddr::new(7));
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.lookup(PhysAddr::new(7)));
    }
}
