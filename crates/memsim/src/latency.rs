//! Cycle-cost model for the simulated memory system.
//!
//! Latencies approximate the Intel Core i7 generation the paper simulates
//! (§5.2.1). Only *relative* costs matter for reproducing the paper's
//! performance shapes; absolute cycle counts are configurable.

/// Access latencies in cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// L1 data-cache hit.
    pub l1: u64,
    /// L2 cache hit.
    pub l2: u64,
    /// Last-level-cache hit.
    pub llc: u64,
    /// DRAM access.
    pub dram: u64,
    /// L2 TLB lookup (added to an L1-TLB miss that hits in the L2 TLB).
    pub l2_tlb: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self { l1: 4, l2: 12, llc: 38, dram: 200, l2_tlb: 7 }
    }
}

impl LatencyModel {
    /// Latency of a data access that first hits at the given level
    /// (1 = L1, 2 = L2, 3 = LLC, 4 = DRAM).
    pub fn data_hit_at(&self, level: u8) -> u64 {
        match level {
            1 => self.l1,
            2 => self.l2,
            3 => self.llc,
            _ => self.dram,
        }
    }

    /// Latency of a page-table-entry fetch: PTEs are cached no higher
    /// than the LLC (paper §4.1.1), so a fetch costs an LLC hit or a
    /// DRAM access.
    pub fn pte_fetch(&self, llc_hit: bool) -> u64 {
        if llc_hit {
            self.llc
        } else {
            self.dram
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        let m = LatencyModel::default();
        assert!(m.l1 < m.l2 && m.l2 < m.llc && m.llc < m.dram);
    }

    #[test]
    fn data_hit_levels() {
        let m = LatencyModel::default();
        assert_eq!(m.data_hit_at(1), m.l1);
        assert_eq!(m.data_hit_at(3), m.llc);
        assert_eq!(m.data_hit_at(4), m.dram);
        assert_eq!(m.data_hit_at(9), m.dram);
    }

    #[test]
    fn pte_fetch_costs() {
        let m = LatencyModel::default();
        assert_eq!(m.pte_fetch(true), m.llc);
        assert_eq!(m.pte_fetch(false), m.dram);
    }
}
