//! The SMP machine: lockstep execution of a co-scheduled multiprogrammed
//! mix over N cores with private translation state and one shared LLC.
//!
//! ## Scheduling
//!
//! Workloads are placed by affinity — part `i` of the
//! [`MultiWorkload`] runs on core `i % cores` — and each core
//! round-robins its own run queue every [`SmpConfig::quantum`] steps.
//! A switch on an untagged core full-flushes its TLB and walker (the
//! paper's no-PCID machine); a tagged core just retargets the current
//! ASID and keeps every warmed entry.
//!
//! ## Shootdowns
//!
//! Kernel churn (compaction slices, direct compaction, THP splits,
//! reclaim) mutates page tables and logs
//! [`ShootdownEvent`](colt_os_mem::shootdown::ShootdownEvent)s. The
//! machine drains the log immediately after every mutation and delivers
//! each event to every core that may hold the event's address space:
//! in tagged mode that is every core whose residency set contains the
//! ASID (entries survive switches, so residency is sticky until a
//! flush); in untagged mode only cores *currently running* the ASID can
//! hold its entries, because switches flush everything. Deliveries to
//! the initiating core are local `invlpg`s; deliveries to any other
//! core are IPIs and charge the [`IpiCostModel`](crate::IpiCostModel)
//! to both ends.
//!
//! The kernel thread doing the churn is modeled as rotating over the
//! cores, so the initiator — and therefore which deliveries are remote
//! — is deterministic.

use crate::{CoreCounters, CoreResult, SmpConfig, SmpResult};
use colt_memsim::hierarchy::{PrivateCaches, SharedLlc};
use colt_memsim::walker::{PageWalker, WalkedLeaf, WalkerStats};
use colt_os_mem::addr::{Asid, PhysAddr};
use colt_os_mem::kernel::Kernel;
use colt_tlb::hierarchy::{TlbHierarchy, TlbLevel, WalkFill};
use colt_tlb::stats::HierarchyStats;
use colt_workloads::pattern::PatternGen;
use colt_workloads::scenario::MultiWorkload;

/// One core's private machinery.
struct Core {
    tlb: TlbHierarchy,
    walker: PageWalker,
    caches: PrivateCaches,
    /// Indices into `multi.parts` this core co-schedules.
    runq: Vec<usize>,
    /// Position of the running part within `runq`.
    slot: usize,
    /// ASIDs whose entries may still be resident in this core's TLB or
    /// walk caches — a conservative superset, cleared on full flushes.
    resident: Vec<Asid>,
    counters: CoreCounters,
}

/// Snapshot of one core's counters at the measurement boundary.
#[derive(Clone, Copy)]
struct CoreMark {
    tlb: HierarchyStats,
    walker: WalkerStats,
    counters: CoreCounters,
}

/// The whole simulated machine. Single-threaded; determinism comes from
/// the lockstep step loop, not from any synchronization.
pub struct SmpMachine {
    config: SmpConfig,
    multi: MultiWorkload,
    patterns: Vec<PatternGen>,
    cores: Vec<Core>,
    llc: SharedLlc,
    step: u64,
    churns: u64,
    marks: Vec<CoreMark>,
}

impl SmpMachine {
    /// Builds the machine around a prepared mix. Part `i` gets affinity
    /// to core `i % cores`; patterns are seeded
    /// `pattern_seed + part_index` exactly like the single-core
    /// multiprogrammed run.
    ///
    /// # Panics
    /// Panics if `multi` has no parts.
    pub fn new(mut multi: MultiWorkload, config: SmpConfig, pattern_seed: u64) -> Self {
        assert!(!multi.parts.is_empty(), "an SMP mix needs at least one workload");
        let n_cores = config.cores.max(1);
        let patterns: Vec<PatternGen> = (0..multi.parts.len())
            .map(|i| multi.pattern(i, pattern_seed.wrapping_add(i as u64)))
            .collect();
        multi.kernel.enable_shootdown_log();
        // Preparation may already have compacted or reclaimed; nothing
        // is cached yet, so those events are moot.
        let _ = multi.kernel.take_shootdowns();

        let mut cores = Vec::with_capacity(n_cores);
        for c in 0..n_cores {
            let runq: Vec<usize> =
                (0..multi.parts.len()).filter(|i| i % n_cores == c).collect();
            let mut walker = if config.nested_paging {
                PageWalker::paper_default().nested()
            } else {
                PageWalker::paper_default()
            };
            if config.is_tagged() {
                walker = walker.with_asid_tagging();
            }
            let mut tlb = TlbHierarchy::new(config.tlb);
            if config.is_tagged() {
                if let Some(&first) = runq.first() {
                    let asid = multi.parts[first].1;
                    tlb.set_current_asid(asid);
                    walker.set_current_asid(asid);
                }
            }
            cores.push(Core {
                tlb,
                walker,
                caches: PrivateCaches::core_i7(),
                runq,
                slot: 0,
                resident: Vec::new(),
                counters: CoreCounters::default(),
            });
        }
        let marks = cores
            .iter()
            .map(|c| CoreMark {
                tlb: c.tlb.stats(),
                walker: c.walker.stats(),
                counters: c.counters,
            })
            .collect();
        Self {
            config,
            multi,
            patterns,
            cores,
            llc: SharedLlc::core_i7(),
            step: 0,
            churns: 0,
            marks,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Global steps executed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Whether the machine runs in ASID-tagged mode.
    pub fn is_tagged(&self) -> bool {
        self.config.is_tagged()
    }

    /// The shared kernel (for oracle checks against live page tables).
    pub fn kernel(&self) -> &Kernel {
        &self.multi.kernel
    }

    /// Arms deterministic fault injection in the shared kernel. Called
    /// after construction so workload preparation (aging, memhog, the
    /// allocation phase) matches the fault-free machine bit for bit and
    /// only the simulated phase degrades.
    pub fn install_fault_plan(&mut self, config: colt_os_mem::faults::FaultConfig) {
        self.multi.kernel.set_fault_plan(config);
    }

    /// The shared kernel's counters (fault-injection and degradation
    /// totals included).
    pub fn kernel_stats(&self) -> colt_os_mem::kernel::KernelStats {
        self.multi.kernel.stats()
    }

    /// Core `c`'s TLB hierarchy (read-only inspection).
    pub fn core_tlb(&self, c: usize) -> &TlbHierarchy {
        &self.cores[c].tlb
    }

    /// Core `c`'s page walker (read-only inspection).
    pub fn core_walker(&self, c: usize) -> &PageWalker {
        &self.cores[c].walker
    }

    /// The ASID core `c` is currently running (`None` for idle cores
    /// when there are more cores than workloads).
    pub fn running_asid(&self, c: usize) -> Option<Asid> {
        let core = &self.cores[c];
        core.runq.get(core.slot).map(|&i| self.multi.parts[i].1)
    }

    /// ASIDs whose entries may be resident on core `c`.
    pub fn resident_asids(&self, c: usize) -> &[Asid] {
        &self.cores[c].resident
    }

    /// Advances every core by one memory reference (in core order),
    /// handling scheduling boundaries and kernel churn first.
    pub fn step(&mut self) {
        if self.step > 0 && self.step % self.config.quantum == 0 {
            self.switch_all();
        }
        if let Some(period) = self.config.churn_period {
            if self.step % period == period - 1 {
                self.churn();
            }
        }
        for c in 0..self.cores.len() {
            self.access(c);
        }
        self.step += 1;
    }

    /// Runs `steps` global steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Marks the measurement boundary: counters accumulated before this
    /// call are excluded from [`SmpMachine::result`] (warmup).
    pub fn mark(&mut self) {
        self.marks = self
            .cores
            .iter()
            .map(|c| CoreMark {
                tlb: c.tlb.stats(),
                walker: c.walker.stats(),
                counters: c.counters,
            })
            .collect();
    }

    /// Per-core results since the last [`SmpMachine::mark`] (or since
    /// construction), plus shared-LLC counters.
    pub fn result(&self) -> SmpResult {
        let cores = self
            .cores
            .iter()
            .zip(&self.marks)
            .map(|(c, m)| CoreResult {
                tlb: c.tlb.stats().since(&m.tlb),
                walker: c.walker.stats().since(&m.walker),
                counters: c.counters.since(&m.counters),
            })
            .collect();
        SmpResult { cores, llc: self.llc.stats() }
    }

    /// Rotates every multi-workload core to its next runnable part.
    fn switch_all(&mut self) {
        let tagged = self.config.is_tagged();
        for core in &mut self.cores {
            if core.runq.len() < 2 {
                continue;
            }
            core.slot = (core.slot + 1) % core.runq.len();
            let asid = self.multi.parts[core.runq[core.slot]].1;
            core.counters.context_switches += 1;
            if tagged {
                core.tlb.set_current_asid(asid);
                core.walker.set_current_asid(asid);
                core.counters.flushes_avoided += 1;
            } else {
                core.tlb.flush();
                core.walker.flush();
                core.resident.clear();
                core.counters.full_flushes += 1;
            }
        }
    }

    /// One kernel-churn slice: the kernel thread (rotating over cores)
    /// runs a background-compaction tick, a direct compaction pass, a
    /// THP pressure split, or page-cache reclaim, then broadcasts the
    /// resulting shootdowns.
    fn churn(&mut self) {
        match self.churns % 4 {
            0 => self.multi.kernel.tick(),
            1 => {
                self.multi.kernel.compact_now();
            }
            2 => {
                self.multi.kernel.split_superpages(1);
            }
            _ => {
                self.multi.kernel.reclaim_file_pages(32);
            }
        }
        let initiator = (self.churns as usize) % self.cores.len();
        self.churns += 1;
        self.deliver_shootdowns(initiator);
    }

    /// Drains the kernel's shootdown log and delivers every event to
    /// each core that may hold the event's address space. The
    /// `initiator` core performs its own invalidations locally; every
    /// other delivery is an IPI with its cost charged to both ends.
    fn deliver_shootdowns(&mut self, initiator: usize) {
        let tagged = self.config.is_tagged();
        let ipi = self.config.ipi;
        for ev in self.multi.kernel.take_shootdowns() {
            for c in 0..self.cores.len() {
                let holds = if tagged {
                    self.cores[c].resident.contains(&ev.asid)
                } else {
                    self.running_asid(c) == Some(ev.asid)
                        && !self.cores[c].resident.is_empty()
                };
                if !holds {
                    continue;
                }
                let core = &mut self.cores[c];
                if tagged {
                    core.tlb.invalidate_asid(ev.vpn, ev.asid);
                    core.walker.invalidate_addrs_asid(&ev.entry_addrs, ev.asid);
                } else {
                    core.tlb.invalidate(ev.vpn);
                    core.walker.invalidate_addrs(&ev.entry_addrs);
                }
                if c != initiator {
                    let invalidated = 1 + ev.entry_addrs.len() as u64;
                    let remote = &mut self.cores[c].counters;
                    remote.ipis_received += 1;
                    remote.remote_invalidations += invalidated;
                    remote.ipi_cycles += ipi.receive + ipi.per_invalidation * invalidated;
                    let sender = &mut self.cores[initiator].counters;
                    sender.ipis_sent += 1;
                    sender.ipi_cycles += ipi.send;
                }
            }
        }
    }

    /// One memory reference on core `c`.
    fn access(&mut self, c: usize) {
        let Some(&part_idx) = self.cores[c].runq.get(self.cores[c].slot) else {
            return; // idle core: more cores than workloads
        };
        let (ref spec, asid, _) = self.multi.parts[part_idx];
        let ipa = spec.instructions_per_access;
        let r = self.patterns[part_idx].next_ref();
        let latency = *self.cores[c].caches.latency_model();

        self.cores[c].counters.accesses += 1;
        self.cores[c].counters.instructions += ipa;

        let pfn = match self.cores[c].tlb.lookup(r.vpn) {
            Some(hit) => {
                if hit.level == TlbLevel::L2 {
                    self.cores[c].counters.l2_tlb_cycles += latency.l2_tlb;
                }
                hit.pfn
            }
            None => {
                self.cores[c].counters.l2_tlb_cycles += latency.l2_tlb;
                let mapped = self
                    .multi
                    .kernel
                    .process(asid)
                    .expect("mix process is live")
                    .translate(r.vpn)
                    .is_some();
                if !mapped {
                    // Reclaimed or punctured page: fault it back in. The
                    // refault may itself reclaim or compact, so deliver
                    // those shootdowns (initiated here) before walking.
                    if self.multi.kernel.touch(asid, r.vpn).is_err() {
                        return;
                    }
                    self.deliver_shootdowns(c);
                }
                let pt = self.multi.kernel.process(asid).expect("mix process is live").page_table();
                let core = &mut self.cores[c];
                let outcome = core
                    .walker
                    .walk(pt, r.vpn, &mut self.llc)
                    .expect("page is mapped after the refault");
                core.counters.walk_cycles += outcome.latency;
                let fill = match outcome.leaf {
                    WalkedLeaf::Base { line } => WalkFill::Base { line },
                    WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
                        WalkFill::Super { base_vpn, base_pfn, flags }
                    }
                };
                core.tlb.fill(r.vpn, &fill);
                // The SMP model has no per-core prefetch engine; drop any
                // queued prefetch requests (none in the paper configs).
                let _ = core.tlb.take_prefetch_requests();
                if !core.resident.contains(&asid) {
                    core.resident.push(asid);
                }
                outcome.translation.pfn
            }
        };
        let phys = PhysAddr::new(pfn.raw() * 4096 + r.line as u64 * 64);
        let lat = self.cores[c].caches.access_data(phys, &mut self.llc);
        self.cores[c].counters.data_stall_cycles += lat.saturating_sub(latency.l1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_tlb::config::TlbConfig;
    use colt_workloads::scenario::Scenario;
    use colt_workloads::spec::benchmark;

    fn mix(names: &[&str]) -> MultiWorkload {
        let specs: Vec<_> =
            names.iter().map(|n| benchmark(n).expect("Table-1 benchmark")).collect();
        Scenario::default_linux().prepare_many(&specs).unwrap()
    }

    fn small_machine(cores: usize, tagged: bool) -> SmpMachine {
        let mut cfg = SmpConfig::new(cores, TlbConfig::colt_all())
            .with_quantum(500)
            .with_churn_period(Some(333));
        if tagged {
            cfg = cfg.tagged();
        }
        SmpMachine::new(mix(&["Gobmk", "Povray", "FastaProt", "Sjeng"]), cfg, 0x5EED)
    }

    #[test]
    fn lockstep_run_is_deterministic() {
        let run = || {
            let mut m = small_machine(2, true);
            m.run(4_000);
            m.result()
        };
        let (a, b) = (run(), run());
        for (x, y) in a.cores.iter().zip(&b.cores) {
            assert_eq!(x.tlb, y.tlb);
            assert_eq!(x.walker, y.walker);
            assert_eq!(x.counters, y.counters);
        }
        assert_eq!(a.llc, b.llc);
    }

    #[test]
    fn accounting_identities_hold_per_core() {
        let mut m = small_machine(2, false);
        m.run(1_000);
        m.mark();
        m.run(3_000);
        let r = m.result();
        for (i, core) in r.cores.iter().enumerate() {
            assert_eq!(core.counters.accesses, 3_000, "core {i}");
            assert_eq!(core.tlb.accesses, core.counters.accesses, "core {i}");
            assert_eq!(core.tlb.l1_hits + core.tlb.l1_misses, core.tlb.accesses);
            assert_eq!(core.tlb.l2_hits + core.tlb.l2_misses, core.tlb.l1_misses);
            assert_eq!(core.walker.walks, core.tlb.l2_misses, "core {i}");
        }
        let agg = r.aggregate();
        assert_eq!(agg.tlb.accesses, 6_000);
        assert!(agg.counters.instructions > agg.counters.accesses);
    }

    #[test]
    fn tagging_avoids_every_context_switch_flush() {
        let mut untagged = small_machine(2, false);
        let mut tagged = small_machine(2, true);
        untagged.run(4_000);
        tagged.run(4_000);
        let u = untagged.result().aggregate().counters;
        let t = tagged.result().aggregate().counters;
        assert!(u.context_switches > 0, "quantum 500 over 4000 steps must switch");
        assert_eq!(u.full_flushes, u.context_switches);
        assert_eq!(u.flushes_avoided, 0);
        assert_eq!(t.full_flushes, 0, "tagged cores never flush at switches");
        assert_eq!(t.flushes_avoided, t.context_switches);
        assert!(t.full_flushes < u.full_flushes);
    }

    #[test]
    fn churn_produces_remote_shootdown_ipis_when_tagged() {
        let mut m = small_machine(2, true);
        m.run(8_000);
        let agg = m.result().aggregate().counters;
        assert!(
            agg.ipis_sent > 0 && agg.ipis_received > 0,
            "compaction/split/reclaim churn must reach remote cores: {agg:?}"
        );
        assert_eq!(agg.ipis_sent, agg.ipis_received);
        assert!(agg.remote_invalidations > 0);
        assert!(agg.ipi_cycles > 0, "IPIs must cost cycles");
    }

    #[test]
    fn idle_cores_do_nothing_when_cores_exceed_workloads() {
        let cfg = SmpConfig::new(4, TlbConfig::baseline()).with_churn_period(None);
        let mut m = SmpMachine::new(mix(&["Gobmk", "Povray"]), cfg, 7);
        m.run(1_000);
        let r = m.result();
        assert_eq!(r.cores.len(), 4);
        assert_eq!(r.cores[0].counters.accesses, 1_000);
        assert_eq!(r.cores[1].counters.accesses, 1_000);
        assert_eq!(r.cores[2].counters.accesses, 0, "no affinity, no work");
        assert_eq!(r.cores[3].counters.accesses, 0);
        assert!(m.running_asid(2).is_none());
    }
}
