//! # colt-smp — SMP extension for the CoLT simulator
//!
//! The paper evaluates CoLT on one core; its §8 outlook (and every
//! system CoLT would actually ship in) is multi-core. This crate models
//! that machine: `N` cores, each owning a private L1/L2/superpage TLB
//! hierarchy and page-walk caches ([`colt_tlb::hierarchy::TlbHierarchy`]
//! + [`colt_memsim::walker::PageWalker`]) plus private L1/L2 data
//! caches, all sharing one last-level cache
//! ([`colt_memsim::hierarchy::SharedLlc`]).
//!
//! Two pieces the single-core model never needed appear here:
//!
//! * **ASID tagging** ([`colt_tlb::config::TlbConfig::asid_tagged`]) —
//!   tagged cores switch address spaces by retargeting the current ASID
//!   instead of flushing, so context switches keep warmed state. The
//!   untagged default reproduces the paper's flush-at-switch machine
//!   byte for byte.
//! * **Cross-core shootdowns** — kernel page-table mutations
//!   (compaction migrations, THP splits, puncture, reclaim) broadcast
//!   [`colt_os_mem::shootdown::ShootdownEvent`]s to every core whose
//!   TLB may hold the mutated address space. Remote deliveries are
//!   inter-processor interrupts and carry a cycle cost
//!   ([`IpiCostModel`]) folded into each core's accounting.
//!
//! The simulator is single-threaded and lockstep-deterministic: one
//! global step advances every core by exactly one memory reference, in
//! core order, so identical inputs produce identical counters at any
//! host parallelism.

pub mod machine;

pub use machine::SmpMachine;

use colt_memsim::cache::CacheStats;
use colt_memsim::walker::WalkerStats;
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::HierarchyStats;

/// Cycle costs of a TLB-shootdown IPI, modeled after the magnitudes
/// micro-benchmarks report on real x86 parts: sending is a cheap APIC
/// write, receiving interrupts the remote pipeline, and each
/// invalidation is an `invlpg`-class operation on the remote core.
#[derive(Clone, Copy, Debug)]
pub struct IpiCostModel {
    /// Cycles the initiating core spends sending one IPI.
    pub send: u64,
    /// Cycles the remote core spends taking the interrupt.
    pub receive: u64,
    /// Cycles per entry invalidated on the remote core.
    pub per_invalidation: u64,
}

impl Default for IpiCostModel {
    fn default() -> Self {
        Self { send: 450, receive: 1400, per_invalidation: 120 }
    }
}

/// Parameters of one SMP simulation.
#[derive(Clone, Copy, Debug)]
pub struct SmpConfig {
    /// Number of cores (clamped to at least 1).
    pub cores: usize,
    /// Per-core TLB configuration. `tlb.asid_tagged` selects tagged
    /// mode; the untagged default full-flushes at every context switch.
    pub tlb: TlbConfig,
    /// Global steps between per-core context switches (each step is one
    /// access per core).
    pub quantum: u64,
    /// Global steps between kernel-churn slices (compaction ticks,
    /// direct compaction, THP splits, reclaim — rotating). `None`
    /// freezes the kernel, as the paper's single-core replays do.
    pub churn_period: Option<u64>,
    /// Run walks under nested paging (virtualization).
    pub nested_paging: bool,
    /// IPI cost model for remote shootdown deliveries.
    pub ipi: IpiCostModel,
}

impl SmpConfig {
    /// A config for `cores` cores running `tlb`, with the multiprog
    /// experiment's 10k-access quantum and periodic kernel churn.
    pub fn new(cores: usize, tlb: TlbConfig) -> Self {
        Self {
            cores: cores.max(1),
            tlb,
            quantum: 10_000,
            churn_period: Some(2_000),
            nested_paging: false,
            ipi: IpiCostModel::default(),
        }
    }

    /// Enables ASID tagging on every core's TLB and walker.
    #[must_use]
    pub fn tagged(mut self) -> Self {
        self.tlb = self.tlb.with_asid_tagging();
        self
    }

    /// Overrides the scheduling quantum.
    ///
    /// # Panics
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Overrides the churn period (`None` disables kernel churn).
    #[must_use]
    pub fn with_churn_period(mut self, period: Option<u64>) -> Self {
        assert!(period != Some(0), "churn period must be positive");
        self.churn_period = period;
        self
    }

    /// Whether this configuration runs in ASID-tagged mode.
    pub fn is_tagged(&self) -> bool {
        self.tlb.asid_tagged
    }
}

/// Per-core counters the TLB and walker don't already track.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreCounters {
    /// Memory references this core executed.
    pub accesses: u64,
    /// Instructions those references represent.
    pub instructions: u64,
    /// Cycles in page walks (serialized, critical path).
    pub walk_cycles: u64,
    /// Data-access stall cycles beyond an L1 hit.
    pub data_stall_cycles: u64,
    /// Cycles on L2-TLB lookups after L1 misses.
    pub l2_tlb_cycles: u64,
    /// Cycles sending and servicing shootdown IPIs.
    pub ipi_cycles: u64,
    /// Shootdown IPIs this core initiated.
    pub ipis_sent: u64,
    /// Shootdown IPIs this core serviced.
    pub ipis_received: u64,
    /// Entries (TLB VPNs + walk-cache entries) invalidated on this core
    /// by remote shootdowns.
    pub remote_invalidations: u64,
    /// Context switches that full-flushed translation state (untagged).
    pub full_flushes: u64,
    /// Context switches that kept state thanks to ASID tagging.
    pub flushes_avoided: u64,
    /// Context switches taken, either way.
    pub context_switches: u64,
}

impl CoreCounters {
    fn since(&self, before: &Self) -> Self {
        Self {
            accesses: self.accesses - before.accesses,
            instructions: self.instructions - before.instructions,
            walk_cycles: self.walk_cycles - before.walk_cycles,
            data_stall_cycles: self.data_stall_cycles - before.data_stall_cycles,
            l2_tlb_cycles: self.l2_tlb_cycles - before.l2_tlb_cycles,
            ipi_cycles: self.ipi_cycles - before.ipi_cycles,
            ipis_sent: self.ipis_sent - before.ipis_sent,
            ipis_received: self.ipis_received - before.ipis_received,
            remote_invalidations: self.remote_invalidations - before.remote_invalidations,
            full_flushes: self.full_flushes - before.full_flushes,
            flushes_avoided: self.flushes_avoided - before.flushes_avoided,
            context_switches: self.context_switches - before.context_switches,
        }
    }

    fn merged(&self, other: &Self) -> Self {
        Self {
            accesses: self.accesses + other.accesses,
            instructions: self.instructions + other.instructions,
            walk_cycles: self.walk_cycles + other.walk_cycles,
            data_stall_cycles: self.data_stall_cycles + other.data_stall_cycles,
            l2_tlb_cycles: self.l2_tlb_cycles + other.l2_tlb_cycles,
            ipi_cycles: self.ipi_cycles + other.ipi_cycles,
            ipis_sent: self.ipis_sent + other.ipis_sent,
            ipis_received: self.ipis_received + other.ipis_received,
            remote_invalidations: self.remote_invalidations + other.remote_invalidations,
            full_flushes: self.full_flushes + other.full_flushes,
            flushes_avoided: self.flushes_avoided + other.flushes_avoided,
            context_switches: self.context_switches + other.context_switches,
        }
    }
}

/// One core's measured window.
#[derive(Clone, Copy, Debug)]
pub struct CoreResult {
    /// TLB hierarchy counters.
    pub tlb: HierarchyStats,
    /// Page-walker counters.
    pub walker: WalkerStats,
    /// SMP-specific counters (IPIs, flush policy, cycles).
    pub counters: CoreCounters,
}

impl CoreResult {
    /// L1 TLB misses per million instructions on this core.
    pub fn l1_mpmi(&self) -> f64 {
        self.tlb.mpmi(self.tlb.l1_misses, self.counters.instructions)
    }

    /// Page walks per million instructions on this core.
    pub fn l2_mpmi(&self) -> f64 {
        self.tlb.mpmi(self.tlb.l2_misses, self.counters.instructions)
    }
}

/// Everything one SMP run measured.
#[derive(Clone, Debug)]
pub struct SmpResult {
    /// Per-core windows, in core order.
    pub cores: Vec<CoreResult>,
    /// Shared-LLC counters over the whole run (not warmup-windowed:
    /// the LLC is shared state, reported as the machine saw it).
    pub llc: CacheStats,
}

impl SmpResult {
    /// Machine-wide aggregate: every per-core counter summed.
    pub fn aggregate(&self) -> CoreResult {
        let mut tlb = HierarchyStats::default();
        let mut walker = WalkerStats::default();
        let mut counters = CoreCounters::default();
        for c in &self.cores {
            tlb = tlb.merged(&c.tlb);
            walker = walker.merged(&c.walker);
            counters = counters.merged(&c.counters);
        }
        CoreResult { tlb, walker, counters }
    }
}
