//! # colt-prng — std-only deterministic pseudo-randomness
//!
//! The reproduction must build **offline** (no crates.io access), so this
//! crate replaces the `rand` dependency with a small, self-contained
//! xoshiro256++ generator behind a `rand`-shaped mini-API: `SeedableRng`
//! + `Rng` traits, `gen_range` over integer and float ranges, `gen_bool`,
//! and `rngs::{SmallRng, StdRng}` aliases so call sites read the same.
//!
//! The streams are *not* bit-compatible with the `rand` crate — they only
//! need to be deterministic, well-mixed, and identical across platforms,
//! which xoshiro256++ seeded through SplitMix64 provides.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (the subset of `rand::SeedableRng` the repo uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (the subset of `rand::Rng` the repo uses).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Sample
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// A uniform sample from `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        f64_from_bits(self.next_u64())
    }
}

#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Sample;
    /// Draws one uniform sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Sample;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Sample = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Sample = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Sample = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

/// xoshiro256++ (Blackman & Vigna): 256-bit state, period 2^256 − 1,
/// excellent equidistribution, four ops per draw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// The raw 256-bit state, for snapshot serialization.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`state`](Self::state) snapshot. The
    /// resulting stream continues exactly where the captured one left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the seeding scheme xoshiro's authors
        // recommend: never yields the all-zero state.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs` so imports stay familiar.
pub mod rngs {
    /// The fast in-simulation generator (pattern streams).
    pub type SmallRng = super::Xoshiro256PlusPlus;
    /// The system-model generator (aging, memhog, interference). Same
    /// engine as [`SmallRng`]; the alias keeps call-site intent visible.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Xoshiro256PlusPlus::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams from different seeds must diverge");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(0);
        let distinct: std::collections::HashSet<u64> = (0..100).map(|_| r.next_u64()).collect();
        assert!(distinct.len() > 95, "zero seed must still mix well");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling must cover 0..8: {seen:?}");
    }

    #[test]
    fn single_value_inclusive_range_works() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(3);
        assert_eq!(r.gen_range(9u64..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(3);
        let _ = r.gen_range(5u64..5);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(13);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 rate off: {hits}/10000");
    }

    #[test]
    fn gen_f64_is_unit_interval_and_mixes() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(17);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }
}
