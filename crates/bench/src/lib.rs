//! # colt-bench — benchmark harness for the CoLT reproduction
//!
//! This crate contains self-timed benches (see `benches/`), built on the
//! std-only [`harness`] module because the environment builds offline
//! and cannot fetch criterion:
//!
//! * `micro` — microbenchmarks of the hot structures: TLB lookup and
//!   fill, coalescing logic, buddy allocation, compaction, page walks.
//! * `experiments` — scaled-down versions of each paper experiment
//!   (Table 1, Figures 7–21), so `cargo bench` exercises exactly the
//!   code paths the `repro` binary uses to regenerate the paper's
//!   numbers.
//!
//! The full-size experiments are driven by the `repro` binary in
//! `colt-core` (`cargo run --release -p colt-core --bin repro -- all`).

pub mod harness;

/// Shared helper: a small deterministic workload for benches that need a
/// prepared address space without paying full scenario cost.
pub fn quick_workload() -> colt_workloads::scenario::PreparedWorkload {
    let spec = colt_workloads::spec::benchmark("Gobmk").expect("Table-1 benchmark");
    colt_workloads::scenario::Scenario::default_linux()
        .prepare(&spec)
        .expect("scenario sized for the benchmark")
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_workload_prepares() {
        let w = super::quick_workload();
        assert!(!w.footprint.is_empty());
    }
}
