//! Std-only self-timed benchmark harness (criterion replacement).
//!
//! Each bench auto-calibrates its iteration count to a ~100 ms batch,
//! takes several timed samples, and reports the median ns/iter with the
//! min..max spread. No statistics beyond that — the goal is a stable
//! order-of-magnitude signal that builds offline, not criterion's
//! rigor. Pass a substring argument to run a subset:
//! `cargo bench --bench micro -- buddy`.

use std::hint::black_box;
use std::time::{Duration, Instant};

const TARGET_SAMPLE: Duration = Duration::from_millis(100);
const SAMPLES: usize = 5;

/// Collects results for one bench binary and prints the final table.
pub struct Harness {
    title: &'static str,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

struct BenchResult {
    name: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters_per_sample: u64,
}

/// Times one registered bench; handed to the closure by `bench_function`.
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` in calibrated batches (criterion's `iter`).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: double the batch until it costs ~TARGET_SAMPLE.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                self.record_first(iters, elapsed);
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                // Aim directly at the target with 20% headroom.
                (iters as f64 * (TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64()) * 1.2)
                    .ceil()
                    .max(iters as f64 + 1.0) as u64
            };
        }
        for _ in 1..SAMPLES {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.record(start.elapsed());
        }
    }

    /// Times `routine` against fresh state from `setup`, excluding setup
    /// cost (criterion's `iter_batched_ref`). Each call is timed
    /// individually, so this suits routines that cost ≳1 µs.
    pub fn iter_batched_ref<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> R,
    ) {
        let mut timed = |iters: u64| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let mut state = setup();
                let start = Instant::now();
                black_box(routine(&mut state));
                total += start.elapsed();
            }
            total
        };
        let mut iters = 1u64;
        loop {
            let elapsed = timed(iters);
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                self.record_first(iters, elapsed);
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                (iters as f64 * (TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64()) * 1.2)
                    .ceil()
                    .max(iters as f64 + 1.0) as u64
            };
        }
        for _ in 1..SAMPLES {
            let elapsed = timed(self.iters_per_sample);
            self.record(elapsed);
        }
    }

    fn record_first(&mut self, iters: u64, elapsed: Duration) {
        self.iters_per_sample = iters;
        self.record(elapsed);
    }

    fn record(&mut self, elapsed: Duration) {
        self.samples_ns.push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
    }
}

impl Harness {
    /// Parses bench CLI args: any non-flag argument is a name filter;
    /// flags cargo passes (`--bench`) are ignored.
    pub fn from_args(title: &'static str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { title, filter, results: Vec::new() }
    }

    /// Registers and immediately runs one bench.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        eprintln!("benchmarking {name} ...");
        let mut b = Bencher { samples_ns: Vec::new(), iters_per_sample: 0 };
        f(&mut b);
        assert!(!b.samples_ns.is_empty(), "bench {name} never called iter()");
        let mut sorted = b.samples_ns.clone();
        sorted.sort_by(|a, c| a.total_cmp(c));
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: *sorted.last().unwrap(),
            iters_per_sample: b.iters_per_sample,
        });
    }

    /// Starts a named group; bench names get a `group/` prefix.
    pub fn benchmark_group(&mut self, group: &str) -> Group<'_> {
        Group { harness: self, prefix: group.to_string() }
    }

    /// Prints the results table. Call once at the end of `main`.
    pub fn finish(self) {
        println!("\n== {} ==", self.title);
        let width = self.results.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
        println!("{:<width$}  {:>12}  {:>26}  {:>10}", "name", "median", "range", "iters");
        for r in &self.results {
            println!(
                "{:<width$}  {:>12}  {:>12} .. {:>10}  {:>10}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.iters_per_sample,
            );
        }
    }
}

/// A named prefix over a [`Harness`] (criterion's `BenchmarkGroup`).
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name);
        self.harness.bench_function(&full, f);
    }

    /// Accepted for criterion compatibility; sampling is fixed here.
    pub fn sample_size(&mut self, _n: usize) {}

    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_produces_samples() {
        let mut h = Harness { title: "test", filter: None, results: Vec::new() };
        h.bench_function("spin", |b| b.iter(|| std::hint::black_box(3u64).wrapping_mul(7)));
        assert_eq!(h.results.len(), 1);
        let r = &h.results[0];
        assert!(r.median_ns > 0.0 && r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness {
            title: "test",
            filter: Some("wanted".to_string()),
            results: Vec::new(),
        };
        h.bench_function("other", |_| panic!("must not run"));
        h.bench_function("wanted_bench", |b| b.iter(|| 1u64 + 1));
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].name, "wanted_bench");
    }

    #[test]
    fn iter_batched_ref_excludes_setup() {
        let mut h = Harness { title: "test", filter: None, results: Vec::new() };
        h.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1u64; 8], |v| v.iter().sum::<u64>())
        });
        assert_eq!(h.results.len(), 1);
    }
}
