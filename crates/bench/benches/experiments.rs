//! One self-timed bench per paper experiment (DESIGN.md §3).
//!
//! Each bench runs a scaled-down version of the corresponding experiment
//! driver so `cargo bench` exercises exactly the code paths the `repro`
//! binary uses to regenerate the paper's tables and figures, and reports
//! how long each experiment costs per benchmark simulated.
//!
//! The benched subset uses two representative benchmarks (one TLB
//! stressor, one light) and a reduced access budget; the full 14-benchmark
//! runs are produced by `cargo run --release -p colt-core --bin repro`.

use colt_bench::harness::Harness;
use colt_core::experiments::{
    ablation, associativity, contiguity, index_shift, memhog_load, miss_elimination,
    performance, related_work, table1, virtualization, ExperimentOptions,
};
use std::hint::black_box;

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        accesses: 20_000,
        ..ExperimentOptions::default()
    }
    .with_benchmarks(&["CactusADM", "Gobmk"])
}

fn bench_table1(c: &mut Harness) {
    c.bench_function("experiment_table1", |b| {
        b.iter(|| black_box(table1::run(&opts())))
    });
}

fn bench_contiguity_figures(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_contiguity");
    for (label, config) in [
        ("fig7_9_ths_on", contiguity::ContiguityConfig::ThsOn),
        ("fig10_12_ths_off", contiguity::ContiguityConfig::ThsOff),
        ("fig13_15_low_compaction", contiguity::ContiguityConfig::LowCompaction),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(contiguity::run(config, &opts())))
        });
    }
    group.finish();
}

fn bench_memhog_figures(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_memhog");
    group.bench_function("fig16_17", |b| {
        b.iter(|| black_box(memhog_load::run_figure(true, &opts())))
    });
    group.finish();
}

fn bench_miss_elimination(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_fig18");
    group.bench_function("miss_elimination", |b| {
        b.iter(|| black_box(miss_elimination::run(&opts())))
    });
    group.finish();
}

fn bench_index_shift(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_fig19");
    group.bench_function("index_shift_sweep", |b| {
        b.iter(|| black_box(index_shift::run(&opts())))
    });
    group.finish();
}

fn bench_associativity(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_fig20");
    group.bench_function("associativity_study", |b| {
        b.iter(|| black_box(associativity::run(&opts())))
    });
    group.finish();
}

fn bench_performance(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_fig21");
    group.bench_function("performance_model", |b| {
        b.iter(|| black_box(performance::run(&opts())))
    });
    group.finish();
}

fn bench_ablation(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_ablation");
    group.bench_function("l2_fill_policy", |b| {
        b.iter(|| black_box(ablation::l2_fill_policy(&opts())))
    });
    group.finish();
}

fn bench_virtualization(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_virt");
    group.bench_function("nested_paging", |b| {
        b.iter(|| black_box(virtualization::run(&opts())))
    });
    group.finish();
}

fn bench_related_work(c: &mut Harness) {
    let mut group = c.benchmark_group("experiment_related");
    group.bench_function("prefetch_comparison", |b| {
        b.iter(|| black_box(related_work::run(&opts())))
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::from_args("experiments");
    bench_table1(&mut harness);
    bench_contiguity_figures(&mut harness);
    bench_memhog_figures(&mut harness);
    bench_miss_elimination(&mut harness);
    bench_index_shift(&mut harness);
    bench_associativity(&mut harness);
    bench_performance(&mut harness);
    bench_ablation(&mut harness);
    bench_virtualization(&mut harness);
    bench_related_work(&mut harness);
    harness.finish();
}
