//! Microbenchmarks of the simulator's hot structures.
//!
//! These quantify the cost of the operations every experiment performs
//! millions of times: TLB lookups (set-associative and range-check),
//! the coalescing logic, buddy allocation/free, compaction passes, and
//! full page walks. Self-timed via `colt_bench::harness` (the offline
//! build cannot fetch criterion).

use colt_bench::harness::Harness;
use colt_memsim::hierarchy::CacheHierarchy;
use colt_memsim::walker::PageWalker;
use colt_os_mem::addr::{Pfn, Vpn};
use colt_os_mem::buddy::BuddyAllocator;
use colt_os_mem::contiguity::ContiguityReport;
use colt_os_mem::kernel::{Kernel, KernelConfig};
use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
use colt_tlb::coalesce::coalesce_line;
use colt_tlb::config::TlbConfig;
use colt_tlb::entry::CoalescedRun;
use colt_tlb::fully_assoc::FullyAssocTlb;
use colt_tlb::hierarchy::{TlbHierarchy, WalkFill};
use colt_tlb::set_assoc::SetAssocTlb;
use std::hint::black_box;

fn contiguous_page_table(pages: u64) -> PageTable {
    let mut pt = PageTable::new();
    for i in 0..pages {
        pt.map_base(Vpn::new(0x1000 + i), Pte::new(Pfn::new(0x8000 + i), PteFlags::user_data()));
    }
    pt
}

fn bench_tlb_lookup(c: &mut Harness) {
    let mut group = c.benchmark_group("tlb_lookup");

    let mut sa = SetAssocTlb::new(128, 4, 2);
    for g in 0..32u64 {
        sa.insert(CoalescedRun::new(
            Vpn::new(g * 4),
            Pfn::new(1000 + g * 4),
            4,
            PteFlags::user_data(),
        ));
    }
    let mut i = 0u64;
    group.bench_function("set_assoc_hit", |b| {
        b.iter(|| {
            i = (i + 7) % 128;
            black_box(sa.lookup(Vpn::new(i)))
        })
    });
    group.bench_function("set_assoc_miss", |b| {
        b.iter(|| {
            i = (i + 7) % 128;
            black_box(sa.probe(Vpn::new(100_000 + i)))
        })
    });

    let mut fa = FullyAssocTlb::new(8);
    for e in 0..8u64 {
        fa.insert_coalesced_with_merge(CoalescedRun::new(
            Vpn::new(10_000 + e * 200),
            Pfn::new(30_000 + e * 200),
            64,
            PteFlags::user_data(),
        ));
    }
    group.bench_function("fully_assoc_range_hit", |b| {
        b.iter(|| {
            i = (i + 13) % (8 * 64);
            let vpn = Vpn::new(10_000 + (i / 64) * 200 + (i % 64));
            black_box(fa.lookup(vpn))
        })
    });
    group.finish();
}

fn bench_coalescing_logic(c: &mut Harness) {
    let pt = contiguous_page_table(64);
    let line = pt.pte_line(Vpn::new(0x1008));
    c.bench_function("coalesce_line_full_run", |b| {
        b.iter(|| black_box(coalesce_line(&line, Vpn::new(0x100B))))
    });
}

fn bench_hierarchy_fill(c: &mut Harness) {
    let pt = contiguous_page_table(4096);
    let mut group = c.benchmark_group("hierarchy_miss_and_fill");
    for config in [
        TlbConfig::baseline(),
        TlbConfig::colt_sa(),
        TlbConfig::colt_fa(),
        TlbConfig::colt_all(),
    ] {
        let mut tlb = TlbHierarchy::new(config);
        let mut v = 0u64;
        group.bench_function(config.mode.label(), |b| {
            b.iter(|| {
                v = (v + 97) % 4096;
                let vpn = Vpn::new(0x1000 + v);
                if tlb.lookup(vpn).is_none() {
                    tlb.fill(vpn, &WalkFill::Base { line: pt.pte_line(vpn) });
                }
            })
        });
    }
    group.finish();
}

fn bench_buddy(c: &mut Harness) {
    let mut group = c.benchmark_group("buddy");
    group.bench_function("alloc_free_cycle_8_pages", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(1 << 16),
            |buddy| {
                let r = buddy.alloc_pages(8).expect("fresh memory");
                buddy.free_pages(r);
            },
        )
    });
    group.bench_function("alloc_until_full_then_free", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(4096),
            |buddy| {
                let mut runs = Vec::new();
                while let Some(r) = buddy.alloc_pages(16) {
                    runs.push(r);
                }
                for r in runs {
                    buddy.free_pages(r);
                }
            },
        )
    });
    group.finish();
}

fn bench_compaction(c: &mut Harness) {
    c.bench_function("compaction_pass_scattered", |b| {
        b.iter_batched_ref(
            || {
                let mut k = Kernel::new(KernelConfig {
                    nr_frames: 1 << 14,
                    ths_enabled: false,
                    ..KernelConfig::default()
                });
                let asid = k.spawn();
                let mut allocs = Vec::new();
                for _ in 0..128 {
                    allocs.push(k.malloc(asid, 32).expect("fits"));
                }
                for (i, a) in allocs.into_iter().enumerate() {
                    if i % 2 == 0 {
                        k.free(asid, a).expect("allocated");
                    }
                }
                k
            },
            |k| {
                black_box(k.compact_now());
            },
        )
    });
}

fn bench_page_walk(c: &mut Harness) {
    let pt = contiguous_page_table(4096);
    let mut walker = PageWalker::paper_default();
    let mut caches = CacheHierarchy::core_i7();
    let mut v = 0u64;
    c.bench_function("page_walk", |b| {
        b.iter(|| {
            v = (v + 97) % 4096;
            black_box(walker.walk(&pt, Vpn::new(0x1000 + v), &mut caches))
        })
    });
}

fn bench_prefetch_buffer(c: &mut Harness) {
    use colt_tlb::prefetch::{PrefetchBuffer, PrefetchConfig};
    let mut pb = PrefetchBuffer::new(PrefetchConfig::default());
    for i in 0..16u64 {
        pb.fill(Vpn::new(i), Pfn::new(i + 100), PteFlags::user_data());
    }
    let mut i = 0u64;
    c.bench_function("prefetch_buffer_lookup_fill", |b| {
        b.iter(|| {
            i += 1;
            black_box(pb.lookup(Vpn::new(i % 32)));
            pb.fill(Vpn::new(i % 32), Pfn::new(i), PteFlags::user_data());
        })
    });
}

fn bench_nested_walk(c: &mut Harness) {
    let pt = contiguous_page_table(4096);
    let mut group = c.benchmark_group("walk_modes");
    for nested in [false, true] {
        let mut walker = if nested {
            PageWalker::paper_default().nested()
        } else {
            PageWalker::paper_default()
        };
        let mut caches = CacheHierarchy::core_i7();
        let mut v = 0u64;
        group.bench_function(if nested { "nested" } else { "native" }, |b| {
            b.iter(|| {
                v = (v + 97) % 4096;
                black_box(walker.walk(&pt, Vpn::new(0x1000 + v), &mut caches))
            })
        });
    }
    group.finish();
}

fn bench_contiguity_scan(c: &mut Harness) {
    let pt = contiguous_page_table(16_384);
    c.bench_function("contiguity_scan_16k_pages", |b| {
        b.iter(|| black_box(ContiguityReport::scan(&pt)))
    });
}

fn main() {
    let mut harness = Harness::from_args("micro");
    bench_tlb_lookup(&mut harness);
    bench_coalescing_logic(&mut harness);
    bench_hierarchy_fill(&mut harness);
    bench_buddy(&mut harness);
    bench_compaction(&mut harness);
    bench_page_walk(&mut harness);
    bench_prefetch_buffer(&mut harness);
    bench_nested_walk(&mut harness);
    bench_contiguity_scan(&mut harness);
    harness.finish();
}
