//! Property-based tests of the OS memory substrate's core invariants.

use colt_os_mem::addr::{Pfn, Vpn};
use colt_os_mem::buddy::{BuddyAllocator, MAX_ORDER};
use colt_os_mem::contiguity::ContiguityReport;
use colt_os_mem::kernel::{CompactionMode, Kernel, KernelConfig, PopulateMode};
use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
use colt_quickprop::prelude::*;
use std::collections::HashMap;

/// An allocation/free script for the buddy allocator.
#[derive(Clone, Debug)]
enum BuddyOp {
    Alloc(u64),
    FreeOldest,
}

fn buddy_ops() -> impl Strategy<Value = Vec<BuddyOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..=1 << MAX_ORDER).prop_map(BuddyOp::Alloc),
            Just(BuddyOp::FreeOldest),
        ],
        1..80,
    )
}

proptest! {
    /// Any alloc/free interleaving preserves the buddy invariants, never
    /// double-allocates a frame, and conserves total memory.
    #[test]
    fn buddy_conservation_and_disjointness(ops in buddy_ops()) {
        let nr_frames = 4096u64;
        let mut buddy = BuddyAllocator::new(nr_frames);
        let mut live: Vec<colt_os_mem::buddy::PfnRange> = Vec::new();
        for op in ops {
            match op {
                BuddyOp::Alloc(n) => {
                    if let Some(r) = buddy.alloc_pages(n) {
                        prop_assert_eq!(r.pages, n);
                        // Disjoint from all live ranges.
                        for other in &live {
                            prop_assert!(
                                r.end() <= other.start || other.end() <= r.start,
                                "overlapping allocations {:?} vs {:?}", r, other
                            );
                        }
                        live.push(r);
                    }
                }
                BuddyOp::FreeOldest => {
                    if !live.is_empty() {
                        buddy.free_pages(live.remove(0));
                    }
                }
            }
            let allocated: u64 = live.iter().map(|r| r.pages).sum();
            prop_assert_eq!(buddy.free_frames() + allocated, nr_frames);
            buddy.check_invariants();
        }
        for r in live {
            buddy.free_pages(r);
        }
        prop_assert_eq!(buddy.free_frames(), nr_frames);
        buddy.check_invariants();
    }

    /// Order-`k` block allocations are always naturally aligned.
    #[test]
    fn buddy_blocks_are_aligned(orders in prop::collection::vec(0u32..=MAX_ORDER, 1..30)) {
        let mut buddy = BuddyAllocator::new(1 << 13);
        for order in orders {
            if let Some(p) = buddy.alloc_block(order) {
                prop_assert!(p.is_aligned(order), "order-{} block at {} misaligned", order, p);
            }
        }
        buddy.check_invariants();
    }

    /// The page table behaves like a map: map/unmap of random vpns matches
    /// a HashMap model, and iter_base returns exactly the model, sorted.
    #[test]
    fn page_table_matches_map_model(
        ops in prop::collection::vec((0u64..1 << 20, 0u64..1 << 18, prop::bool::ANY), 1..200)
    ) {
        let mut pt = PageTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (vpn, pfn, insert) in ops {
            if insert {
                if let std::collections::hash_map::Entry::Vacant(slot) = model.entry(vpn) {
                    pt.map_base(Vpn::new(vpn), Pte::new(Pfn::new(pfn), PteFlags::user_data()));
                    slot.insert(pfn);
                }
            } else if model.remove(&vpn).is_some() {
                prop_assert!(pt.unmap_base(Vpn::new(vpn)).is_some());
            }
        }
        prop_assert_eq!(pt.stats().base_pages, model.len() as u64);
        for (&vpn, &pfn) in &model {
            let t = pt.translate(Vpn::new(vpn)).expect("model says mapped");
            prop_assert_eq!(t.pfn.raw(), pfn);
        }
        let mut listed: Vec<(u64, u64)> =
            pt.iter_base().map(|(v, p)| (v.raw(), p.pfn.raw())).collect();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert!(listed.windows(2).all(|w| w[0].0 < w[1].0), "iter_base must be sorted");
        listed.sort_unstable();
        prop_assert_eq!(listed, expected);
    }

    /// Contiguity scan run lengths always sum to the page count, and the
    /// CDF is monotone, ending at 1.
    #[test]
    fn contiguity_cdf_is_monotone(lens in prop::collection::vec(1u64..300, 1..50)) {
        let rep = ContiguityReport::from_run_lengths(&lens);
        let total: u64 = rep.runs().iter().map(|r| r.len).sum();
        prop_assert_eq!(total, rep.total_pages());
        let points = [1u64, 2, 4, 8, 16, 64, 256, 1024];
        let cdf = rep.cdf(&points);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "cdf must be monotone");
        }
        prop_assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }

    /// Compaction never changes the *content* mapping of any process: every
    /// vpn that translated before still translates, and the frame database
    /// agrees with the page table afterwards.
    #[test]
    fn compaction_preserves_translations(
        sizes in prop::collection::vec(1u64..64, 1..20),
        free_mask in prop::collection::vec(prop::bool::ANY, 20),
    ) {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: false,
            compaction: CompactionMode::Low,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let mut allocs = Vec::new();
        for &s in &sizes {
            allocs.push((k.malloc(asid, s).unwrap(), s));
        }
        for (i, (base, _)) in allocs.iter().enumerate() {
            if free_mask[i % free_mask.len()] {
                k.free(asid, *base).unwrap();
            }
        }
        let kept: Vec<(Vpn, u64)> = allocs
            .iter()
            .enumerate()
            .filter(|(i, _)| !free_mask[i % free_mask.len()])
            .map(|(_, &(b, s))| (b, s))
            .collect();
        // Record logical identity: vpn exists. (Frames may move.)
        k.compact_now();
        let proc = k.process(asid).unwrap();
        for (base, size) in kept {
            for i in 0..size {
                let vpn = base.offset(i);
                let t = proc.translate(vpn).expect("mapping lost by compaction");
                // Frame database must agree via reverse map.
                prop_assert_eq!(k.frames().rmap(t.pfn), Some((asid, vpn)));
            }
        }
        k.buddy().check_invariants();
    }

    /// Eager and demand population both back every page of an allocation
    /// once touched, and no two vpns ever share a frame.
    #[test]
    fn no_two_pages_share_a_frame(sizes in prop::collection::vec(1u64..128, 1..12)) {
        for mode in [PopulateMode::Eager, PopulateMode::Demand] {
            let mut k = Kernel::new(KernelConfig {
                nr_frames: 4096,
                ths_enabled: false,
                populate: mode,
                ..KernelConfig::default()
            });
            let asid = k.spawn();
            let mut seen = HashMap::new();
            for &s in &sizes {
                let base = k.malloc(asid, s).unwrap();
                for i in 0..s {
                    let t = k.touch(asid, base.offset(i)).unwrap();
                    if let Some(prev) = seen.insert(t.pfn.raw(), base.offset(i)) {
                        prop_assert!(false, "frame {} mapped twice ({} and {})",
                            t.pfn, prev, base.offset(i));
                    }
                }
            }
        }
    }
}
