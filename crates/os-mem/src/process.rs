//! The simulated process: an address space plus its page table.

use crate::addr::{Asid, Vpn};
use crate::page_table::{PageTable, Translation};
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot};
use crate::vma::AddressSpace;

/// One simulated process.
///
/// Construction and memory operations go through
/// [`Kernel`](crate::kernel::Kernel); the process object itself only
/// exposes read access to its translation state.
#[derive(Clone, Debug)]
pub struct Process {
    asid: Asid,
    pub(crate) address_space: AddressSpace,
    pub(crate) page_table: PageTable,
}

impl Process {
    pub(crate) fn new(asid: Asid, va_limit_pages: u64) -> Self {
        Self {
            asid,
            address_space: AddressSpace::new(va_limit_pages),
            page_table: PageTable::new(),
        }
    }

    /// The process's address-space identifier.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The process's virtual address-space layout.
    pub fn address_space(&self) -> &AddressSpace {
        &self.address_space
    }

    /// The process's page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Translates a virtual page (convenience passthrough).
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        self.page_table.translate(vpn)
    }
}

impl Snapshot for Process {
    fn encode(&self, enc: &mut Enc) {
        self.asid.encode(enc);
        self.address_space.encode(enc);
        self.page_table.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            asid: Asid::decode(dec)?,
            address_space: AddressSpace::decode(dec)?,
            page_table: PageTable::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_process_has_empty_tables() {
        let p = Process::new(Asid(3), 1 << 20);
        assert_eq!(p.asid(), Asid(3));
        assert!(p.address_space().is_empty());
        assert_eq!(p.page_table().stats().base_pages, 0);
        assert!(p.translate(Vpn::new(0x2000)).is_none());
    }
}
