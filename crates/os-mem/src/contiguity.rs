//! Page-allocation contiguity measurement (paper §3.1 and §6).
//!
//! The paper's definition: *system contiguity* exists when consecutive
//! virtual pages are allocated consecutive physical page frames — with no
//! restriction on amount or alignment (unlike superpages). The
//! characterization additionally requires contiguous translations to
//! share the same page attributes (§5.1.1), because CoLT hardware keeps
//! one attribute set per coalesced entry.
//!
//! The scanner walks a page table in VPN order over *base* (non-superpage)
//! pages, exactly like the kernel instrumentation in the paper's
//! real-system study, and reports run lengths, page-weighted CDFs (the
//! Figures 7–15 curves), and average contiguity (the figure legends).

use crate::addr::{Pfn, Vpn};
use crate::page_table::{PageTable, PteFlags};

/// One maximal run of contiguous translations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Run {
    /// First virtual page of the run.
    pub start_vpn: Vpn,
    /// First physical frame of the run.
    pub start_pfn: Pfn,
    /// Number of pages in the run (`1` = no contiguity).
    pub len: u64,
    /// Shared attribute bits of the run.
    pub flags: PteFlags,
}

/// The result of scanning one page table.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ContiguityReport {
    runs: Vec<Run>,
    total_pages: u64,
}

impl ContiguityReport {
    /// Scans `page_table`, splitting its base-page mappings into maximal
    /// contiguity runs. Runs break when VPN or PFN stops incrementing by
    /// one, or when attributes diverge.
    pub fn scan(page_table: &PageTable) -> Self {
        let mut runs: Vec<Run> = Vec::new();
        let mut total_pages = 0u64;
        let mut current: Option<Run> = None;
        for (vpn, pte) in page_table.iter_base() {
            total_pages += 1;
            if let Some(run) = current.as_mut() {
                let expected_vpn = run.start_vpn.offset(run.len);
                let expected_pfn = run.start_pfn.offset(run.len);
                if vpn == expected_vpn && pte.pfn == expected_pfn && pte.flags == run.flags {
                    run.len += 1;
                    continue;
                }
                runs.push(*run);
            }
            current = Some(Run { start_vpn: vpn, start_pfn: pte.pfn, len: 1, flags: pte.flags });
        }
        if let Some(run) = current {
            runs.push(run);
        }
        Self { runs, total_pages }
    }

    /// Builds a report directly from run lengths (useful in tests and
    /// synthetic studies).
    pub fn from_run_lengths(lengths: &[u64]) -> Self {
        let mut runs = Vec::with_capacity(lengths.len());
        let mut vpn = 0u64;
        for &len in lengths {
            assert!(len > 0, "runs cannot be empty");
            runs.push(Run {
                start_vpn: Vpn::new(vpn),
                start_pfn: Pfn::new(vpn),
                len,
                flags: PteFlags::empty(),
            });
            vpn += len + 1; // gap so runs stay distinct
        }
        Self { total_pages: lengths.iter().sum(), runs }
    }

    /// The maximal runs found, in VPN order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Total base pages scanned.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Average contiguity as reported in the paper's figure legends:
    /// the mean run length (total pages / number of runs). An unmapped or
    /// empty table reports 0.
    pub fn average_contiguity(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.total_pages as f64 / self.runs.len() as f64
    }

    /// Fraction of pages living in runs of length at most `x` — one point
    /// of the Figures 7–15 CDFs (page-weighted, as the figures plot "the
    /// distribution of contiguities experienced by pages").
    pub fn cdf_at(&self, x: u64) -> f64 {
        if self.total_pages == 0 {
            return 0.0;
        }
        let pages_le: u64 = self
            .runs
            .iter()
            .filter(|r| r.len <= x)
            .map(|r| r.len)
            .sum();
        pages_le as f64 / self.total_pages as f64
    }

    /// Evaluates the CDF at each of `points` (typically the paper's
    /// log-scale ticks 1, 4, 16, 64, 256, 1024).
    pub fn cdf(&self, points: &[u64]) -> Vec<f64> {
        points.iter().map(|&x| self.cdf_at(x)).collect()
    }

    /// Fraction of pages in runs of length at least `x` (the paper's
    /// "15% of non-superpage pages actually have over 512-page
    /// contiguity" style of statistic).
    pub fn fraction_with_contiguity_at_least(&self, x: u64) -> f64 {
        if self.total_pages == 0 {
            return 0.0;
        }
        let pages_ge: u64 = self
            .runs
            .iter()
            .filter(|r| r.len >= x)
            .map(|r| r.len)
            .sum();
        pages_ge as f64 / self.total_pages as f64
    }

    /// Histogram of run lengths bucketed by powers of two:
    /// `buckets[i]` counts pages in runs with `2^i <= len < 2^(i+1)`.
    pub fn log2_histogram(&self) -> Vec<u64> {
        let mut buckets = vec![0u64; 11];
        for r in &self.runs {
            let b = (63 - r.len.leading_zeros()).min(10) as usize;
            buckets[b] += r.len;
        }
        buckets
    }

    /// The longest run length observed.
    pub fn max_contiguity(&self) -> u64 {
        self.runs.iter().map(|r| r.len).max().unwrap_or(0)
    }
}

/// The log-scale x-axis ticks used by the paper's CDF figures.
pub const PAPER_CDF_POINTS: [u64; 6] = [1, 4, 16, 64, 256, 1024];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::Pte;

    fn pt_with(mappings: &[(u64, u64)]) -> PageTable {
        let mut pt = PageTable::new();
        for &(v, p) in mappings {
            pt.map_base(Vpn::new(v), Pte::new(Pfn::new(p), PteFlags::user_data()));
        }
        pt
    }

    #[test]
    fn paper_example_three_page_contiguity() {
        // §3.1: virtual pages 1,2,3 → physical 58,59,60 is 3-page contiguity.
        let pt = pt_with(&[(1, 58), (2, 59), (3, 60)]);
        let rep = ContiguityReport::scan(&pt);
        assert_eq!(rep.runs().len(), 1);
        assert_eq!(rep.runs()[0].len, 3);
        assert_eq!(rep.average_contiguity(), 3.0);
        assert_eq!(rep.max_contiguity(), 3);
    }

    #[test]
    fn virtual_only_contiguity_does_not_count() {
        // Consecutive VPNs but scattered PFNs: three 1-runs.
        let pt = pt_with(&[(1, 58), (2, 70), (3, 90)]);
        let rep = ContiguityReport::scan(&pt);
        assert_eq!(rep.runs().len(), 3);
        assert_eq!(rep.average_contiguity(), 1.0);
    }

    #[test]
    fn physical_only_contiguity_does_not_count() {
        // Consecutive PFNs but scattered VPNs.
        let pt = pt_with(&[(1, 58), (5, 59), (9, 60)]);
        let rep = ContiguityReport::scan(&pt);
        assert_eq!(rep.runs().len(), 3);
    }

    #[test]
    fn attribute_divergence_breaks_runs() {
        let mut pt = pt_with(&[(1, 58), (2, 59)]);
        pt.map_base(
            Vpn::new(3),
            Pte::new(Pfn::new(60), PteFlags::user_data().with(PteFlags::DIRTY)),
        );
        pt.map_base(Vpn::new(4), Pte::new(Pfn::new(61), PteFlags::user_data()));
        let rep = ContiguityReport::scan(&pt);
        let lens: Vec<u64> = rep.runs().iter().map(|r| r.len).collect();
        assert_eq!(lens, vec![2, 1, 1]);
    }

    #[test]
    fn superpage_mapped_pages_are_excluded() {
        let mut pt = pt_with(&[(1, 58), (2, 59)]);
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(1024), PteFlags::user_data()));
        let rep = ContiguityReport::scan(&pt);
        assert_eq!(rep.total_pages(), 2, "superpage pages are not base pages");
    }

    #[test]
    fn descending_pfns_do_not_form_runs() {
        let pt = pt_with(&[(1, 60), (2, 59), (3, 58)]);
        let rep = ContiguityReport::scan(&pt);
        assert_eq!(rep.runs().len(), 3);
    }

    #[test]
    fn cdf_is_page_weighted() {
        // 4 pages in one 4-run, 4 pages in four 1-runs.
        let rep = ContiguityReport::from_run_lengths(&[4, 1, 1, 1, 1]);
        assert!((rep.cdf_at(1) - 0.5).abs() < 1e-12);
        assert!((rep.cdf_at(3) - 0.5).abs() < 1e-12);
        assert!((rep.cdf_at(4) - 1.0).abs() < 1e-12);
        assert_eq!(rep.cdf(&[1, 4]), vec![0.5, 1.0]);
    }

    #[test]
    fn average_contiguity_is_mean_run_length() {
        let rep = ContiguityReport::from_run_lengths(&[4, 1, 1, 1, 1]);
        // 8 pages / 5 runs.
        assert!((rep.average_contiguity() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_least_matches_paper_statistic_shape() {
        let rep = ContiguityReport::from_run_lengths(&[600, 100, 1, 1]);
        let f = rep.fraction_with_contiguity_at_least(512);
        assert!((f - 600.0 / 702.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_reports_zeroes() {
        let rep = ContiguityReport::scan(&PageTable::new());
        assert_eq!(rep.total_pages(), 0);
        assert_eq!(rep.average_contiguity(), 0.0);
        assert_eq!(rep.cdf_at(64), 0.0);
        assert_eq!(rep.max_contiguity(), 0);
    }

    #[test]
    fn log2_histogram_buckets_by_run_length() {
        let rep = ContiguityReport::from_run_lengths(&[1, 2, 3, 8, 1024]);
        let h = rep.log2_histogram();
        assert_eq!(h[0], 1); // the 1-run
        assert_eq!(h[1], 5); // 2-run and 3-run pages
        assert_eq!(h[3], 8); // the 8-run
        assert_eq!(h[10], 1024); // the 1024-run
    }

    #[test]
    fn runs_with_gap_in_vpn_space_break() {
        let pt = pt_with(&[(1, 58), (3, 60)]);
        let rep = ContiguityReport::scan(&pt);
        assert_eq!(rep.runs().len(), 2, "vpn gap breaks the run even though pfn delta matches");
    }
}
