//! Snapshot codec: a compact, versioned byte format for deep-cloning
//! and persisting simulator state.
//!
//! The sweep runner prepares each (scenario, benchmark) pair once and
//! hands cells cheap deep clones; a disk cache under `results/snapshots/`
//! lets a second `repro` invocation skip preparation entirely. Both rest
//! on this module: every substrate type implements [`Snapshot`], a
//! field-by-field byte codec with no reflection, no external crates and
//! no `unsafe`.
//!
//! Design rules:
//!
//! * **Little-endian, length-prefixed, self-delimiting.** Integers are
//!   fixed-width little-endian; strings, byte blobs and containers carry
//!   a `u64` length prefix. Decoding never reads past the buffer — every
//!   getter bounds-checks and returns [`SnapshotError`] on truncation.
//! * **Structural fidelity over reconstruction.** Types are serialized
//!   field-by-field (the page table's node graph, the buddy free lists,
//!   the PRNG state) rather than rebuilt from higher-level operations,
//!   so a decoded kernel is bit-for-bit equivalent: the same node ids,
//!   the same walk addresses, the same future random stream.
//! * **Impls live with their fields.** Most substrate structs keep
//!   their fields module-private, so each module implements `Snapshot`
//!   for its own types; this file holds the codec, the trait, and impls
//!   for primitives, containers and the address newtypes.
//!
//! Integrity (CRC, versioning, quarantine) is layered on top by the
//! disk cache in `colt-core`; this module only guarantees that a decode
//! either reproduces the encoded value exactly or fails loudly.

use crate::addr::{Asid, PhysAddr, Pfn, VirtAddr, Vpn};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A decode failure: truncated input, an impossible discriminant, or a
/// sanity-check violation. The message names the failing field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode failed: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Shorthand for decode results.
pub type SnapResult<T> = Result<T, SnapshotError>;

fn err<T>(what: &str) -> SnapResult<T> {
    Err(SnapshotError(what.to_string()))
}

/// Byte-stream encoder. Append-only; [`Enc::finish`] yields the buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an f64 as its IEEE-754 bit pattern (exact round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Byte-stream decoder over a borrowed buffer. Every getter
/// bounds-checks; [`Dec::finish`] asserts the buffer was fully consumed.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return err(&format!("truncated reading {what}: need {n} bytes, have {}", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> SnapResult<u16> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> SnapResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> SnapResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a usize (stored as u64; rejects values over usize::MAX).
    pub fn usize(&mut self) -> SnapResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_or_else(|_| err(&format!("usize overflow: {v}")), Ok)
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; rejects bytes other than 0 and 1.
    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => err(&format!("invalid bool byte {b:#x}")),
        }
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> SnapResult<&'a [u8]> {
        let n = self.usize()?;
        self.take(n, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_or_else(|_| err("invalid UTF-8 in string"), Ok)
    }

    /// A length prefix for a container about to be decoded element by
    /// element. Sanity-capped: each element must occupy at least one
    /// byte, so a prefix larger than the remaining buffer is corrupt
    /// (and would otherwise trigger a huge up-front allocation).
    pub fn len(&mut self, what: &str) -> SnapResult<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return err(&format!("implausible {what} length {n} with {} bytes left", self.remaining()));
        }
        Ok(n)
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(self) -> SnapResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            err(&format!("{} trailing bytes after decode", self.remaining()))
        }
    }
}

/// Field-by-field byte serialization. `decode(encode(x)) == x` for every
/// reachable value; decode fails loudly on anything else.
pub trait Snapshot: Sized {
    /// Appends this value to `enc`.
    fn encode(&self, enc: &mut Enc);
    /// Reads one value from `dec`.
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self>;
}

macro_rules! impl_snapshot_prim {
    ($($t:ident),* $(,)?) => {$(
        impl Snapshot for $t {
            fn encode(&self, enc: &mut Enc) {
                enc.$t(*self);
            }
            fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
                dec.$t()
            }
        }
    )*};
}

impl_snapshot_prim!(u8, u16, u32, u64, usize, f64, bool);

impl Snapshot for String {
    fn encode(&self, enc: &mut Enc) {
        enc.str(self);
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        dec.str()
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let n = dec.len("Vec")?;
        let mut out = Self::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let n = dec.len("VecDeque")?;
        let mut out = Self::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let n = dec.len("BTreeSet")?;
        let mut out = Self::new();
        for _ in 0..n {
            out.insert(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.len());
        for (k, v) in self {
            k.encode(enc);
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let n = dec.len("BTreeMap")?;
        let mut out = Self::new();
        for _ in 0..n {
            let k = K::decode(dec)?;
            let v = V::decode(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, enc: &mut Enc) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            b => err(&format!("invalid Option tag {b:#x}")),
        }
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl Snapshot for [u64; 4] {
    fn encode(&self, enc: &mut Enc) {
        for v in self {
            enc.u64(*v);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok([dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?])
    }
}

macro_rules! impl_snapshot_newtype_u64 {
    ($($t:ident),* $(,)?) => {$(
        impl Snapshot for $t {
            fn encode(&self, enc: &mut Enc) {
                enc.u64(self.raw());
            }
            fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
                Ok($t::new(dec.u64()?))
            }
        }
    )*};
}

impl_snapshot_newtype_u64!(Vpn, Pfn, VirtAddr, PhysAddr);

impl Snapshot for Asid {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.0);
    }
    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self(dec.u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snapshot + PartialEq + std::fmt::Debug>(v: &T) {
        let mut enc = Enc::new();
        v.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&0xFFu8);
        round_trip(&0xBEEFu16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&3.14159f64);
        round_trip(&f64::NEG_INFINITY);
        round_trip(&String::from("höhle|;\\ and \0 nul"));
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut enc = Enc::new();
        weird.encode(&mut enc);
        let bytes = enc.finish();
        let back = f64::decode(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&VecDeque::from(vec![9u32, 8, 7]));
        round_trip(&BTreeSet::from([5u64, 1, 3]));
        round_trip(&BTreeMap::from([(1u64, String::from("a")), (2, String::from("b"))]));
        round_trip(&Some(42u64));
        round_trip(&Option::<u64>::None);
        round_trip(&(1u64, false, 2.5f64));
        round_trip(&[1u64, 2, 3, 4]);
    }

    #[test]
    fn addr_newtypes_round_trip() {
        round_trip(&Vpn::new(0x1234));
        round_trip(&Pfn::new(0xABCD));
        round_trip(&VirtAddr::new(0xFFFF_0000));
        round_trip(&PhysAddr::new(1 << 40));
        round_trip(&Asid(7));
    }

    #[test]
    fn truncation_fails_loudly() {
        let mut enc = Enc::new();
        0xDEAD_BEEF_DEAD_BEEFu64.encode(&mut enc);
        let bytes = enc.finish();
        assert!(u64::decode(&mut Dec::new(&bytes[..5])).is_err());
    }

    #[test]
    fn implausible_container_length_is_rejected() {
        let mut enc = Enc::new();
        enc.u64(u64::MAX);
        let bytes = enc.finish();
        assert!(Vec::<u64>::decode(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn bad_discriminants_are_rejected() {
        assert!(bool::decode(&mut Dec::new(&[2])).is_err());
        assert!(Option::<u64>::decode(&mut Dec::new(&[9])).is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut enc = Enc::new();
        7u64.encode(&mut enc);
        enc.u8(0);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        u64::decode(&mut dec).unwrap();
        assert!(dec.finish().is_err());
    }
}
