//! Transparent hugepage support (THS, paper §3.2.3).
//!
//! When enabled, the memory allocator opportunistically backs 2MB-aligned
//! anonymous regions with naturally aligned 512-frame blocks and maps them
//! as superpages. Under memory pressure a daemon splits superpages back
//! into base pages — which *retain* their physical contiguity, one of the
//! paper's key sources of intermediate contiguity.

use crate::addr::{Asid, Pfn, Vpn, SUPERPAGE_PAGES};
use crate::buddy::BuddyAllocator;
use crate::frames::{FrameDb, FrameState};
use crate::page_table::PageKind;
use crate::policy::MmPolicy;
use crate::process::Process;
use crate::vma::VmaKind;

/// Attempts to allocate one naturally aligned 512-frame block for a
/// superpage. Buddy order-9 blocks are aligned by construction, which is
/// exactly why THS leans on the buddy allocator (paper §3.2.3).
pub fn try_alloc_superpage(buddy: &mut BuddyAllocator) -> Option<Pfn> {
    buddy.alloc_block(9)
}

/// Splits the superpage mapped at `base_vpn` into 512 base pages backed by
/// the same (still contiguous) frames, updating the frame database from
/// `Huge` to `Movable` so compaction may later move them.
///
/// Returns `false` if no superpage maps `base_vpn`.
pub fn split_superpage(process: &mut Process, frames: &mut FrameDb, base_vpn: Vpn) -> bool {
    let Some(pte) = process.page_table.split_superpage(base_vpn) else {
        return false;
    };
    let owner = process.asid();
    for i in 0..SUPERPAGE_PAGES {
        frames.set(
            pte.pfn.offset(i),
            FrameState::Movable { owner, vpn: base_vpn.offset(i) },
        );
    }
    true
}

/// Records the frames of a freshly mapped superpage in the frame database.
pub fn record_superpage_frames(frames: &mut FrameDb, owner: Asid, base_vpn: Vpn, base_pfn: Pfn) {
    for i in 0..SUPERPAGE_PAGES {
        frames.set(base_pfn.offset(i), FrameState::Huge { owner, base_vpn });
    }
}

/// khugepaged's eligibility verdict for collapsing the 512 pages at
/// `base_vpn` into one superpage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollapseScan {
    /// Every page is base-mapped: ready to collapse.
    Ready,
    /// Unpopulated holes remain; worth rescanning later (demand-mode
    /// pages may still fault in).
    Holes,
    /// A superpage already covers part of the range, or the base VPN is
    /// misaligned: never collapsible.
    Ineligible,
}

/// Scans `base_vpn..base_vpn+512` the way khugepaged would before a
/// collapse. The backing frames need not be contiguous — collapse
/// migrates them into a fresh naturally aligned block.
pub fn collapse_scan(process: &Process, base_vpn: Vpn) -> CollapseScan {
    if !base_vpn.is_aligned(9) {
        return CollapseScan::Ineligible;
    }
    let mut holes = false;
    for i in 0..SUPERPAGE_PAGES {
        match process.page_table.translate(base_vpn.offset(i)) {
            Some(t) if t.kind == PageKind::Base => {}
            Some(_) => return CollapseScan::Ineligible,
            None => holes = true,
        }
    }
    if holes {
        CollapseScan::Holes
    } else {
        CollapseScan::Ready
    }
}

/// The pressure daemon's split decision: split superpages when the free
/// fraction of memory falls below `watermark` (paper §3.2.3: "system
/// pressure triggers a daemon that breaks superpages into baseline 4KB
/// pages").
pub fn pressure_should_split(free_frames: u64, total_frames: u64, watermark: f64) -> bool {
    (free_frames as f64) < watermark * total_frames as f64
}

/// [`collapse_scan`] behind the policy's collapse-eligibility gate: a
/// policy that forbids collapse (only anonymous regions reach khugepaged)
/// makes every region [`CollapseScan::Ineligible`] before the page walk.
pub fn collapse_scan_policy(
    policy: &dyn MmPolicy,
    process: &Process,
    base_vpn: Vpn,
) -> CollapseScan {
    if !policy.collapse_eligible(VmaKind::Anonymous) {
        return CollapseScan::Ineligible;
    }
    collapse_scan(process, base_vpn)
}

/// [`pressure_should_split`] at the policy's effective watermark — the
/// policy may tighten or relax the configured split threshold.
pub fn pressure_should_split_policy(
    policy: &dyn MmPolicy,
    free_frames: u64,
    total_frames: u64,
    configured_watermark: f64,
) -> bool {
    pressure_should_split(
        free_frames,
        total_frames,
        policy.split_watermark(configured_watermark),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::{Pte, PteFlags};

    #[test]
    fn superpage_allocation_is_naturally_aligned() {
        let mut buddy = BuddyAllocator::new(4096);
        // Disturb alignment by taking one page first.
        assert!(buddy.take_free_page(Pfn::new(0)));
        let base = try_alloc_superpage(&mut buddy).unwrap();
        assert!(base.is_aligned(9));
        buddy.check_invariants();
    }

    #[test]
    fn superpage_allocation_fails_without_aligned_block() {
        let mut buddy = BuddyAllocator::new(1024);
        // Poke a hole in each 512-page half so no order-9 block survives.
        assert!(buddy.take_free_page(Pfn::new(100)));
        assert!(buddy.take_free_page(Pfn::new(600)));
        assert!(try_alloc_superpage(&mut buddy).is_none());
    }

    #[test]
    fn split_converts_huge_frames_to_movable() {
        let mut frames = FrameDb::new(2048);
        let asid = Asid(1);
        let mut proc = Process::new(asid, 1 << 20);
        let base_vpn = Vpn::new(512);
        let base_pfn = Pfn::new(1024);
        proc.page_table
            .map_super(base_vpn, Pte::new(base_pfn, PteFlags::user_data()));
        record_superpage_frames(&mut frames, asid, base_vpn, base_pfn);
        assert_eq!(frames.counts().huge, 512);

        assert!(split_superpage(&mut proc, &mut frames, base_vpn));
        assert_eq!(frames.counts().huge, 0);
        assert_eq!(frames.counts().movable, 512);
        // Contiguity retained: base pages still map consecutive frames.
        for i in [0u64, 17, 511] {
            assert_eq!(
                proc.translate(base_vpn.offset(i)).unwrap().pfn,
                base_pfn.offset(i)
            );
        }
        // Reverse map now points at individual base pages.
        assert_eq!(frames.rmap(base_pfn.offset(9)), Some((asid, base_vpn.offset(9))));
    }

    #[test]
    fn split_of_nonexistent_superpage_is_false() {
        let mut frames = FrameDb::new(64);
        let mut proc = Process::new(Asid(1), 1 << 20);
        assert!(!split_superpage(&mut proc, &mut frames, Vpn::new(512)));
    }

    #[test]
    fn collapse_scan_distinguishes_ready_holes_and_ineligible() {
        let mut proc = Process::new(Asid(1), 1 << 20);
        let base = Vpn::new(512);
        assert_eq!(collapse_scan(&proc, Vpn::new(3)), CollapseScan::Ineligible);
        assert_eq!(collapse_scan(&proc, base), CollapseScan::Holes);
        for i in 0..SUPERPAGE_PAGES {
            proc.page_table
                .map_base(base.offset(i), Pte::new(Pfn::new(i), PteFlags::user_data()));
        }
        assert_eq!(collapse_scan(&proc, base), CollapseScan::Ready);
        // A range under an existing superpage is never a candidate.
        let huge = Vpn::new(1024);
        proc.page_table
            .map_super(huge, Pte::new(Pfn::new(1024), PteFlags::user_data()));
        assert_eq!(collapse_scan(&proc, huge), CollapseScan::Ineligible);
    }

    #[test]
    fn pressure_watermark_comparison() {
        assert!(pressure_should_split(5, 100, 0.10));
        assert!(!pressure_should_split(15, 100, 0.10));
        assert!(!pressure_should_split(10, 100, 0.10), "exactly at watermark: no split");
    }
}
