//! Linux-style buddy allocator (paper §3.2.1, Figures 1 and 2).
//!
//! All free physical page frames are grouped into `MAX_ORDER + 1` free
//! lists; entry `x` tracks naturally aligned blocks of `2^x` contiguous
//! frames. Allocation searches the smallest sufficient order upward,
//! iteratively halving the found block; freeing iteratively merges buddy
//! pairs. By construction, a request for N pages receives N *contiguous*
//! frames — the intermediate contiguity CoLT exploits.

use crate::addr::Pfn;
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use std::collections::BTreeSet;

/// Highest buddy order (blocks of `2^MAX_ORDER` = 1024 pages = 4MB),
/// matching Linux's eleven free lists (orders 0..=10).
pub const MAX_ORDER: u32 = 10;

/// A contiguous range of physical page frames returned by an allocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PfnRange {
    /// First frame of the range.
    pub start: Pfn,
    /// Number of frames in the range.
    pub pages: u64,
}

impl PfnRange {
    /// Creates a range covering `pages` frames starting at `start`.
    pub fn new(start: Pfn, pages: u64) -> Self {
        Self { start, pages }
    }

    /// One-past-the-end frame number.
    pub fn end(&self) -> Pfn {
        self.start.offset(self.pages)
    }

    /// Iterates over the frames in the range.
    pub fn iter(&self) -> impl Iterator<Item = Pfn> + '_ {
        (self.start.raw()..self.end().raw()).map(Pfn::new)
    }

    /// True when `pfn` lies inside the range.
    pub fn contains(&self, pfn: Pfn) -> bool {
        pfn >= self.start && pfn < self.end()
    }
}

/// Per-order occupancy snapshot of the free lists.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FreeListHistogram {
    /// `counts[order]` = number of free blocks of that order.
    pub counts: Vec<usize>,
}

impl FreeListHistogram {
    /// Total number of free frames implied by the histogram.
    pub fn free_frames(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(order, &n)| (n as u64) << order)
            .sum()
    }
}

/// The buddy allocator over a flat physical frame space `0..nr_frames`.
///
/// ```
/// use colt_os_mem::buddy::BuddyAllocator;
/// let mut buddy = BuddyAllocator::new(1024);
/// let range = buddy.alloc_pages(3).expect("memory available");
/// assert_eq!(range.pages, 3);
/// buddy.free_pages(range);
/// assert_eq!(buddy.free_frames(), 1024);
/// ```
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    nr_frames: u64,
    /// `free_lists[order]` holds the start PFNs of free aligned blocks.
    free_lists: Vec<BTreeSet<u64>>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator with `nr_frames` initially free frames.
    ///
    /// # Panics
    /// Panics if `nr_frames` is zero.
    pub fn new(nr_frames: u64) -> Self {
        assert!(nr_frames > 0, "physical memory must be non-empty");
        let mut buddy = Self {
            nr_frames,
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            free_frames: 0,
        };
        buddy.free_range_raw(0, nr_frames);
        buddy
    }

    /// Total number of frames managed (free + allocated).
    pub fn nr_frames(&self) -> u64 {
        self.nr_frames
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Per-order counts of free blocks.
    pub fn histogram(&self) -> FreeListHistogram {
        FreeListHistogram {
            counts: self.free_lists.iter().map(BTreeSet::len).collect(),
        }
    }

    /// The largest order with at least one free block, if any memory is free.
    pub fn largest_free_order(&self) -> Option<u32> {
        (0..=MAX_ORDER).rev().find(|&o| !self.free_lists[o as usize].is_empty())
    }

    /// An unusability/fragmentation score in `[0, 1]`: 0 when the largest
    /// free block is as big as the buddy system can represent (or covers
    /// all free memory), approaching 1 as free memory shatters into single
    /// frames. Defined as `1 - largest_free_block / min(free, 2^MAX_ORDER)`.
    pub fn fragmentation_index(&self) -> f64 {
        if self.free_frames == 0 {
            return 1.0;
        }
        let largest = self.largest_free_order().map(|o| 1u64 << o).unwrap_or(0);
        let representable = self.free_frames.min(1u64 << MAX_ORDER);
        1.0 - (largest.min(representable)) as f64 / representable as f64
    }

    /// Fraction of free memory sitting in blocks smaller than
    /// `2^order` — the scatter metric background compaction watches:
    /// lots of small free blocks means demand faults will be served from
    /// scattered singles rather than contiguous space.
    pub fn small_free_fraction(&self, order: u32) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let small: u64 = self.free_lists[..(order.min(MAX_ORDER + 1)) as usize]
            .iter()
            .enumerate()
            .map(|(o, l)| (l.len() as u64) << o)
            .sum();
        small as f64 / self.free_frames as f64
    }

    /// Allocates one naturally aligned block of `2^order` frames, searching
    /// the free lists upward and splitting larger blocks as needed
    /// (paper Figure 2). Returns the block's first frame.
    pub fn alloc_block(&mut self, order: u32) -> Option<Pfn> {
        if order > MAX_ORDER {
            return None;
        }
        let found = (order..=MAX_ORDER).find(|&o| !self.free_lists[o as usize].is_empty())?;
        let start = *self.free_lists[found as usize].iter().next().expect("non-empty list");
        self.free_lists[found as usize].remove(&start);
        // Iteratively halve: keep the lower half, return the upper half to
        // its free list, until the block is the requested size.
        let mut cur = found;
        while cur > order {
            cur -= 1;
            let upper = start + (1u64 << cur);
            self.free_lists[cur as usize].insert(upper);
        }
        self.free_frames -= 1u64 << order;
        Some(Pfn::new(start))
    }

    /// Allocates exactly `pages` contiguous frames (not necessarily
    /// aligned): rounds the request up to the covering order, then frees
    /// the unused tail back so it can merge with its buddies. This mirrors
    /// how a multi-page request reaching the buddy allocator yields a
    /// contiguous run (paper §3.2.1).
    ///
    /// Returns `None` when `pages` is zero, exceeds `2^MAX_ORDER`, or no
    /// sufficiently large block exists.
    pub fn alloc_pages(&mut self, pages: u64) -> Option<PfnRange> {
        if pages == 0 || pages > (1u64 << MAX_ORDER) {
            return None;
        }
        let order = covering_order(pages);
        let start = self.alloc_block(order)?;
        let tail = (1u64 << order) - pages;
        if tail > 0 {
            self.free_range_raw(start.raw() + pages, tail);
        }
        Some(PfnRange::new(start, pages))
    }

    /// Frees one aligned block of `2^order` frames starting at `start`,
    /// iteratively merging with its buddy while the buddy is also free
    /// (paper §3.2.1: "merge process is iterative, leading to large
    /// amounts of contiguity").
    ///
    /// # Panics
    /// Panics if the block is misaligned, out of range, or any part of it
    /// is already free (double free).
    pub fn free_block(&mut self, start: Pfn, order: u32) {
        let mut start = start.raw();
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        assert_eq!(start & ((1u64 << order) - 1), 0, "misaligned free at {start:#x}");
        assert!(
            start + (1u64 << order) <= self.nr_frames,
            "free beyond end of memory"
        );
        debug_assert!(
            self.containing_free_block(start).is_none(),
            "double free of frame in block at {start:#x}"
        );
        let freed_pages = 1u64 << order;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = start ^ (1u64 << order);
            if buddy + (1u64 << order) > self.nr_frames {
                break;
            }
            if !self.free_lists[order as usize].remove(&buddy) {
                break;
            }
            start = start.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(start);
        self.free_frames += freed_pages;
    }

    /// Frees an arbitrary (possibly unaligned) contiguous range, breaking
    /// it into maximal aligned blocks so buddy merging applies.
    pub fn free_pages(&mut self, range: PfnRange) {
        self.free_range_raw(range.start.raw(), range.pages);
    }

    fn free_range_raw(&mut self, mut start: u64, mut pages: u64) {
        while pages > 0 {
            let align_order = if start == 0 { MAX_ORDER } else { start.trailing_zeros() };
            let size_order = 63 - pages.leading_zeros();
            let order = align_order.min(size_order).min(MAX_ORDER);
            self.free_block(Pfn::new(start), order);
            start += 1u64 << order;
            pages -= 1u64 << order;
        }
    }

    /// True when the single frame `pfn` is currently free.
    pub fn is_free(&self, pfn: Pfn) -> bool {
        self.frame_is_free(pfn.raw())
    }

    fn frame_is_free(&self, pfn: u64) -> bool {
        self.containing_free_block(pfn).is_some()
    }

    /// Finds the free block `(start, order)` containing `pfn`, if any.
    fn containing_free_block(&self, pfn: u64) -> Option<(u64, u32)> {
        for order in 0..=MAX_ORDER {
            let aligned = pfn & !((1u64 << order) - 1);
            if self.free_lists[order as usize].contains(&aligned) {
                return Some((aligned, order));
            }
        }
        None
    }

    /// Removes one specific free frame from the free lists (used by the
    /// compaction daemon's free-page scanner to claim a migration target).
    /// The rest of the containing block is returned to the free lists.
    ///
    /// Returns `false` when the frame is not free.
    pub fn take_free_page(&mut self, pfn: Pfn) -> bool {
        let Some((start, order)) = self.containing_free_block(pfn.raw()) else {
            return false;
        };
        self.free_lists[order as usize].remove(&start);
        self.free_frames -= 1u64 << order;
        let before = pfn.raw() - start;
        let after = start + (1u64 << order) - pfn.raw() - 1;
        if before > 0 {
            self.free_range_raw(start, before);
        }
        if after > 0 {
            self.free_range_raw(pfn.raw() + 1, after);
        }
        true
    }

    /// Highest-numbered free frame, if any (compaction's free scanner
    /// starts at the top of physical memory, paper Figure 3).
    pub fn highest_free_page(&self) -> Option<Pfn> {
        (0..=MAX_ORDER)
            .filter_map(|o| {
                self.free_lists[o as usize]
                    .iter()
                    .next_back()
                    .map(|&s| s + (1u64 << o) - 1)
            })
            .max()
            .map(Pfn::new)
    }

    /// Highest-numbered free frame strictly below `limit`, if any.
    pub fn highest_free_page_below(&self, limit: Pfn) -> Option<Pfn> {
        let limit = limit.raw();
        (0..=MAX_ORDER)
            .filter_map(|o| {
                let size = 1u64 << o;
                // The candidate block must start below `limit`.
                self.free_lists[o as usize]
                    .range(..limit)
                    .next_back()
                    .map(|&s| (s + size - 1).min(limit - 1))
            })
            .max()
            .map(Pfn::new)
    }

    /// Exhaustively checks internal invariants; used by tests.
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.nr_frames as usize];
        let mut counted = 0u64;
        for order in 0..=MAX_ORDER {
            for &start in &self.free_lists[order as usize] {
                let size = 1u64 << order;
                assert_eq!(start % size, 0, "block {start:#x} misaligned for order {order}");
                assert!(start + size <= self.nr_frames, "block beyond memory end");
                for p in start..start + size {
                    assert!(!seen[p as usize], "frame {p:#x} in two free blocks");
                    seen[p as usize] = true;
                }
                counted += size;
            }
        }
        assert_eq!(counted, self.free_frames, "free frame count drifted");
    }
}

impl Snapshot for BuddyAllocator {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.nr_frames);
        self.free_lists.encode(enc);
        enc.u64(self.free_frames);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let nr_frames = dec.u64()?;
        let free_lists = Vec::<BTreeSet<u64>>::decode(dec)?;
        let free_frames = dec.u64()?;
        if nr_frames == 0 || free_lists.len() != (MAX_ORDER + 1) as usize {
            return Err(SnapshotError(format!(
                "buddy allocator shape invalid: {nr_frames} frames, {} free lists",
                free_lists.len()
            )));
        }
        Ok(Self { nr_frames, free_lists, free_frames })
    }
}

impl Snapshot for PfnRange {
    fn encode(&self, enc: &mut Enc) {
        self.start.encode(enc);
        enc.u64(self.pages);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self { start: Pfn::decode(dec)?, pages: dec.u64()? })
    }
}

/// Smallest order whose block covers `pages` frames.
///
/// # Panics
/// Panics if `pages` is zero.
pub fn covering_order(pages: u64) -> u32 {
    assert!(pages > 0, "covering_order of zero pages");
    pages.next_power_of_two().trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_order_matches_definition() {
        assert_eq!(covering_order(1), 0);
        assert_eq!(covering_order(2), 1);
        assert_eq!(covering_order(3), 2);
        assert_eq!(covering_order(4), 2);
        assert_eq!(covering_order(5), 3);
        assert_eq!(covering_order(512), 9);
        assert_eq!(covering_order(513), 10);
    }

    #[test]
    fn fresh_allocator_is_fully_free_in_maximal_blocks() {
        let buddy = BuddyAllocator::new(4096);
        assert_eq!(buddy.free_frames(), 4096);
        let h = buddy.histogram();
        assert_eq!(h.counts[MAX_ORDER as usize], 4);
        assert!(h.counts[..MAX_ORDER as usize].iter().all(|&c| c == 0));
        buddy.check_invariants();
    }

    #[test]
    fn odd_sized_memory_decomposes_into_aligned_blocks() {
        // 1027 = 1024 + 2 + 1.
        let buddy = BuddyAllocator::new(1027);
        assert_eq!(buddy.free_frames(), 1027);
        let h = buddy.histogram();
        assert_eq!(h.counts[10], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[0], 1);
        buddy.check_invariants();
    }

    #[test]
    fn paper_figure_2_walkthrough() {
        // Figure 2: pages 0..8, pages 1,2,3 allocated; request for 2 pages
        // finds no order-1 block and splits the order-2 block {4,5,6,7},
        // returning pages 4,5 and leaving 6,7 on list 1.
        let mut buddy = BuddyAllocator::new(8);
        // Carve out pages 0..4 so that only {4..8} remains free as an
        // order-2 block, plus single page 0 free (mimic figure: 0 free,
        // 1-3 allocated).
        assert!(buddy.take_free_page(Pfn::new(1)));
        assert!(buddy.take_free_page(Pfn::new(2)));
        assert!(buddy.take_free_page(Pfn::new(3)));
        let h = buddy.histogram();
        assert_eq!(h.counts[0], 1, "page 0 alone on list 0");
        assert_eq!(h.counts[2], 1, "pages 4-7 on list 2");

        let r = buddy.alloc_pages(2).expect("2 pages available");
        assert_eq!(r.start, Pfn::new(4));
        assert_eq!(r.pages, 2);
        let h = buddy.histogram();
        assert_eq!(h.counts[1], 1, "pages 6,7 moved to list 1");
        buddy.check_invariants();
    }

    #[test]
    fn alloc_block_splits_and_free_block_merges_back() {
        let mut buddy = BuddyAllocator::new(1024);
        let p = buddy.alloc_block(0).unwrap();
        assert_eq!(buddy.free_frames(), 1023);
        buddy.free_block(p, 0);
        assert_eq!(buddy.free_frames(), 1024);
        let h = buddy.histogram();
        assert_eq!(h.counts[10], 1, "merged back to a single maximal block");
        buddy.check_invariants();
    }

    #[test]
    fn alloc_pages_returns_contiguous_run_and_frees_tail() {
        let mut buddy = BuddyAllocator::new(1024);
        let r = buddy.alloc_pages(5).unwrap();
        assert_eq!(r.pages, 5);
        assert_eq!(buddy.free_frames(), 1019);
        // The 3-page tail of the order-3 block must be free again.
        for p in r.end().raw()..r.start.raw() + 8 {
            assert!(buddy.is_free(Pfn::new(p)));
        }
        buddy.check_invariants();
    }

    #[test]
    fn alloc_pages_rejects_zero_and_oversized() {
        let mut buddy = BuddyAllocator::new(4096);
        assert!(buddy.alloc_pages(0).is_none());
        assert!(buddy.alloc_pages((1 << MAX_ORDER) + 1).is_none());
        assert!(buddy.alloc_pages(1 << MAX_ORDER).is_some());
    }

    #[test]
    fn allocation_fails_when_memory_exhausted() {
        let mut buddy = BuddyAllocator::new(16);
        let r = buddy.alloc_pages(16).unwrap();
        assert!(buddy.alloc_pages(1).is_none());
        assert_eq!(buddy.free_frames(), 0);
        assert!((buddy.fragmentation_index() - 1.0).abs() < 1e-12);
        buddy.free_pages(r);
        assert!(buddy.alloc_pages(1).is_some());
    }

    #[test]
    fn take_free_page_claims_exactly_one_frame() {
        let mut buddy = BuddyAllocator::new(64);
        assert!(buddy.take_free_page(Pfn::new(37)));
        assert_eq!(buddy.free_frames(), 63);
        assert!(!buddy.is_free(Pfn::new(37)));
        assert!(buddy.is_free(Pfn::new(36)));
        assert!(buddy.is_free(Pfn::new(38)));
        assert!(!buddy.take_free_page(Pfn::new(37)), "already taken");
        buddy.free_block(Pfn::new(37), 0);
        assert_eq!(buddy.free_frames(), 64);
        assert_eq!(buddy.histogram().counts[6.min(MAX_ORDER as usize)], 1);
        buddy.check_invariants();
    }

    #[test]
    fn highest_free_page_tracks_top_of_memory() {
        let mut buddy = BuddyAllocator::new(128);
        assert_eq!(buddy.highest_free_page(), Some(Pfn::new(127)));
        assert!(buddy.take_free_page(Pfn::new(127)));
        assert_eq!(buddy.highest_free_page(), Some(Pfn::new(126)));
        assert_eq!(
            buddy.highest_free_page_below(Pfn::new(50)),
            Some(Pfn::new(49))
        );
    }

    #[test]
    fn fragmentation_index_rises_as_memory_shatters() {
        let mut buddy = BuddyAllocator::new(1024);
        let fresh = buddy.fragmentation_index();
        assert!(fresh.abs() < 1e-12);
        // Take every other page: free memory is all single frames.
        for p in (0..1024).step_by(2) {
            buddy.take_free_page(Pfn::new(p));
        }
        assert!(buddy.fragmentation_index() > 0.99);
        buddy.check_invariants();
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut buddy = BuddyAllocator::new(64);
        buddy.alloc_block(2).unwrap();
        buddy.free_block(Pfn::new(1), 2);
    }

    #[test]
    fn interleaved_alloc_free_preserves_invariants() {
        let mut buddy = BuddyAllocator::new(2048);
        let mut live = Vec::new();
        for i in 1..=40u64 {
            if let Some(r) = buddy.alloc_pages((i * 7) % 30 + 1) {
                live.push(r);
            }
            if i % 3 == 0 {
                if let Some(r) = live.pop() {
                    buddy.free_pages(r);
                }
            }
            buddy.check_invariants();
        }
        for r in live {
            buddy.free_pages(r);
        }
        assert_eq!(buddy.free_frames(), 2048);
        assert_eq!(buddy.histogram().counts[10], 2);
        buddy.check_invariants();
    }
}
