//! The memory-compaction daemon (paper §3.2.2, Figure 3).
//!
//! Two-finger algorithm: a *migrate scanner* walks up from the bottom of
//! physical memory collecting movable allocated pages, while a *free
//! scanner* walks down from the top collecting free pages. Movable pages
//! are migrated into the free slots until the scanners meet, consolidating
//! free memory into contiguous low regions that the buddy allocator then
//! merges into large blocks — a major source of the intermediate
//! contiguity CoLT exploits.

use crate::addr::{Asid, Pfn};
use crate::buddy::BuddyAllocator;
use crate::frames::{FrameDb, FrameState};
use crate::process::Process;
use crate::shootdown::{ShootdownEvent, ShootdownKind, ShootdownLog};
use std::collections::BTreeMap;

/// Outcome of one compaction pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompactionStats {
    /// Pages migrated from low to high frames.
    pub migrated: u64,
    /// Movable pages examined by the migrate scanner.
    pub scanned: u64,
    /// The pass stopped because its migration budget ran out while
    /// movable work remained (Linux's `COMPACT_PARTIAL`): the caller's
    /// allocation may still fail and should back off before retrying.
    pub aborted: bool,
}

/// How far a compaction pass runs before giving up.
///
/// Real kernels compact *incrementally*: direct compaction stops as soon
/// as a block of the requested order becomes available, and background
/// compaction works in bounded slices. A full unconditional pass (the
/// default control) is the upper bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompactionControl {
    /// Stop once a free block of this order exists (direct compaction for
    /// a specific allocation).
    pub target_order: Option<u32>,
    /// Stop after migrating this many pages (background slice).
    pub max_migrations: Option<u64>,
}

impl CompactionControl {
    /// Direct compaction on behalf of an order-`order` allocation.
    pub fn until_order(order: u32) -> Self {
        Self { target_order: Some(order), max_migrations: None }
    }

    /// A bounded background slice.
    pub fn slice(max_migrations: u64) -> Self {
        Self { target_order: None, max_migrations: Some(max_migrations) }
    }

    /// Scales the migration budget by `factor` — how an [`MmPolicy`]
    /// widens (or keeps) the work a direct-compaction pass may do.
    /// `factor == 1` is the identity, preserving the control bit-for-bit.
    ///
    /// [`MmPolicy`]: crate::policy::MmPolicy
    pub fn scaled(self, factor: u64) -> Self {
        Self {
            target_order: self.target_order,
            max_migrations: self.max_migrations.map(|m| m.saturating_mul(factor)),
        }
    }
}

/// Runs one full compaction pass over physical memory.
///
/// Pinned and superpage-backing frames are skipped (they are not movable,
/// paper Figure 3). Page tables of affected processes are fixed through
/// the frame database's reverse map, so translations stay correct.
pub fn compact(
    buddy: &mut BuddyAllocator,
    frames: &mut FrameDb,
    processes: &mut BTreeMap<Asid, Process>,
) -> CompactionStats {
    compact_with(buddy, frames, processes, CompactionControl::default())
}

/// Pageblock granularity for the migrate scanner's density heuristic
/// (Linux pageblocks are 512 pages: one 2MB superpage).
const PAGEBLOCK_PAGES: u64 = 512;

/// The migrate scanner skips pageblocks denser than this: evacuating a
/// nearly full block costs many migrations and yields little free space,
/// so real compaction concentrates on sparsely used blocks. This is also
/// what keeps compaction from shredding the long contiguity runs of
/// densely backed allocations.
const MIGRATE_DENSITY_LIMIT: f64 = 0.8;

/// Free pages isolated per free-scanner batch. Targets are consumed in
/// ascending frame order within a batch, so a migrated run of pages stays
/// a run (Linux's `isolate_freepages` behaves the same way).
const FREE_BATCH: usize = 512;

/// Runs a compaction pass under the given [`CompactionControl`].
pub fn compact_with(
    buddy: &mut BuddyAllocator,
    frames: &mut FrameDb,
    processes: &mut BTreeMap<Asid, Process>,
    control: CompactionControl,
) -> CompactionStats {
    let mut log = ShootdownLog::new();
    compact_logged(buddy, frames, processes, control, &mut log)
}

/// Runs a compaction pass, recording a [`ShootdownKind::Migrate`] event
/// per migrated page into `log` (when enabled) — the shootdown traffic a
/// real kernel would issue to every CPU caching the moved translation.
pub fn compact_logged(
    buddy: &mut BuddyAllocator,
    frames: &mut FrameDb,
    processes: &mut BTreeMap<Asid, Process>,
    control: CompactionControl,
    log: &mut ShootdownLog,
) -> CompactionStats {
    let mut stats = CompactionStats::default();
    let mut migrate_cursor = Pfn::new(0);
    // The free scanner's upper bound moves down as batches are isolated.
    let mut free_limit = Pfn::new(buddy.nr_frames());
    // The current batch of isolated target frames, ascending.
    let mut batch: Vec<Pfn> = Vec::new();
    let mut batch_next = 0usize;

    'outer: loop {
        if let Some(order) = control.target_order {
            if buddy.largest_free_order().is_some_and(|o| o >= order) {
                break;
            }
        }
        if let Some(max) = control.max_migrations {
            if stats.migrated >= max {
                stats.aborted = true;
                break;
            }
        }
        // Migrate scanner: next movable page from the bottom, skipping
        // densely occupied pageblocks.
        let src = loop {
            let Some(candidate) = frames.first_movable_at_or_above(migrate_cursor) else {
                break 'outer;
            };
            let block_start = candidate.align_down(9);
            let block_end = block_start.raw() + PAGEBLOCK_PAGES;
            if frames.pageblock_density(candidate) > MIGRATE_DENSITY_LIMIT {
                // Too dense: skip the whole pageblock.
                migrate_cursor = Pfn::new(block_end);
                if migrate_cursor.raw() >= frames.nr_frames() {
                    break 'outer;
                }
                continue;
            }
            break candidate;
        };
        // Scanners met: the migrate scanner reached the free scanner's
        // lowest isolated frame.
        if src >= free_limit {
            break;
        }

        // Free scanner: refill the target batch from the top when empty.
        if batch_next >= batch.len() {
            batch.clear();
            batch_next = 0;
            while batch.len() < FREE_BATCH {
                let Some(f) = buddy.highest_free_page_below(free_limit) else {
                    break;
                };
                // The free scanner never isolates targets at/below the
                // migrate scanner, nor inside its pageblock (the two
                // scanners work distinct pageblocks, as in Linux).
                if f <= src || f.align_down(9) == src.align_down(9) {
                    break;
                }
                let claimed = buddy.take_free_page(f);
                debug_assert!(claimed, "free scanner returned a non-free frame");
                batch.push(f);
                free_limit = f;
            }
            if batch.is_empty() {
                break;
            }
            batch.reverse(); // consume in ascending frame order
        }

        let dst = batch[batch_next];
        debug_assert!(dst > src, "targets stay above the migrate scanner");
        batch_next += 1;
        stats.scanned += 1;

        let (owner, vpn) = frames
            .rmap(src)
            .expect("migrate scanner found a movable frame without rmap");

        // Migrate: retarget the owner's PTE, update frame states, and
        // release the source frame back to the buddy allocator.
        let process = processes
            .get_mut(&owner)
            .expect("rmap names a process that no longer exists");
        if log.is_enabled() {
            let entry_addrs = process
                .page_table
                .walk(vpn)
                .map(|p| p.entry_addrs)
                .unwrap_or_default();
            log.record(ShootdownEvent {
                asid: owner,
                vpn,
                kind: ShootdownKind::Migrate,
                entry_addrs,
                old_pfn: Some(src),
                new_pfn: Some(dst),
            });
        }
        let old = process.page_table.remap_base(vpn, dst);
        debug_assert!(old.is_some(), "rmap and page table out of sync");
        frames.set(dst, FrameState::Movable { owner, vpn });
        frames.set(src, FrameState::Free);
        buddy.free_block(src, 0);
        stats.migrated += 1;

        migrate_cursor = src.next();
    }
    // Return any unconsumed isolated targets.
    for &p in &batch[batch_next..] {
        buddy.free_block(p, 0);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;
    use crate::page_table::{Pte, PteFlags};

    /// Builds a toy system: `nr` frames, one process, with `layout`
    /// describing which frames are allocated to consecutive vpns.
    fn build(
        nr: u64,
        allocated: &[u64],
        pinned: &[u64],
    ) -> (BuddyAllocator, FrameDb, BTreeMap<Asid, Process>) {
        let mut buddy = BuddyAllocator::new(nr);
        let mut frames = FrameDb::new(nr);
        let asid = Asid(1);
        let mut proc = Process::new(asid, 1 << 20);
        for (i, &pfn) in allocated.iter().enumerate() {
            assert!(buddy.take_free_page(Pfn::new(pfn)));
            let vpn = Vpn::new(0x1000 + i as u64);
            proc.page_table
                .map_base(vpn, Pte::new(Pfn::new(pfn), PteFlags::user_data()));
            frames.set(Pfn::new(pfn), FrameState::Movable { owner: asid, vpn });
        }
        for &pfn in pinned {
            assert!(buddy.take_free_page(Pfn::new(pfn)));
            frames.set(Pfn::new(pfn), FrameState::Pinned);
        }
        let mut procs = BTreeMap::new();
        procs.insert(asid, proc);
        (buddy, frames, procs)
    }

    #[test]
    fn compaction_defragments_scattered_pages() {
        // 16 pages scattered over the bottom pageblock of a two-block
        // memory; compaction must evacuate them to the top block.
        let movable: Vec<u64> = (0..32).step_by(2).collect();
        let (mut buddy, mut frames, mut procs) = build(1024, &movable, &[]);
        let stats = compact(&mut buddy, &mut frames, &mut procs);
        assert_eq!(stats.migrated, 16);
        assert!(!stats.aborted, "an unbounded pass runs to completion");
        buddy.check_invariants();
        let counts = frames.counts();
        assert_eq!(counts.movable, 16);
        assert_eq!(counts.free, 1008);
        for p in 0..512u64 {
            assert!(buddy.is_free(Pfn::new(p)), "bottom frame {p} should be free");
        }
        // And the bottom block merged back into a maximal free block.
        assert_eq!(buddy.largest_free_order(), Some(crate::buddy::MAX_ORDER.min(9)));
    }

    #[test]
    fn page_tables_stay_correct_after_migration() {
        let (mut buddy, mut frames, mut procs) = build(32, &[1, 3, 5, 7, 9], &[]);
        compact(&mut buddy, &mut frames, &mut procs);
        let proc = procs.get(&Asid(1)).unwrap();
        for i in 0..5u64 {
            let vpn = Vpn::new(0x1000 + i);
            let t = proc.translate(vpn).expect("still mapped");
            // The frame the PTE points to must be recorded as owned by us.
            assert_eq!(frames.rmap(t.pfn), Some((Asid(1), vpn)));
            assert!(!buddy.is_free(t.pfn));
        }
    }

    #[test]
    fn pinned_frames_are_never_moved() {
        let (mut buddy, mut frames, mut procs) = build(16, &[2, 4], &[0, 6]);
        compact(&mut buddy, &mut frames, &mut procs);
        assert_eq!(frames.state(Pfn::new(0)), FrameState::Pinned);
        assert_eq!(frames.state(Pfn::new(6)), FrameState::Pinned);
        assert!(!buddy.is_free(Pfn::new(0)));
        assert!(!buddy.is_free(Pfn::new(6)));
    }

    #[test]
    fn direct_compaction_stops_at_the_target_order() {
        // 1024 frames: movable pages at every 8th frame of the bottom
        // 256, pins at every 32nd frame of the top 768 — so no free
        // order-5 (32-page) block exists anywhere until the bottom gets
        // evacuated a little.
        let movable: Vec<u64> = (4..256).step_by(8).collect();
        let pinned: Vec<u64> = (256..1024).step_by(32).collect();
        let (mut buddy, mut frames, mut procs) = build(1024, &movable, &pinned);
        assert!(buddy.largest_free_order().unwrap() < 5);

        let partial = compact_with(
            &mut buddy,
            &mut frames,
            &mut procs,
            CompactionControl::until_order(5),
        );
        assert!(buddy.largest_free_order().unwrap() >= 5, "target reached");
        assert!(
            partial.migrated < movable.len() as u64 / 2,
            "must stop early ({} migrations), not evacuate everything",
            partial.migrated
        );
        buddy.check_invariants();
    }

    #[test]
    fn migration_preserves_run_order() {
        // A 16-page movable run in a sparse pageblock must still be a
        // contiguous ascending run after compaction moves it (the
        // ascending-batch free scanner).
        let movable: Vec<u64> = (8..24).collect();
        let (mut buddy, mut frames, mut procs) = build(1024, &movable, &[]);
        // Occupy the run's own frames' neighborhood lightly; density is
        // 16/512 so the block is a migration source.
        compact_with(&mut buddy, &mut frames, &mut procs, CompactionControl::default());
        let proc = procs.get(&Asid(1)).unwrap();
        let first = proc.translate(Vpn::new(0x1000)).unwrap().pfn;
        for i in 0..16u64 {
            let t = proc.translate(Vpn::new(0x1000 + i)).unwrap();
            assert_eq!(
                t.pfn,
                first.offset(i),
                "page {i} broke the run after migration"
            );
        }
        buddy.check_invariants();
    }

    #[test]
    fn dense_pageblocks_are_not_evacuated() {
        // Fill most of the first pageblock with a movable run: density
        // 0.875 > limit, so compaction must leave it alone even though
        // the pages are movable.
        let movable: Vec<u64> = (0..448).collect();
        let (mut buddy, mut frames, mut procs) = build(1024, &movable, &[]);
        let stats = compact_with(&mut buddy, &mut frames, &mut procs, CompactionControl::default());
        assert_eq!(stats.migrated, 0, "dense block must be skipped");
        let proc = procs.get(&Asid(1)).unwrap();
        assert_eq!(proc.translate(Vpn::new(0x1000)).unwrap().pfn, Pfn::new(0));
    }

    #[test]
    fn sliced_compaction_respects_migration_budget() {
        let allocated: Vec<u64> = (0..32).step_by(2).collect();
        let (mut buddy, mut frames, mut procs) = build(1024, &allocated, &[]);
        let stats = compact_with(&mut buddy, &mut frames, &mut procs, CompactionControl::slice(3));
        assert_eq!(stats.migrated, 3);
        assert!(stats.aborted, "the budget cut the pass short");
        buddy.check_invariants();
    }

    #[test]
    fn compaction_of_already_compact_memory_is_a_noop() {
        // Pages at the very top already: nothing below them is worth moving.
        let (mut buddy, mut frames, mut procs) = build(16, &[14, 15], &[]);
        let stats = compact(&mut buddy, &mut frames, &mut procs);
        assert_eq!(stats.migrated, 0);
        let proc = procs.get(&Asid(1)).unwrap();
        assert_eq!(proc.translate(Vpn::new(0x1000)).unwrap().pfn, Pfn::new(14));
    }

    #[test]
    fn compaction_with_no_free_memory_is_a_noop() {
        let allocated: Vec<u64> = (0..16).collect();
        let (mut buddy, mut frames, mut procs) = build(16, &allocated, &[]);
        assert_eq!(buddy.free_frames(), 0);
        let stats = compact(&mut buddy, &mut frames, &mut procs);
        assert_eq!(stats.migrated, 0);
    }

    #[test]
    fn repeated_compaction_is_idempotent() {
        let (mut buddy, mut frames, mut procs) = build(1024, &[0, 5, 10, 15, 20], &[]);
        compact(&mut buddy, &mut frames, &mut procs);
        let frag = buddy.fragmentation_index();
        let stats = compact(&mut buddy, &mut frames, &mut procs);
        assert_eq!(stats.migrated, 0, "second pass has nothing to do");
        assert_eq!(buddy.fragmentation_index(), frag);
        buddy.check_invariants();
    }
}
