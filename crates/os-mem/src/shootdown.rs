//! TLB-shootdown event plumbing.
//!
//! Real kernels follow every page-table mutation with an IPI-driven TLB
//! shootdown (`invlpg` on each CPU whose TLB may cache the old
//! translation). The simulator's kernel mutates page tables in four
//! places — compaction migration, `munmap`/reclaim unmapping, THP
//! splitting, and post-split puncturing — and each must reach the TLB
//! hierarchy *and* the walker's MMU page-walk caches, or coalesced
//! entries keep translating to freed or re-owned frames (paper §4.1.5
//! discusses exactly this invalidation traffic).
//!
//! The [`ShootdownLog`] is disabled by default and costs one branch per
//! mutation site; enabling it (the differential checker does) records a
//! [`ShootdownEvent`] per affected virtual page, including the physical
//! addresses of the page-table entries a walk of that page would have
//! read *before* the mutation — the material a consumer needs to
//! invalidate per-VPN walker cache state instead of flushing wholesale.

use crate::addr::{Asid, Pfn, PhysAddr, Vpn};
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};

/// Which kernel mutation triggered the shootdown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShootdownKind {
    /// Compaction migrated the page to a new frame.
    Migrate,
    /// The page was unmapped (`munmap`, process exit).
    Unmap,
    /// A 2MB superpage was split into base pages (translation unchanged,
    /// but the superpage leaf — and the TLB entries caching it — is gone).
    SuperSplit,
    /// Post-split puncturing reclaimed and refaulted the page onto a
    /// different frame (paper §3.2.3).
    Puncture,
    /// Page-cache reclaim evicted the (clean, file-backed) page.
    Reclaim,
}

/// One per-VPN shootdown: the virtual page whose cached translation died,
/// plus enough context for a consumer to fix per-VPN hardware state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShootdownEvent {
    /// Address space the mutation happened in.
    pub asid: Asid,
    /// The virtual page whose translation changed.
    pub vpn: Vpn,
    /// What happened.
    pub kind: ShootdownKind,
    /// Physical addresses of the page-table entries a walk of `vpn`
    /// read *before* the mutation, root first (empty if the page was
    /// unmapped already, or when capturing was skipped).
    pub entry_addrs: Vec<PhysAddr>,
    /// Frame the page mapped to before the mutation, if any.
    pub old_pfn: Option<Pfn>,
    /// Frame the page maps to after the mutation, if still mapped.
    pub new_pfn: Option<Pfn>,
}

/// Accumulates [`ShootdownEvent`]s between drains. Disabled by default:
/// the perf-path kernel pays one `is_enabled` branch per mutation site
/// and never allocates.
#[derive(Clone, Debug, Default)]
pub struct ShootdownLog {
    enabled: bool,
    events: Vec<ShootdownEvent>,
}

impl ShootdownLog {
    /// A disabled (zero-cost) log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether events are being recorded. Mutation sites guard their
    /// pre-mutation walks with this so the disabled path stays free.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op while disabled).
    pub fn record(&mut self, event: ShootdownEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Drains every recorded event, oldest first.
    pub fn take(&mut self) -> Vec<ShootdownEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events currently pending.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Snapshot for ShootdownKind {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            ShootdownKind::Migrate => 0,
            ShootdownKind::Unmap => 1,
            ShootdownKind::SuperSplit => 2,
            ShootdownKind::Puncture => 3,
            ShootdownKind::Reclaim => 4,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(ShootdownKind::Migrate),
            1 => Ok(ShootdownKind::Unmap),
            2 => Ok(ShootdownKind::SuperSplit),
            3 => Ok(ShootdownKind::Puncture),
            4 => Ok(ShootdownKind::Reclaim),
            b => Err(SnapshotError(format!("invalid ShootdownKind tag {b:#x}"))),
        }
    }
}

impl Snapshot for ShootdownEvent {
    fn encode(&self, enc: &mut Enc) {
        self.asid.encode(enc);
        self.vpn.encode(enc);
        self.kind.encode(enc);
        self.entry_addrs.encode(enc);
        self.old_pfn.encode(enc);
        self.new_pfn.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            asid: Asid::decode(dec)?,
            vpn: Vpn::decode(dec)?,
            kind: ShootdownKind::decode(dec)?,
            entry_addrs: Vec::decode(dec)?,
            old_pfn: Option::decode(dec)?,
            new_pfn: Option::decode(dec)?,
        })
    }
}

impl Snapshot for ShootdownLog {
    fn encode(&self, enc: &mut Enc) {
        enc.bool(self.enabled);
        self.events.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self { enabled: dec.bool()?, events: Vec::decode(dec)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(vpn: u64) -> ShootdownEvent {
        ShootdownEvent {
            asid: Asid(1),
            vpn: Vpn::new(vpn),
            kind: ShootdownKind::Migrate,
            entry_addrs: vec![PhysAddr::new(0x1000)],
            old_pfn: Some(Pfn::new(5)),
            new_pfn: Some(Pfn::new(9)),
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = ShootdownLog::new();
        assert!(!log.is_enabled());
        log.record(event(1));
        assert!(log.is_empty());
        assert!(log.take().is_empty());
    }

    #[test]
    fn enabled_log_accumulates_and_drains_in_order() {
        let mut log = ShootdownLog::new();
        log.enable();
        log.record(event(1));
        log.record(event(2));
        assert_eq!(log.len(), 2);
        let events: Vec<u64> = log.take().iter().map(|e| e.vpn.raw()).collect();
        assert_eq!(events, vec![1, 2]);
        assert!(log.is_empty(), "take drains");
        log.record(event(3));
        assert_eq!(log.len(), 1, "stays enabled after take");
    }
}
