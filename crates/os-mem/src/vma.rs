//! Virtual memory areas and per-process address-space layout.
//!
//! The address space hands out virtual ranges with a bump allocator.
//! Anonymous regions of at least 2MB are aligned to 2MB boundaries when
//! requested, mirroring the alignment Linux gives THP-eligible regions
//! (a superpage must be naturally aligned in both virtual and physical
//! memory, paper §2.2).

use crate::addr::{Vpn, SUPERPAGE_PAGES};
use crate::error::{MemError, MemResult};
use crate::page_table::PteFlags;
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use std::collections::BTreeMap;

/// What backs a virtual memory area.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmaKind {
    /// Anonymous memory (malloc/heap); THS-eligible (paper §6.1).
    Anonymous,
    /// File-backed memory; never a THS superpage candidate (paper §6.1).
    FileBacked,
}

/// One contiguous virtual memory area.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Vma {
    /// First virtual page.
    pub start: Vpn,
    /// Length in pages.
    pub pages: u64,
    /// Backing kind.
    pub kind: VmaKind,
    /// Page attribute bits applied to every mapping in the area.
    pub flags: PteFlags,
}

impl Vma {
    /// One-past-the-end virtual page.
    pub fn end(&self) -> Vpn {
        self.start.offset(self.pages)
    }

    /// True when `vpn` falls inside the area.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start && vpn < self.end()
    }
}

/// First virtual page handed out to user mappings (skip the null region).
const USER_BASE_VPN: u64 = 0x1000;

/// The per-process virtual address-space layout.
///
/// ```
/// use colt_os_mem::vma::{AddressSpace, VmaKind};
/// use colt_os_mem::page_table::PteFlags;
/// let mut space = AddressSpace::new(1 << 27);
/// let vma = space.reserve(100, VmaKind::Anonymous, PteFlags::user_data())?;
/// assert_eq!(vma.pages, 100);
/// assert!(space.find(vma.start).is_some());
/// # Ok::<(), colt_os_mem::error::MemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    next_vpn: u64,
    limit_vpn: u64,
}

impl AddressSpace {
    /// Creates an address space able to hold `limit_pages` mapped pages
    /// of layout (the virtual span, not a physical budget).
    pub fn new(limit_pages: u64) -> Self {
        Self {
            vmas: BTreeMap::new(),
            next_vpn: USER_BASE_VPN,
            limit_vpn: USER_BASE_VPN + limit_pages,
        }
    }

    /// Reserves a fresh area of `pages` virtual pages.
    ///
    /// Anonymous areas of at least one superpage are aligned to 512 pages
    /// so THS has a chance to back them with aligned 2MB frames.
    ///
    /// # Errors
    /// [`MemError::ZeroSizedRequest`] for empty requests and
    /// [`MemError::OutOfVirtualSpace`] when the layout region is full.
    pub fn reserve(&mut self, pages: u64, kind: VmaKind, flags: PteFlags) -> MemResult<Vma> {
        self.reserve_hinted(pages, kind, flags, kind == VmaKind::Anonymous)
    }

    /// [`AddressSpace::reserve`] with an explicit alignment hint: the
    /// memory-management policy decides whether a large area gets a
    /// superpage-aligned start (a THP-hostile policy withholds it, so the
    /// region can never be backed — or collapsed — hugely).
    ///
    /// # Errors
    /// As [`AddressSpace::reserve`].
    pub fn reserve_hinted(
        &mut self,
        pages: u64,
        kind: VmaKind,
        flags: PteFlags,
        huge_align: bool,
    ) -> MemResult<Vma> {
        if pages == 0 {
            return Err(MemError::ZeroSizedRequest);
        }
        let mut start = self.next_vpn;
        if huge_align && pages >= SUPERPAGE_PAGES {
            start = (start + SUPERPAGE_PAGES - 1) & !(SUPERPAGE_PAGES - 1);
        }
        let end = start
            .checked_add(pages)
            .ok_or(MemError::OutOfVirtualSpace { requested_pages: pages })?;
        if end > self.limit_vpn {
            return Err(MemError::OutOfVirtualSpace { requested_pages: pages });
        }
        let vma = Vma { start: Vpn::new(start), pages, kind, flags };
        self.vmas.insert(start, vma);
        // Leave a one-page guard gap between areas: distinct mappings are
        // not virtually adjacent in practice, so contiguity runs cannot
        // span separate allocations.
        self.next_vpn = end + 1;
        Ok(vma)
    }

    /// Removes the area starting exactly at `start`.
    ///
    /// # Errors
    /// [`MemError::NotAllocationStart`] when no area starts there.
    pub fn remove(&mut self, start: Vpn) -> MemResult<Vma> {
        self.vmas
            .remove(&start.raw())
            .ok_or(MemError::NotAllocationStart { vpn: start })
    }

    /// The area containing `vpn`, if any.
    pub fn find(&self, vpn: Vpn) -> Option<&Vma> {
        self.vmas
            .range(..=vpn.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vpn))
    }

    /// Iterates areas in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// True when no areas exist.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Total mapped layout size in pages.
    pub fn total_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.pages).sum()
    }
}

impl Snapshot for VmaKind {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            VmaKind::Anonymous => 0,
            VmaKind::FileBacked => 1,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(VmaKind::Anonymous),
            1 => Ok(VmaKind::FileBacked),
            b => Err(SnapshotError(format!("invalid VmaKind tag {b:#x}"))),
        }
    }
}

impl Snapshot for Vma {
    fn encode(&self, enc: &mut Enc) {
        self.start.encode(enc);
        enc.u64(self.pages);
        self.kind.encode(enc);
        self.flags.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            start: Vpn::decode(dec)?,
            pages: dec.u64()?,
            kind: VmaKind::decode(dec)?,
            flags: PteFlags::decode(dec)?,
        })
    }
}

impl Snapshot for AddressSpace {
    fn encode(&self, enc: &mut Enc) {
        self.vmas.encode(enc);
        enc.u64(self.next_vpn);
        enc.u64(self.limit_vpn);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            vmas: BTreeMap::decode(dec)?,
            next_vpn: dec.u64()?,
            limit_vpn: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(1 << 24)
    }

    #[test]
    fn reserve_bumps_and_finds() {
        let mut s = space();
        let a = s.reserve(10, VmaKind::Anonymous, PteFlags::user_data()).unwrap();
        let b = s.reserve(5, VmaKind::FileBacked, PteFlags::user_data()).unwrap();
        assert_eq!(b.start, a.end().next(), "one-page guard gap between areas");
        assert_eq!(s.find(a.start.offset(9)).unwrap().start, a.start);
        assert_eq!(s.find(b.start).unwrap().kind, VmaKind::FileBacked);
        assert_eq!(s.total_pages(), 15);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn large_anonymous_areas_are_superpage_aligned() {
        let mut s = space();
        s.reserve(3, VmaKind::Anonymous, PteFlags::user_data()).unwrap();
        let big = s.reserve(1024, VmaKind::Anonymous, PteFlags::user_data()).unwrap();
        assert!(big.start.is_aligned(9), "THS-eligible area must be 2MB aligned");
    }

    #[test]
    fn large_file_backed_areas_are_not_aligned() {
        let mut s = space();
        s.reserve(3, VmaKind::FileBacked, PteFlags::user_data()).unwrap();
        let big = s.reserve(1024, VmaKind::FileBacked, PteFlags::user_data()).unwrap();
        assert!(!big.start.is_aligned(9));
    }

    #[test]
    fn zero_request_is_rejected() {
        let mut s = space();
        assert_eq!(
            s.reserve(0, VmaKind::Anonymous, PteFlags::empty()),
            Err(MemError::ZeroSizedRequest)
        );
    }

    #[test]
    fn exhausting_virtual_space_errors() {
        let mut s = AddressSpace::new(100);
        s.reserve(60, VmaKind::FileBacked, PteFlags::empty()).unwrap();
        let err = s.reserve(60, VmaKind::FileBacked, PteFlags::empty()).unwrap_err();
        assert!(matches!(err, MemError::OutOfVirtualSpace { requested_pages: 60 }));
    }

    #[test]
    fn remove_requires_exact_start() {
        let mut s = space();
        let a = s.reserve(10, VmaKind::Anonymous, PteFlags::empty()).unwrap();
        assert!(s.remove(a.start.offset(1)).is_err());
        assert_eq!(s.remove(a.start).unwrap(), a);
        assert!(s.find(a.start).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn find_outside_any_area_is_none() {
        let mut s = space();
        let a = s.reserve(4, VmaKind::Anonymous, PteFlags::empty()).unwrap();
        assert!(s.find(a.end()).is_none());
        assert!(s.find(Vpn::new(0)).is_none());
    }
}
