//! Pluggable memory-management policies.
//!
//! CoLT's headline win depends entirely on how much page-level contiguity
//! the OS produces, yet the substrate historically hard-coded one
//! Linux-2.6.38-era policy. Following eBPF-mm (arXiv 2409.11220), every
//! policy-relevant decision the kernel makes — THP allocation, khugepaged
//! collapse eligibility, compaction triggering and budgets, reclaim victim
//! selection, allocation contiguity hints, and VPN→PFN placement — now
//! flows through the [`MmPolicy`] trait, making OS policy a first-class
//! simulated axis.
//!
//! Policies are a closed set named by [`PolicyKind`] so configurations
//! stay `Copy`, comparable, and snapshot-codable. [`DefaultPolicy`]
//! reproduces the historical behavior *byte-identically*: every hook
//! returns exactly the value the kernel previously hard-coded, so all
//! headline tables are unchanged.

use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use crate::vma::VmaKind;
use std::fmt;
use std::str::FromStr;

/// Verdict for a THP-eligible region at allocation/fault time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThpDecision {
    /// Back the region with a superpage now (the historical behavior).
    Grant,
    /// Use base pages now, but queue the region for a deferred
    /// khugepaged-style collapse (Linux's `madvise`/`defer` THP modes).
    Defer,
    /// Base pages only; the region is never queued for collapse.
    Deny,
}

/// Scan direction for reclaim victim selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReclaimOrder {
    /// Evict clean file pages lowest-PFN-first (the historical behavior,
    /// which clears the low frames compaction wants to migrate into).
    LowestPfnFirst,
    /// Evict highest-PFN-first, sparing the low frames and leaving holes
    /// where the buddy allocator carves its next runs.
    HighestPfnFirst,
}

/// VPN→PFN placement for multi-frame base-page runs and PCP refills.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Consecutive VPNs receive consecutive frames of the run — what the
    /// buddy allocator's contiguous blocks naturally produce.
    Linear,
    /// Consecutive VPNs receive an interleaved permutation of the run's
    /// frames (see [`interleave`]), deterministically severing VPN→PFN
    /// adjacency even though physical memory itself stays contiguous.
    Interleaved,
}

/// Maps run-local index `i` (of `n`) to the frame offset used under
/// [`Placement::Interleaved`]: the first half of the VPNs take the odd
/// frame offsets in order, the second half the even ones. A bijection on
/// `0..n`, so a run is still fully consumed — but no two consecutive VPNs
/// ever land on adjacent frames once `n >= 4` (for `n <= 3` no such
/// permutation exists).
pub fn interleave(i: u64, n: u64) -> u64 {
    debug_assert!(i < n);
    let odds = n / 2;
    if i < odds { 2 * i + 1 } else { 2 * (i - odds) }
}

/// The pluggable memory-management policy.
///
/// Hook defaults all reproduce the kernel's historical hard-coded choices,
/// so a policy only overrides the decisions it cares about. Every hook is
/// consulted with the *configured* value where one exists; returning it
/// unchanged keeps that axis at the baseline.
pub trait MmPolicy: Sync {
    /// The policy's CLI/JSON name.
    fn name(&self) -> &'static str;

    /// Per-VMA THP verdict. Consulted only for regions that are already
    /// THP-eligible (THS enabled, anonymous backing).
    fn thp_decision(&self, _kind: VmaKind) -> ThpDecision {
        ThpDecision::Grant
    }

    /// Whether khugepaged may collapse a deferred region of this backing.
    fn collapse_eligible(&self, _kind: VmaKind) -> bool {
        true
    }

    /// Whether the background compaction daemon runs a slice this tick.
    /// `scattered` reports the small-block free-space heuristic; `frag`
    /// and `frag_threshold` are the buddy fragmentation index and the
    /// configured trigger threshold.
    fn background_compaction(
        &self,
        ths_enabled: bool,
        scattered: bool,
        frag: f64,
        frag_threshold: f64,
    ) -> bool {
        // Background compaction exists to serve high-order (THP) demand:
        // with THS off it almost never wakes up (paper §6.2).
        ths_enabled && (scattered || frag > frag_threshold)
    }

    /// Migration budget for one background compaction slice.
    fn background_slice(&self, nr_frames: u64) -> u64 {
        (nr_frames / 32).max(64)
    }

    /// Whether direct (allocation-triggered) compaction may run at all.
    fn direct_compaction(&self) -> bool {
        true
    }

    /// Scale factor applied to direct-compaction migration budgets.
    fn compaction_budget_factor(&self) -> u64 {
        1
    }

    /// Block-order cap for ordinary (non-THP) user allocations — the
    /// allocation contiguity hint.
    fn alloc_chunk_order(&self, configured: u32) -> u32 {
        configured
    }

    /// Frames per PCP refill batch (demand-fault contiguity hint).
    fn pcp_batch(&self, default_batch: u64) -> u64 {
        default_batch
    }

    /// Effective free-memory watermark below which the pressure daemon
    /// splits superpages.
    fn split_watermark(&self, configured: f64) -> f64 {
        configured
    }

    /// Whether pressure splits puncture the residual 512-page run.
    fn split_puncture(&self, configured: bool) -> bool {
        configured
    }

    /// Reclaim victim scan direction.
    fn reclaim_order(&self) -> ReclaimOrder {
        ReclaimOrder::LowestPfnFirst
    }

    /// VPN→PFN placement for base-page runs and PCP refill order.
    fn placement(&self) -> Placement {
        Placement::Linear
    }

    /// Whether large anonymous reservations get superpage-aligned starts.
    fn huge_align(&self, kind: VmaKind) -> bool {
        kind == VmaKind::Anonymous
    }

    /// Chunk cap (pages) for pinned `memhog`-style allocations.
    fn memhog_chunk_pages(&self, configured: u64) -> u64 {
        configured
    }
}

/// The historical policy: every hook returns the configured or hard-coded
/// baseline value, byte-identically reproducing pre-policy behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultPolicy;

impl MmPolicy for DefaultPolicy {
    fn name(&self) -> &'static str {
        "default"
    }
}

/// Profile-guided contiguity maximizer: grants every huge page, requests
/// maximal allocation chunks, compacts earlier and with bigger budgets,
/// splits later and never punctures — the OS a CoLT designer would wish
/// for.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyContigPolicy;

impl MmPolicy for GreedyContigPolicy {
    fn name(&self) -> &'static str {
        "greedy_contig"
    }

    fn background_compaction(
        &self,
        _ths_enabled: bool,
        scattered: bool,
        frag: f64,
        frag_threshold: f64,
    ) -> bool {
        // Compact for contiguity's own sake (even with THS off) and at
        // half the configured fragmentation trigger.
        scattered || frag > frag_threshold * 0.5
    }

    fn background_slice(&self, nr_frames: u64) -> u64 {
        (nr_frames / 16).max(128)
    }

    fn compaction_budget_factor(&self) -> u64 {
        2
    }

    fn alloc_chunk_order(&self, configured: u32) -> u32 {
        // Hand out whole pageblocks when the request is big enough.
        configured.max(9)
    }

    fn pcp_batch(&self, default_batch: u64) -> u64 {
        default_batch * 2
    }

    fn split_watermark(&self, configured: f64) -> f64 {
        // Tolerate twice the pressure before splitting superpages.
        configured * 0.5
    }

    fn split_puncture(&self, _configured: bool) -> bool {
        false
    }

    fn memhog_chunk_pages(&self, configured: u64) -> u64 {
        // Pin interference memory in few large chunks so it fragments
        // the remaining space as little as possible.
        configured * 8
    }
}

/// Contiguity destroyer: denies huge pages, forbids compaction, allocates
/// single pages placed via an interleaved permutation, and scatters pinned
/// interference — a worst case for any coalesced TLB.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdversarialPolicy;

impl MmPolicy for AdversarialPolicy {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    fn thp_decision(&self, _kind: VmaKind) -> ThpDecision {
        ThpDecision::Deny
    }

    fn collapse_eligible(&self, _kind: VmaKind) -> bool {
        false
    }

    fn background_compaction(&self, _: bool, _: bool, _: f64, _: f64) -> bool {
        false
    }

    fn direct_compaction(&self) -> bool {
        false
    }

    fn alloc_chunk_order(&self, _configured: u32) -> u32 {
        0
    }

    fn pcp_batch(&self, default_batch: u64) -> u64 {
        (default_batch / 4).max(1)
    }

    fn split_watermark(&self, configured: f64) -> f64 {
        (configured * 4.0).min(0.5)
    }

    fn reclaim_order(&self) -> ReclaimOrder {
        ReclaimOrder::HighestPfnFirst
    }

    fn placement(&self) -> Placement {
        Placement::Interleaved
    }

    fn huge_align(&self, _kind: VmaKind) -> bool {
        false
    }

    fn memhog_chunk_pages(&self, _configured: u64) -> u64 {
        1
    }
}

/// Base pages only: every THP decision is denied and nothing is queued
/// for collapse; all other axes stay at the baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoThpPolicy;

impl MmPolicy for NoThpPolicy {
    fn name(&self) -> &'static str {
        "no_thp"
    }

    fn thp_decision(&self, _kind: VmaKind) -> ThpDecision {
        ThpDecision::Deny
    }

    fn collapse_eligible(&self, _kind: VmaKind) -> bool {
        false
    }
}

/// Linux's `defer` THP mode: base pages at fault time, with the region
/// queued for a deferred khugepaged collapse once it is fully populated.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeferThpPolicy;

impl MmPolicy for DeferThpPolicy {
    fn name(&self) -> &'static str {
        "defer_thp"
    }

    fn thp_decision(&self, _kind: VmaKind) -> ThpDecision {
        ThpDecision::Defer
    }
}

static DEFAULT: DefaultPolicy = DefaultPolicy;
static GREEDY_CONTIG: GreedyContigPolicy = GreedyContigPolicy;
static ADVERSARIAL: AdversarialPolicy = AdversarialPolicy;
static NO_THP: NoThpPolicy = NoThpPolicy;
static DEFER_THP: DeferThpPolicy = DeferThpPolicy;

/// The closed set of shipped policies. Keeping the name (rather than a
/// trait object) in [`crate::kernel::KernelConfig`] keeps configurations
/// `Copy`, comparable, hashable into preparation keys, and snapshotable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PolicyKind {
    /// [`DefaultPolicy`].
    #[default]
    Default,
    /// [`GreedyContigPolicy`].
    GreedyContig,
    /// [`AdversarialPolicy`].
    Adversarial,
    /// [`NoThpPolicy`].
    NoThp,
    /// [`DeferThpPolicy`].
    DeferThp,
}

impl PolicyKind {
    /// Every shipped policy, in sweep order.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Default,
            PolicyKind::GreedyContig,
            PolicyKind::Adversarial,
            PolicyKind::NoThp,
            PolicyKind::DeferThp,
        ]
    }

    /// The policy's CLI/JSON name.
    pub fn name(self) -> &'static str {
        self.policy().name()
    }

    /// The policy implementation behind the name.
    pub fn policy(self) -> &'static dyn MmPolicy {
        match self {
            PolicyKind::Default => &DEFAULT,
            PolicyKind::GreedyContig => &GREEDY_CONTIG,
            PolicyKind::Adversarial => &ADVERSARIAL,
            PolicyKind::NoThp => &NO_THP,
            PolicyKind::DeferThp => &DEFER_THP,
        }
    }

    /// The valid names, comma-separated — for error messages.
    pub fn valid_names() -> String {
        Self::all()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Self::all()
            .into_iter()
            .find(|k| k.name() == lower)
            .ok_or_else(|| {
                format!("unknown policy '{s}' (valid: {})", Self::valid_names())
            })
    }
}

impl Snapshot for PolicyKind {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            PolicyKind::Default => 0,
            PolicyKind::GreedyContig => 1,
            PolicyKind::Adversarial => 2,
            PolicyKind::NoThp => 3,
            PolicyKind::DeferThp => 4,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(PolicyKind::Default),
            1 => Ok(PolicyKind::GreedyContig),
            2 => Ok(PolicyKind::Adversarial),
            3 => Ok(PolicyKind::NoThp),
            4 => Ok(PolicyKind::DeferThp),
            b => Err(SnapshotError(format!("invalid PolicyKind tag {b:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: PolicyKind) -> PolicyKind {
        let mut enc = Enc::new();
        kind.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        let back = PolicyKind::decode(&mut dec).expect("decode");
        dec.finish().expect("fully consumed");
        back
    }

    #[test]
    fn names_parse_back_to_their_kind() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.name().parse::<PolicyKind>(), Ok(kind));
            // Parsing is case-insensitive, as CLI flags should be.
            assert_eq!(kind.name().to_ascii_uppercase().parse::<PolicyKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn unknown_name_lists_the_valid_policies() {
        let err = "bogus".parse::<PolicyKind>().unwrap_err();
        assert!(err.contains("unknown policy 'bogus'"), "{err}");
        for kind in PolicyKind::all() {
            assert!(err.contains(kind.name()), "{err} missing {}", kind.name());
        }
    }

    #[test]
    fn snapshot_roundtrips_every_kind() {
        for kind in PolicyKind::all() {
            assert_eq!(round_trip(kind), kind);
        }
    }

    #[test]
    fn invalid_snapshot_tag_is_rejected() {
        let mut enc = Enc::new();
        enc.u8(0xEE);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert!(PolicyKind::decode(&mut dec).is_err());
    }

    #[test]
    fn default_policy_reproduces_configured_values() {
        let p = PolicyKind::Default.policy();
        assert_eq!(p.thp_decision(VmaKind::Anonymous), ThpDecision::Grant);
        assert!(p.collapse_eligible(VmaKind::Anonymous));
        assert!(p.background_compaction(true, false, 0.5, 0.45));
        assert!(p.background_compaction(true, true, 0.0, 0.45));
        assert!(!p.background_compaction(true, false, 0.4, 0.45));
        assert!(!p.background_compaction(false, true, 1.0, 0.45));
        assert_eq!(p.background_slice(1 << 16), (1u64 << 16) / 32);
        assert_eq!(p.background_slice(128), 64);
        assert!(p.direct_compaction());
        assert_eq!(p.compaction_budget_factor(), 1);
        assert_eq!(p.alloc_chunk_order(6), 6);
        assert_eq!(p.pcp_batch(32), 32);
        assert_eq!(p.split_watermark(0.08), 0.08);
        assert!(p.split_puncture(true));
        assert!(!p.split_puncture(false));
        assert_eq!(p.reclaim_order(), ReclaimOrder::LowestPfnFirst);
        assert_eq!(p.placement(), Placement::Linear);
        assert!(p.huge_align(VmaKind::Anonymous));
        assert!(!p.huge_align(VmaKind::FileBacked));
        assert_eq!(p.memhog_chunk_pages(8), 8);
    }

    #[test]
    fn adversarial_denies_everything_contiguity_shaped() {
        let p = PolicyKind::Adversarial.policy();
        assert_eq!(p.thp_decision(VmaKind::Anonymous), ThpDecision::Deny);
        assert!(!p.collapse_eligible(VmaKind::Anonymous));
        assert!(!p.background_compaction(true, true, 1.0, 0.0));
        assert!(!p.direct_compaction());
        assert_eq!(p.alloc_chunk_order(6), 0);
        assert_eq!(p.placement(), Placement::Interleaved);
        assert!(!p.huge_align(VmaKind::Anonymous));
        assert_eq!(p.memhog_chunk_pages(8), 1);
    }

    #[test]
    fn interleave_is_a_bijection_with_no_adjacent_neighbors() {
        for n in 1..=65u64 {
            let mapped: Vec<u64> = (0..n).map(|i| interleave(i, n)).collect();
            let mut sorted = mapped.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n} not a bijection");
            if n >= 4 {
                for w in mapped.windows(2) {
                    assert_ne!(
                        w[0].abs_diff(w[1]),
                        1,
                        "n={n}: consecutive VPNs map to adjacent frames {w:?}"
                    );
                }
            }
        }
    }
}
