//! `memhog`-style memory fragmentation load (paper §5.1.1).
//!
//! The paper loads the system by running `memhog` to claim 25% or 50% of
//! physical memory alongside each workload. We model it as pinned
//! allocations in many small randomly sized chunks, a configurable share
//! of which are immediately released — leaving scattered holes that
//! fragment the buddy allocator's free lists.

use crate::buddy::PfnRange;
use crate::error::MemResult;
use crate::kernel::Kernel;
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot};
use colt_prng::rngs::StdRng;
use colt_prng::{Rng, SeedableRng};

/// Tuning for the fragmentation load.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MemhogConfig {
    /// Fraction of physical memory to claim, in `[0, 1]`.
    pub fraction: f64,
    /// Chunk sizes are drawn uniformly from `1..=max_chunk_pages`.
    pub max_chunk_pages: u64,
    /// Share of claimed chunks that are immediately released again,
    /// punching holes that fragment the free lists.
    pub release_ratio: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for MemhogConfig {
    fn default() -> Self {
        Self {
            fraction: 0.25,
            max_chunk_pages: 8,
            release_ratio: 0.3,
            seed: 0xC017_0001,
        }
    }
}

/// A running memhog instance holding its pinned memory.
#[derive(Clone, Debug)]
pub struct Memhog {
    held: Vec<PfnRange>,
    claimed_pages: u64,
}

impl Memhog {
    /// Claims memory per `config`. The net held amount is
    /// `fraction * (1 - release_ratio)` of memory, spread across scattered
    /// pinned chunks.
    ///
    /// # Errors
    /// Propagates [`MemError::OutOfMemory`](crate::error::MemError) if the
    /// kernel cannot supply the requested fraction.
    pub fn engage(kernel: &mut Kernel, config: MemhogConfig) -> MemResult<Self> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let target = (kernel.buddy().nr_frames() as f64 * config.fraction) as u64;
        // The memory-management policy shapes the interference: a
        // contiguity-greedy policy pins few large chunks (fragmenting
        // little), an adversarial one pins single pages everywhere.
        let max_chunk = kernel.policy().memhog_chunk_pages(config.max_chunk_pages).max(1);
        let mut held = Vec::new();
        let mut release_later = Vec::new();
        let mut claimed = 0u64;
        while claimed < target {
            let want = rng
                .gen_range(1..=max_chunk)
                .min(target - claimed)
                .max(1);
            let ranges = kernel.allocate_pinned(want)?;
            for r in ranges {
                claimed += r.pages;
                if rng.gen_bool(config.release_ratio) {
                    release_later.push(r);
                } else {
                    held.push(r);
                }
            }
        }
        for r in release_later {
            kernel.free_pinned(r);
        }
        Ok(Self { held, claimed_pages: claimed })
    }

    /// Pages claimed at engage time (held + since released).
    pub fn claimed_pages(&self) -> u64 {
        self.claimed_pages
    }

    /// Pages currently held pinned.
    pub fn held_pages(&self) -> u64 {
        self.held.iter().map(|r| r.pages).sum()
    }

    /// Releases all held memory back to the kernel.
    pub fn release(self, kernel: &mut Kernel) {
        for r in self.held {
            kernel.free_pinned(r);
        }
    }
}

impl Snapshot for Memhog {
    fn encode(&self, enc: &mut Enc) {
        self.held.encode(enc);
        enc.u64(self.claimed_pages);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self { held: Vec::decode(dec)?, claimed_pages: dec.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            nr_frames: 8192,
            ths_enabled: false,
            ..KernelConfig::default()
        })
    }

    #[test]
    fn engage_claims_requested_fraction() {
        let mut k = kernel();
        let hog = Memhog::engage(&mut k, MemhogConfig { fraction: 0.25, ..Default::default() })
            .unwrap();
        assert!(hog.claimed_pages() >= 2048);
        // Held is claimed minus the released share (statistically ~30%).
        assert!(hog.held_pages() < hog.claimed_pages());
        assert_eq!(k.frames().counts().pinned, hog.held_pages());
    }

    #[test]
    fn engage_fragments_free_memory() {
        let mut k = kernel();
        let blocks_before: usize = k.buddy().histogram().counts.iter().sum();
        let small_before: usize = k.buddy().histogram().counts[..5].iter().sum();
        let _hog = Memhog::engage(
            &mut k,
            MemhogConfig { fraction: 0.5, release_ratio: 0.4, ..Default::default() },
        )
        .unwrap();
        let h = k.buddy().histogram();
        let blocks_after: usize = h.counts.iter().sum();
        let small_after: usize = h.counts[..5].iter().sum();
        assert!(blocks_after > blocks_before, "free memory must shatter into more blocks");
        assert!(small_after > small_before, "released holes must appear as small blocks");
    }

    #[test]
    fn release_restores_all_memory() {
        let mut k = kernel();
        let hog =
            Memhog::engage(&mut k, MemhogConfig { fraction: 0.5, ..Default::default() }).unwrap();
        hog.release(&mut k);
        assert_eq!(k.free_frames(), 8192);
        assert_eq!(k.frames().counts().pinned, 0);
        k.buddy().check_invariants();
    }

    #[test]
    fn determinism_same_seed_same_layout() {
        let run = |seed| {
            let mut k = kernel();
            let hog = Memhog::engage(
                &mut k,
                MemhogConfig { fraction: 0.25, seed, ..Default::default() },
            )
            .unwrap();
            (hog.held_pages(), k.buddy().fragmentation_index())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn zero_fraction_claims_nothing() {
        let mut k = kernel();
        let hog = Memhog::engage(&mut k, MemhogConfig { fraction: 0.0, ..Default::default() })
            .unwrap();
        assert_eq!(hog.claimed_pages(), 0);
        assert_eq!(k.free_frames(), 8192);
    }
}
