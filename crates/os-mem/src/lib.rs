//! # colt-os-mem — OS memory-management substrate for the CoLT reproduction
//!
//! This crate models the Linux-era (2.6.38) memory-management machinery
//! whose *side effect* — intermediate page-allocation contiguity — is what
//! CoLT ("Coalesced Large-Reach TLBs", MICRO 2012) exploits:
//!
//! * [`buddy`] — the buddy allocator (paper §3.2.1, Figures 1–2),
//! * [`compaction`] — the memory-compaction daemon (§3.2.2, Figure 3),
//! * [`thp`] — transparent hugepage support (§3.2.3),
//! * [`memhog`] — fragmentation load (§5.1.1),
//! * [`page_table`] — 4-level page tables with walk simulation support,
//! * [`kernel`] — the facade tying it all together,
//! * [`contiguity`] — the paper's contiguity metric and CDFs (§3.1, §6).
//!
//! ## Quick example
//!
//! ```
//! use colt_os_mem::kernel::{Kernel, KernelConfig};
//!
//! # fn main() -> Result<(), colt_os_mem::error::MemError> {
//! let mut kernel = Kernel::new(KernelConfig::ths_on());
//! let asid = kernel.spawn();
//! // A multi-page malloc: the buddy allocator hands back contiguous
//! // frames, which the contiguity scanner then observes.
//! let base = kernel.malloc(asid, 64)?;
//! let report = kernel.scan_contiguity(asid)?;
//! assert!(report.average_contiguity() >= 1.0);
//! let _ = base;
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod buddy;
pub mod compaction;
pub mod contiguity;
pub mod error;
pub mod faults;
pub mod frames;
pub mod kernel;
pub mod memhog;
pub mod page_table;
pub mod policy;
pub mod process;
pub mod shootdown;
pub mod snapshot;
pub mod thp;
pub mod vma;

pub use addr::{Asid, Pfn, PhysAddr, VirtAddr, Vpn};
pub use contiguity::ContiguityReport;
pub use error::{MemError, MemResult};
pub use faults::{DeliveryFault, FaultConfig, FaultPlan};
pub use kernel::{Kernel, KernelConfig};
pub use policy::{MmPolicy, PolicyKind};
pub use snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
