//! Address and page-number newtypes shared by the whole simulator.
//!
//! The paper's system is x86-64-like: 4KB base pages, 2MB superpages,
//! 8-byte PTEs, and 64-byte cache lines (so a single cache line holds the
//! PTEs for eight consecutive virtual pages — the unit over which CoLT's
//! coalescing logic operates, paper §4.1.4).

use std::fmt;

/// log2 of the base page size (4KB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Size of one page-table entry in bytes.
pub const PTE_SIZE: u64 = 8;
/// Cache-line size in bytes.
pub const CACHE_LINE_SIZE: u64 = 64;
/// Number of PTEs that fit in one cache line; the maximum CoLT coalescing
/// window examined after a page walk (paper §4.1.4).
pub const PTES_PER_LINE: u64 = CACHE_LINE_SIZE / PTE_SIZE;
/// Number of base pages per 2MB superpage.
pub const SUPERPAGE_PAGES: u64 = 512;
/// Superpage size in bytes (2MB).
pub const SUPERPAGE_SIZE: u64 = SUPERPAGE_PAGES * PAGE_SIZE;
/// Number of entries in one radix page-table node (9 index bits).
pub const PT_FANOUT: u64 = 512;
/// Number of radix levels in the page table (x86-64 4-level paging).
pub const PT_LEVELS: usize = 4;

/// A virtual page number.
///
/// ```
/// use colt_os_mem::addr::{Vpn, PAGE_SIZE};
/// let v = Vpn::new(10);
/// assert_eq!(v.addr().raw(), 10 * PAGE_SIZE);
/// assert_eq!(v.offset(3), Vpn::new(13));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

/// A physical page-frame number.
///
/// ```
/// use colt_os_mem::addr::Pfn;
/// let p = Pfn::new(58);
/// assert_eq!(p.offset(2), Pfn::new(60));
/// assert_eq!(p.distance_from(Pfn::new(50)), Some(8));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(u64);

/// A byte-granularity virtual address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A byte-granularity physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

macro_rules! page_number_impl {
    ($ty:ident, $addr:ident) => {
        impl $ty {
            /// Wraps a raw page number.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw page number.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the page number `delta` pages after `self`.
            ///
            /// # Panics
            /// Panics on overflow (page numbers are bounded well below
            /// `u64::MAX` in every simulated configuration).
            #[inline]
            pub fn offset(self, delta: u64) -> Self {
                Self(self.0.checked_add(delta).expect("page number overflow"))
            }

            /// Returns the immediately following page number.
            #[inline]
            pub fn next(self) -> Self {
                self.offset(1)
            }

            /// Returns `self - other` if non-negative.
            #[inline]
            pub fn distance_from(self, other: Self) -> Option<u64> {
                self.0.checked_sub(other.0)
            }

            /// True when `other` is exactly the page after `self`.
            #[inline]
            pub fn is_followed_by(self, other: Self) -> bool {
                other.0 == self.0.wrapping_add(1)
            }

            /// The first byte address of this page.
            #[inline]
            pub const fn addr(self) -> $addr {
                $addr(self.0 << PAGE_SHIFT)
            }

            /// Rounds down to the enclosing naturally aligned block of
            /// `2^order` pages.
            #[inline]
            pub const fn align_down(self, order: u32) -> Self {
                Self(self.0 & !((1u64 << order) - 1))
            }

            /// True when this page number is aligned to `2^order` pages.
            #[inline]
            pub const fn is_aligned(self, order: u32) -> bool {
                self.0 & ((1u64 << order) - 1) == 0
            }
        }

        impl From<u64> for $ty {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            fn from(v: $ty) -> u64 {
                v.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($ty), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

page_number_impl!(Vpn, VirtAddr);
page_number_impl!(Pfn, PhysAddr);

macro_rules! byte_addr_impl {
    ($ty:ident, $page:ident) => {
        impl $ty {
            /// Wraps a raw byte address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw byte address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The page containing this address.
            #[inline]
            pub const fn page(self) -> $page {
                $page(self.0 >> PAGE_SHIFT)
            }

            /// Byte offset within the containing page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The cache line number containing this address.
            #[inline]
            pub const fn cache_line(self) -> u64 {
                self.0 / CACHE_LINE_SIZE
            }

            /// Returns the address `delta` bytes after `self`.
            #[inline]
            pub fn offset(self, delta: u64) -> Self {
                Self(self.0.checked_add(delta).expect("address overflow"))
            }
        }

        impl From<u64> for $ty {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            fn from(v: $ty) -> u64 {
                v.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($ty), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

byte_addr_impl!(VirtAddr, Vpn);
byte_addr_impl!(PhysAddr, Pfn);

/// An address-space identifier naming one simulated process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Asid(pub u32);

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_roundtrip_and_arithmetic() {
        let v = Vpn::new(0x1234);
        assert_eq!(v.raw(), 0x1234);
        assert_eq!(u64::from(v), 0x1234);
        assert_eq!(Vpn::from(7u64), Vpn::new(7));
        assert_eq!(v.next(), Vpn::new(0x1235));
        assert_eq!(v.offset(0x10), Vpn::new(0x1244));
        assert!(v.is_followed_by(Vpn::new(0x1235)));
        assert!(!v.is_followed_by(Vpn::new(0x1236)));
    }

    #[test]
    fn pfn_distance() {
        assert_eq!(Pfn::new(60).distance_from(Pfn::new(58)), Some(2));
        assert_eq!(Pfn::new(58).distance_from(Pfn::new(60)), None);
    }

    #[test]
    fn alignment_helpers() {
        let v = Vpn::new(0b1011_0110);
        assert_eq!(v.align_down(3), Vpn::new(0b1011_0000));
        assert!(Vpn::new(512).is_aligned(9));
        assert!(!Vpn::new(513).is_aligned(9));
        assert!(Vpn::new(0).is_aligned(9));
    }

    #[test]
    fn addr_page_decomposition() {
        let a = VirtAddr::new(3 * PAGE_SIZE + 100);
        assert_eq!(a.page(), Vpn::new(3));
        assert_eq!(a.page_offset(), 100);
        assert_eq!(Vpn::new(3).addr(), VirtAddr::new(3 * PAGE_SIZE));
    }

    #[test]
    fn cache_line_of_phys_addr() {
        let a = PhysAddr::new(129);
        assert_eq!(a.cache_line(), 2);
        assert_eq!(PhysAddr::new(63).cache_line(), 0);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PTES_PER_LINE, 8);
        assert_eq!(SUPERPAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(SUPERPAGE_PAGES, 512);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert!(!format!("{}", Vpn::new(0)).is_empty());
        assert!(!format!("{:?}", Pfn::new(0)).is_empty());
        assert!(!format!("{}", Asid(4)).is_empty());
        assert_eq!(format!("{}", Asid(4)), "asid4");
    }

    #[test]
    fn byte_addr_offset() {
        let a = PhysAddr::new(4096);
        assert_eq!(a.offset(64).raw(), 4160);
    }
}
