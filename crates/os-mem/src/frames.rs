//! Physical page-frame database with reverse mapping.
//!
//! Tracks, for every physical frame, whether it is free, a movable
//! user page (with its owner and virtual page — the reverse map the
//! compaction daemon needs to fix page tables after migration), part of
//! a mapped 2MB superpage, or pinned (kernel/unmovable; paper Figure 3:
//! "while most user-level pages are movable, pinned and kernel pages
//! usually are not").

use crate::addr::{Asid, Pfn, Vpn};
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};

/// The state of one physical page frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FrameState {
    /// The frame is on the buddy allocator's free lists.
    #[default]
    Free,
    /// A movable user page; `owner`/`vpn` form the reverse map entry.
    Movable {
        /// Owning address space.
        owner: Asid,
        /// Virtual page mapping this frame.
        vpn: Vpn,
    },
    /// Part of a mapped 2MB superpage; `base_vpn` is the first virtual
    /// page of the superpage. The compaction daemon does not migrate
    /// these (they are relocated only by splitting first).
    Huge {
        /// Owning address space.
        owner: Asid,
        /// First virtual page of the enclosing superpage.
        base_vpn: Vpn,
    },
    /// Pinned or kernel memory the compaction daemon must skip.
    Pinned,
}

impl FrameState {
    /// True for [`FrameState::Movable`].
    pub fn is_movable(&self) -> bool {
        matches!(self, FrameState::Movable { .. })
    }

    /// True for [`FrameState::Free`].
    pub fn is_free(&self) -> bool {
        matches!(self, FrameState::Free)
    }
}

/// Aggregate frame-state counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FrameCounts {
    /// Frames on the free lists.
    pub free: u64,
    /// Movable user frames.
    pub movable: u64,
    /// Frames inside mapped superpages.
    pub huge: u64,
    /// Pinned frames.
    pub pinned: u64,
}

/// The frame database over frames `0..nr_frames`.
///
/// ```
/// use colt_os_mem::frames::{FrameDb, FrameState};
/// use colt_os_mem::addr::{Asid, Pfn, Vpn};
/// let mut db = FrameDb::new(64);
/// db.set(Pfn::new(3), FrameState::Movable { owner: Asid(1), vpn: Vpn::new(100) });
/// assert!(db.state(Pfn::new(3)).is_movable());
/// assert_eq!(db.counts().movable, 1);
/// ```
#[derive(Clone, Debug)]
pub struct FrameDb {
    states: Vec<FrameState>,
    /// Non-free frames per 512-frame pageblock (kept in sync by
    /// [`FrameDb::set`]) — O(1) density checks for the compaction
    /// daemon's pageblock heuristic.
    block_occupancy: Vec<u32>,
}

/// Pageblock granularity of the occupancy cache.
const BLOCK_PAGES: u64 = 512;

impl FrameDb {
    /// Creates a database with all frames free.
    pub fn new(nr_frames: u64) -> Self {
        Self {
            states: vec![FrameState::Free; nr_frames as usize],
            block_occupancy: vec![0; nr_frames.div_ceil(BLOCK_PAGES) as usize],
        }
    }

    /// Number of frames tracked.
    pub fn nr_frames(&self) -> u64 {
        self.states.len() as u64
    }

    /// The state of `pfn`.
    ///
    /// # Panics
    /// Panics if `pfn` is out of range.
    pub fn state(&self, pfn: Pfn) -> FrameState {
        self.states[pfn.raw() as usize]
    }

    /// Sets the state of `pfn`.
    ///
    /// # Panics
    /// Panics if `pfn` is out of range.
    pub fn set(&mut self, pfn: Pfn, state: FrameState) {
        let old = &mut self.states[pfn.raw() as usize];
        let block = (pfn.raw() / BLOCK_PAGES) as usize;
        match (old.is_free(), state.is_free()) {
            (true, false) => self.block_occupancy[block] += 1,
            (false, true) => self.block_occupancy[block] -= 1,
            _ => {}
        }
        *old = state;
    }

    /// Fraction of the 512-frame pageblock containing `pfn` that is
    /// occupied (non-free). O(1) via the occupancy cache.
    pub fn pageblock_density(&self, pfn: Pfn) -> f64 {
        let block = (pfn.raw() / BLOCK_PAGES) as usize;
        let span = BLOCK_PAGES.min(self.nr_frames() - pfn.raw() / BLOCK_PAGES * BLOCK_PAGES);
        f64::from(self.block_occupancy[block]) / span as f64
    }

    /// Marks a whole contiguous run starting at `start`.
    pub fn set_range(&mut self, start: Pfn, pages: u64, mut state_for: impl FnMut(u64) -> FrameState) {
        for i in 0..pages {
            self.set(start.offset(i), state_for(i));
        }
    }

    /// Reverse-map lookup: the `(owner, vpn)` mapping a movable frame.
    pub fn rmap(&self, pfn: Pfn) -> Option<(Asid, Vpn)> {
        match self.state(pfn) {
            FrameState::Movable { owner, vpn } => Some((owner, vpn)),
            _ => None,
        }
    }

    /// Lowest movable frame at or above `from` (the compaction daemon's
    /// migrate scanner walks up from the bottom of memory).
    pub fn first_movable_at_or_above(&self, from: Pfn) -> Option<Pfn> {
        self.states[from.raw() as usize..]
            .iter()
            .position(FrameState::is_movable)
            .map(|off| from.offset(off as u64))
    }

    /// Aggregate counts over all frames.
    pub fn counts(&self) -> FrameCounts {
        let mut c = FrameCounts::default();
        for s in &self.states {
            match s {
                FrameState::Free => c.free += 1,
                FrameState::Movable { .. } => c.movable += 1,
                FrameState::Huge { .. } => c.huge += 1,
                FrameState::Pinned => c.pinned += 1,
            }
        }
        c
    }

    /// Iterates `(pfn, state)` over all frames.
    pub fn iter(&self) -> impl Iterator<Item = (Pfn, FrameState)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, &s)| (Pfn::new(i as u64), s))
    }
}

impl Snapshot for FrameState {
    fn encode(&self, enc: &mut Enc) {
        match self {
            FrameState::Free => enc.u8(0),
            FrameState::Movable { owner, vpn } => {
                enc.u8(1);
                owner.encode(enc);
                vpn.encode(enc);
            }
            FrameState::Huge { owner, base_vpn } => {
                enc.u8(2);
                owner.encode(enc);
                base_vpn.encode(enc);
            }
            FrameState::Pinned => enc.u8(3),
        }
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(FrameState::Free),
            1 => Ok(FrameState::Movable { owner: Asid::decode(dec)?, vpn: Vpn::decode(dec)? }),
            2 => Ok(FrameState::Huge { owner: Asid::decode(dec)?, base_vpn: Vpn::decode(dec)? }),
            3 => Ok(FrameState::Pinned),
            b => Err(SnapshotError(format!("invalid FrameState tag {b:#x}"))),
        }
    }
}

impl Snapshot for FrameDb {
    fn encode(&self, enc: &mut Enc) {
        self.states.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        // The occupancy cache is derived state; rebuild it instead of
        // trusting (and having to cross-check) a stored copy.
        let states = Vec::<FrameState>::decode(dec)?;
        let mut block_occupancy = vec![0u32; states.len().div_ceil(BLOCK_PAGES as usize)];
        for (i, s) in states.iter().enumerate() {
            if !s.is_free() {
                block_occupancy[i / BLOCK_PAGES as usize] += 1;
            }
        }
        Ok(Self { states, block_occupancy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_db_is_all_free() {
        let db = FrameDb::new(16);
        assert_eq!(db.counts(), FrameCounts { free: 16, ..Default::default() });
        assert!(db.state(Pfn::new(0)).is_free());
    }

    #[test]
    fn rmap_returns_owner_and_vpn_for_movable_only() {
        let mut db = FrameDb::new(8);
        db.set(Pfn::new(2), FrameState::Movable { owner: Asid(7), vpn: Vpn::new(99) });
        db.set(Pfn::new(3), FrameState::Pinned);
        db.set(
            Pfn::new(4),
            FrameState::Huge { owner: Asid(7), base_vpn: Vpn::new(512) },
        );
        assert_eq!(db.rmap(Pfn::new(2)), Some((Asid(7), Vpn::new(99))));
        assert_eq!(db.rmap(Pfn::new(3)), None);
        assert_eq!(db.rmap(Pfn::new(4)), None);
    }

    #[test]
    fn first_movable_scans_upward() {
        let mut db = FrameDb::new(32);
        db.set(Pfn::new(5), FrameState::Movable { owner: Asid(1), vpn: Vpn::new(0) });
        db.set(Pfn::new(20), FrameState::Movable { owner: Asid(1), vpn: Vpn::new(1) });
        assert_eq!(db.first_movable_at_or_above(Pfn::new(0)), Some(Pfn::new(5)));
        assert_eq!(db.first_movable_at_or_above(Pfn::new(5)), Some(Pfn::new(5)));
        assert_eq!(db.first_movable_at_or_above(Pfn::new(6)), Some(Pfn::new(20)));
        assert_eq!(db.first_movable_at_or_above(Pfn::new(21)), None);
    }

    #[test]
    fn set_range_applies_closure_per_offset() {
        let mut db = FrameDb::new(16);
        db.set_range(Pfn::new(4), 3, |i| FrameState::Movable {
            owner: Asid(2),
            vpn: Vpn::new(100 + i),
        });
        assert_eq!(db.rmap(Pfn::new(5)), Some((Asid(2), Vpn::new(101))));
        assert_eq!(db.counts().movable, 3);
    }

    #[test]
    fn iter_covers_all_frames_in_order() {
        let db = FrameDb::new(4);
        let pfns: Vec<_> = db.iter().map(|(p, _)| p.raw()).collect();
        assert_eq!(pfns, vec![0, 1, 2, 3]);
    }
}
