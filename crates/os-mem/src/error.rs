//! Error types for the OS memory-management substrate.

use crate::addr::{Asid, Vpn};
use std::error::Error;
use std::fmt;

/// Errors produced by kernel memory-management operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum MemError {
    /// Physical memory is exhausted (even after compaction).
    OutOfMemory {
        /// Number of contiguous pages that could not be found.
        requested_pages: u64,
    },
    /// Virtual address space is exhausted for the process.
    OutOfVirtualSpace {
        /// Number of pages requested.
        requested_pages: u64,
    },
    /// The given virtual page is not mapped in the address space.
    NotMapped {
        /// Offending virtual page.
        vpn: Vpn,
    },
    /// The given virtual page does not start a known allocation.
    NotAllocationStart {
        /// Offending virtual page.
        vpn: Vpn,
    },
    /// The address-space identifier does not name a live process.
    NoSuchProcess {
        /// Offending identifier.
        asid: Asid,
    },
    /// A zero-page request was made.
    ZeroSizedRequest,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested_pages } => {
                write!(f, "out of physical memory ({requested_pages} pages requested)")
            }
            MemError::OutOfVirtualSpace { requested_pages } => {
                write!(f, "out of virtual address space ({requested_pages} pages requested)")
            }
            MemError::NotMapped { vpn } => write!(f, "virtual page {vpn} is not mapped"),
            MemError::NotAllocationStart { vpn } => {
                write!(f, "virtual page {vpn} does not start an allocation")
            }
            MemError::NoSuchProcess { asid } => write!(f, "no such process {asid}"),
            MemError::ZeroSizedRequest => write!(f, "zero-sized allocation request"),
        }
    }
}

impl Error for MemError {}

/// Result alias used throughout the substrate.
pub type MemResult<T> = Result<T, MemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MemError::OutOfMemory { requested_pages: 4 };
        let msg = format!("{e}");
        assert!(msg.contains("4 pages"));
        assert!(msg.starts_with("out of"));
        let e = MemError::NotMapped { vpn: Vpn::new(0x10) };
        assert!(format!("{e}").contains("0x10"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MemError>();
    }
}
