//! Deterministic memory-pressure fault injection.
//!
//! A [`FaultPlan`] is a seeded stream of injection decisions the kernel
//! consults at its failure-prone choice points: buddy allocations,
//! direct-compaction entry, background reclaim, and shootdown delivery.
//! Every decision draws from one `colt-prng` stream, so a plan replays
//! identically for a given [`FaultConfig`] regardless of thread count or
//! wall-clock — the property the `repro pressure` sweep and the
//! `repro --check` oracle both lean on.
//!
//! The plan decides *whether* something fails; the kernel's graceful-
//! degradation policies (base-page fallback, deferred THP collapse,
//! compaction backoff, emergency reclaim, the OOM killer) decide what
//! happens next. See DESIGN.md §10.

use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use colt_prng::rngs::SmallRng;
use colt_prng::{Rng, SeedableRng};

/// Parameters of a fault-injection plan, parsed from
/// `rate=R,window=W,seed=S` on the `repro` command line.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that an armed decision point injects a
    /// fault.
    pub rate: f64,
    /// Duty-cycle window in decision points: the plan alternates between
    /// `window` armed decisions and `window` quiet ones, modelling bursty
    /// pressure. `0` keeps the plan armed throughout.
    pub window: u64,
    /// Seed of the decision stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { rate: 0.05, window: 0, seed: 7 }
    }
}

impl FaultConfig {
    /// Parses `rate=R,window=W,seed=S` (each key optional, any order).
    /// The empty string yields the default plan.
    ///
    /// # Errors
    /// A human-readable message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec '{part}' is not key=value"))?;
            match key.trim() {
                "rate" => {
                    let rate: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault rate '{value}'"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault rate {rate} outside [0, 1]"));
                    }
                    cfg.rate = rate;
                }
                "window" => {
                    cfg.window = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault window '{value}'"))?;
                }
                "seed" => {
                    cfg.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault seed '{value}'"))?;
                }
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        Ok(cfg)
    }
}

/// What happens to one shootdown delivery under injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryFault {
    /// Normal per-VPN invalidation.
    Deliver,
    /// The IPI is lost. The receiver recovers the way real kernels do
    /// after a resend timeout: a conservative full TLB + walk-cache
    /// flush, trading performance for correctness.
    Drop,
    /// The IPI arrives twice; invalidation must be idempotent.
    Duplicate,
}

/// A live, seeded stream of injection decisions.
///
/// Each decision point consumes exactly one draw whether or not the plan
/// is armed at that point, so the decision sequence depends only on the
/// config — not on the window phase.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: SmallRng,
    decisions: u64,
    injected: u64,
}

impl FaultPlan {
    /// A plan drawing from `config`'s seed.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            decisions: 0,
            injected: 0,
        }
    }

    /// A decorrelated sibling plan for shootdown delivery (used by the
    /// checker, which owns delivery, while the kernel owns allocation
    /// faults). Same config, disjoint stream.
    pub fn delivery(config: FaultConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed ^ 0xD311_7E12_5EED_CAFE),
            decisions: 0,
            injected: 0,
        }
    }

    /// The parameters this plan was built from.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decision points consumed so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// One decision point: draws from the stream and reports whether a
    /// fault fires (armed window AND rate hit).
    fn fire(&mut self) -> bool {
        let armed = self.config.window == 0
            || (self.decisions / self.config.window) % 2 == 0;
        self.decisions += 1;
        let hit = self.rng.gen_bool(self.config.rate.clamp(0.0, 1.0));
        if armed && hit {
            self.injected += 1;
            true
        } else {
            false
        }
    }

    /// Should this buddy allocation attempt fail spuriously?
    pub fn fail_alloc(&mut self) -> bool {
        self.fire()
    }

    /// Should this direct-compaction attempt abort before doing work?
    pub fn abort_compaction(&mut self) -> bool {
        self.fire()
    }

    /// A reclaim-pressure spike: `Some(pages)` orders the kernel to evict
    /// that much page cache right now (kswapd waking under pressure).
    pub fn reclaim_spike(&mut self) -> Option<u64> {
        if self.fire() {
            Some(16 + self.rng.next_u64() % 49)
        } else {
            None
        }
    }

    /// The fate of one shootdown delivery.
    pub fn delivery_fault(&mut self) -> DeliveryFault {
        if self.fire() {
            if self.rng.next_u64() & 1 == 0 {
                DeliveryFault::Drop
            } else {
                DeliveryFault::Duplicate
            }
        } else {
            DeliveryFault::Deliver
        }
    }
}

impl Snapshot for FaultConfig {
    fn encode(&self, enc: &mut Enc) {
        enc.f64(self.rate);
        enc.u64(self.window);
        enc.u64(self.seed);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let rate = dec.f64()?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(SnapshotError(format!("fault rate {rate} outside [0, 1]")));
        }
        Ok(Self { rate, window: dec.u64()?, seed: dec.u64()? })
    }
}

impl Snapshot for FaultPlan {
    fn encode(&self, enc: &mut Enc) {
        self.config.encode(enc);
        self.rng.state().encode(enc);
        enc.u64(self.decisions);
        enc.u64(self.injected);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            config: FaultConfig::decode(dec)?,
            rng: SmallRng::from_state(<[u64; 4]>::decode(dec)?),
            decisions: dec.u64()?,
            injected: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let cfg = FaultConfig::parse("rate=0.25,window=64,seed=42").unwrap();
        assert_eq!(cfg, FaultConfig { rate: 0.25, window: 64, seed: 42 });
    }

    #[test]
    fn parse_partial_and_empty_specs_fill_defaults() {
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
        let cfg = FaultConfig::parse("seed=9").unwrap();
        assert_eq!(cfg, FaultConfig { seed: 9, ..FaultConfig::default() });
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultConfig::parse("rate=2.0").is_err());
        assert!(FaultConfig::parse("banana=1").is_err());
        assert!(FaultConfig::parse("rate").is_err());
        assert!(FaultConfig::parse("window=-3").is_err());
    }

    #[test]
    fn plans_with_equal_configs_replay_identically() {
        let cfg = FaultConfig { rate: 0.3, window: 8, seed: 123 };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..500 {
            assert_eq!(a.fail_alloc(), b.fail_alloc());
            assert_eq!(a.reclaim_spike(), b.reclaim_spike());
            assert_eq!(a.delivery_fault(), b.delivery_fault());
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires_when_armed() {
        let mut never = FaultPlan::new(FaultConfig { rate: 0.0, window: 0, seed: 1 });
        let mut always = FaultPlan::new(FaultConfig { rate: 1.0, window: 0, seed: 1 });
        for _ in 0..200 {
            assert!(!never.fail_alloc());
            assert!(always.fail_alloc());
        }
        assert_eq!(never.injected(), 0);
        assert_eq!(always.injected(), 200);
    }

    #[test]
    fn window_gates_injection_into_alternating_bursts() {
        let mut plan = FaultPlan::new(FaultConfig { rate: 1.0, window: 4, seed: 3 });
        let fired: Vec<bool> = (0..16).map(|_| plan.fail_alloc()).collect();
        assert_eq!(
            fired,
            [
                true, true, true, true, false, false, false, false, true, true, true,
                true, false, false, false, false
            ]
        );
    }

    #[test]
    fn delivery_plan_is_decorrelated_from_the_kernel_plan() {
        let cfg = FaultConfig { rate: 0.5, window: 0, seed: 77 };
        let mut kernel_plan = FaultPlan::new(cfg);
        let mut delivery_plan = FaultPlan::delivery(cfg);
        let a: Vec<bool> = (0..64).map(|_| kernel_plan.fail_alloc()).collect();
        let b: Vec<bool> = (0..64).map(|_| delivery_plan.fail_alloc()).collect();
        assert_ne!(a, b, "sibling streams must differ");
    }

    #[test]
    fn snapshot_mid_stream_resumes_identically() {
        let cfg = FaultConfig { rate: 0.4, window: 8, seed: 31 };
        let mut plan = FaultPlan::new(cfg);
        for _ in 0..37 {
            plan.fail_alloc();
        }
        let mut enc = Enc::new();
        plan.encode(&mut enc);
        let bytes = enc.finish();
        let mut back = FaultPlan::decode(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.decisions(), plan.decisions());
        assert_eq!(back.injected(), plan.injected());
        for _ in 0..200 {
            assert_eq!(back.fail_alloc(), plan.fail_alloc());
            assert_eq!(back.delivery_fault(), plan.delivery_fault());
        }
    }

    #[test]
    fn duplicate_and_drop_both_occur_at_high_rates() {
        let mut plan = FaultPlan::delivery(FaultConfig { rate: 1.0, window: 0, seed: 5 });
        let outcomes: Vec<DeliveryFault> = (0..64).map(|_| plan.delivery_fault()).collect();
        assert!(outcomes.contains(&DeliveryFault::Drop));
        assert!(outcomes.contains(&DeliveryFault::Duplicate));
    }
}
