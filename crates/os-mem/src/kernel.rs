//! The kernel facade: ties the buddy allocator, frame database, page
//! tables, compaction daemon, and THS together behind the memory-management
//! API the workloads drive (`malloc`/`mmap`/`free`/`touch`).
//!
//! The twelve system configurations of paper §5.1.1 are expressed through
//! [`KernelConfig`]: THS on/off, compaction normal/low, and memhog load
//! (driven externally through [`Kernel::allocate_pinned`]).

use crate::addr::{Asid, Pfn, Vpn, SUPERPAGE_PAGES};
use crate::buddy::{covering_order, BuddyAllocator, PfnRange};
use crate::compaction::{self, CompactionControl, CompactionStats};
use crate::contiguity::ContiguityReport;
use crate::error::{MemError, MemResult};
use crate::faults::{FaultConfig, FaultPlan};
use crate::frames::{FrameDb, FrameState};
use crate::page_table::{PageKind, Pte, PteFlags, Translation};
use crate::policy::{interleave, MmPolicy, Placement, PolicyKind, ReclaimOrder, ThpDecision};
use crate::process::Process;
use crate::shootdown::{ShootdownEvent, ShootdownKind, ShootdownLog};
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use crate::thp;
use crate::vma::{Vma, VmaKind};
use std::collections::{BTreeMap, VecDeque};

/// How aggressively the memory-compaction daemon runs (the Linux
/// `defrag` flag, paper §5.1.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CompactionMode {
    /// Compaction on allocation failure and as background activity.
    #[default]
    Normal,
    /// Compaction almost never runs (defrag disabled).
    Low,
}

/// Whether allocations are backed by frames immediately or on first touch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PopulateMode {
    /// Frames are allocated at `malloc` time, in one multi-page request —
    /// the main buddy-contiguity source (paper §3.2.1: applications
    /// "simultaneously request a number of physical pages together").
    #[default]
    Eager,
    /// Frames are allocated one page per fault (worst case for
    /// contiguity; used for ablation).
    Demand,
}

/// Kernel construction parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KernelConfig {
    /// Physical memory size in 4KB frames.
    pub nr_frames: u64,
    /// Transparent hugepage support enabled.
    pub ths_enabled: bool,
    /// Compaction aggressiveness.
    pub compaction: CompactionMode,
    /// Frame population policy.
    pub populate: PopulateMode,
    /// Background compaction triggers when the buddy fragmentation index
    /// exceeds this threshold (checked in [`Kernel::tick`]).
    pub compaction_frag_threshold: f64,
    /// The THS pressure daemon splits superpages when the free fraction
    /// of memory falls below this watermark.
    pub thp_split_watermark: f64,
    /// Largest block order used for ordinary (non-THP) user allocations.
    /// Real kernels do not hand order-10 blocks to user mallocs; runs
    /// longer than `2^max_alloc_order` still arise when successive blocks
    /// happen to be carved adjacently from one large free region.
    pub max_alloc_order: u32,
    /// When the pressure daemon splits a superpage, also reclaim a
    /// scattered subset of its base pages (puncturing the 512-page run
    /// into segments of tens of pages — the residual contiguity of
    /// paper §3.2.3). Reclaimed pages fault back in on next touch.
    pub thp_split_puncture: bool,
    /// Per-process virtual address-space span in pages.
    pub va_limit_pages: u64,
    /// The memory-management policy steering THP decisions, compaction,
    /// reclaim, and allocation contiguity (see [`crate::policy`]).
    /// [`PolicyKind::Default`] reproduces the historical behavior
    /// byte-identically.
    pub policy: PolicyKind,
    /// Deterministic fault injection: when set, the kernel consults a
    /// seeded [`FaultPlan`] at its failure-prone choice points and the
    /// degradation machinery (deferred THP collapse, compaction backoff,
    /// the OOM killer) engages. `None` (the default) keeps every
    /// baseline table bit-identical to the fault-free kernel.
    pub faults: Option<FaultConfig>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            nr_frames: 1 << 16, // 256MB of 4KB frames
            ths_enabled: true,
            compaction: CompactionMode::Normal,
            populate: PopulateMode::Eager,
            compaction_frag_threshold: 0.45,
            thp_split_watermark: 0.08,
            max_alloc_order: 6,
            thp_split_puncture: true,
            va_limit_pages: 1 << 26,
            policy: PolicyKind::Default,
            faults: None,
        }
    }
}

impl KernelConfig {
    /// Convenience: the paper's default Linux setting (configuration 1 in
    /// §5.1.1): THS on, normal compaction.
    pub fn ths_on() -> Self {
        Self::default()
    }

    /// Configuration 2: THS off, normal compaction.
    pub fn ths_off() -> Self {
        Self { ths_enabled: false, ..Self::default() }
    }

    /// Configuration 3: THS off, low compaction — the paper's
    /// conservative worst case for contiguity.
    pub fn ths_off_low_compaction() -> Self {
        Self {
            ths_enabled: false,
            compaction: CompactionMode::Low,
            ..Self::default()
        }
    }
}

/// Counters for everything the kernel did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// `malloc`/`mmap_file` calls served.
    pub allocations: u64,
    /// Pages requested across all allocations.
    pub pages_requested: u64,
    /// Pages actually populated with frames.
    pub pages_populated: u64,
    /// Distinct physically contiguous runs created (lower is better for
    /// contiguity).
    pub physical_runs: u64,
    /// Superpages successfully allocated by THS.
    pub thp_allocs: u64,
    /// THS attempts that fell back to base pages.
    pub thp_fallbacks: u64,
    /// Superpages split by the pressure daemon.
    pub thp_splits: u64,
    /// Compaction passes run.
    pub compaction_runs: u64,
    /// Pages migrated by compaction.
    pub pages_migrated: u64,
    /// Demand-population faults served.
    pub demand_faults: u64,
    /// Clean file-backed pages evicted by the reclaim path.
    pub pages_reclaimed: u64,
    /// Processes torn down by the OOM killer.
    pub oom_kills: u64,
    /// Direct-compaction attempts skipped by the defer backoff.
    pub compact_deferred: u64,
    /// khugepaged collapse attempts on deferred THP regions.
    pub thp_deferred_retries: u64,
    /// Faults injected by the active [`FaultPlan`].
    pub faults_injected: u64,
    /// Policy hook consultations that could alter behavior (THP verdicts,
    /// collapse eligibility, compaction permission checks).
    pub policy_decisions: u64,
    /// THP requests the policy granted.
    pub policy_huge_grants: u64,
    /// THP requests the policy denied or deferred.
    pub policy_huge_denies: u64,
    /// khugepaged collapses that proceeded past the policy gate.
    pub policy_collapses_triggered: u64,
    /// Compaction passes (direct or background) the policy approved.
    pub policy_compactions_requested: u64,
}

/// The simulated kernel.
///
/// ```
/// use colt_os_mem::kernel::{Kernel, KernelConfig};
/// let mut kernel = Kernel::new(KernelConfig::default());
/// let asid = kernel.spawn();
/// let base = kernel.malloc(asid, 64)?;
/// let t = kernel.touch(asid, base)?;
/// assert!(t.flags.contains(colt_os_mem::page_table::PteFlags::USER));
/// # Ok::<(), colt_os_mem::error::MemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Kernel {
    config: KernelConfig,
    buddy: BuddyAllocator,
    frames: FrameDb,
    processes: BTreeMap<Asid, Process>,
    next_asid: u32,
    /// Live superpages in allocation order (oldest first), the pressure
    /// daemon's split queue.
    live_superpages: VecDeque<(Asid, Vpn)>,
    /// Per-CPU page list: order-0 demand faults are served from batched
    /// buddy refills, so consecutive faults receive adjacent frames —
    /// the mechanism behind faulted-page contiguity on real systems.
    pcp: VecDeque<Pfn>,
    /// Per-VPN shootdown events for every page-table mutation, recorded
    /// only when enabled (the differential checker's hook).
    shootdowns: ShootdownLog,
    /// The active fault-injection plan, if any.
    faults: Option<FaultPlan>,
    /// khugepaged's queue: regions that fell back to base pages, waiting
    /// for a deferred collapse, with per-region retry counts.
    thp_deferred: VecDeque<(Asid, Vpn, u32)>,
    /// Compaction defer backoff (Linux `compact_defer_shift`): after a
    /// failed direct compaction the next `1 << shift` attempts are
    /// skipped instead of stalling the allocator again.
    compact_defer_shift: u32,
    /// Remaining direct-compaction attempts to skip.
    compact_backoff: u64,
    stats: KernelStats,
}

/// Pages per PCP refill batch (Linux's per-cpu batch is the same order
/// of magnitude).
const PCP_BATCH: u64 = 32;

/// Cap on the compaction defer backoff: at most `1 << 6` skipped
/// attempts per deferral round (Linux `COMPACT_MAX_DEFER_SHIFT`).
const COMPACT_MAX_DEFER_SHIFT: u32 = 6;

/// khugepaged collapse attempts per deferred region before it is dropped
/// from the queue.
const THP_RETRY_BUDGET: u32 = 3;

/// Bound on the deferred-collapse queue.
const THP_DEFER_QUEUE_MAX: usize = 64;

/// Deferred regions khugepaged rescans per [`Kernel::tick`].
const COLLAPSES_PER_TICK: usize = 2;

/// Outcome of one khugepaged collapse attempt.
enum CollapseOutcome {
    /// The region now maps one superpage.
    Collapsed,
    /// Transient failure (holes, no order-9 block): rescan later.
    Retry,
    /// The region can never collapse (freed, exited, already huge).
    Gone,
}

impl Kernel {
    /// Boots a kernel over `config.nr_frames` of physical memory.
    pub fn new(config: KernelConfig) -> Self {
        Self {
            buddy: BuddyAllocator::new(config.nr_frames),
            frames: FrameDb::new(config.nr_frames),
            processes: BTreeMap::new(),
            next_asid: 1,
            live_superpages: VecDeque::new(),
            pcp: VecDeque::new(),
            shootdowns: ShootdownLog::new(),
            faults: config.faults.map(FaultPlan::new),
            thp_deferred: VecDeque::new(),
            compact_defer_shift: 0,
            compact_backoff: 0,
            stats: KernelStats::default(),
            config,
        }
    }

    /// Installs (or replaces) a fault-injection plan on a running kernel
    /// — the SMP harness puts an already prepared machine under
    /// injection this way.
    pub fn set_fault_plan(&mut self, config: FaultConfig) {
        self.config.faults = Some(config);
        self.faults = Some(FaultPlan::new(config));
    }

    /// The active fault plan's parameters, if any.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.faults.as_ref().map(FaultPlan::config)
    }

    /// Frames parked in the per-CPU page list: owned by the allocator,
    /// mapped nowhere. Free-memory conservation checks must count
    /// `free_frames() + pcp_parked()`.
    pub fn pcp_parked(&self) -> u64 {
        self.pcp.len() as u64
    }

    /// Starts recording per-VPN [`ShootdownEvent`]s for every page-table
    /// mutation. Off by default; the perf path pays one branch per
    /// mutation site.
    pub fn enable_shootdown_log(&mut self) {
        self.shootdowns.enable();
    }

    /// Drains every shootdown recorded since the last drain, oldest
    /// first. Empty unless [`Kernel::enable_shootdown_log`] was called.
    pub fn take_shootdowns(&mut self) -> Vec<ShootdownEvent> {
        self.shootdowns.take()
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The active memory-management policy.
    pub fn policy(&self) -> &'static dyn MmPolicy {
        self.config.policy.policy()
    }

    /// One per-VMA THP verdict from the policy, with counter accounting.
    /// Consulted only for regions that are already THP-eligible.
    fn policy_thp_decision(&mut self, kind: VmaKind) -> ThpDecision {
        self.stats.policy_decisions += 1;
        let decision = self.policy().thp_decision(kind);
        match decision {
            ThpDecision::Grant => self.stats.policy_huge_grants += 1,
            ThpDecision::Defer | ThpDecision::Deny => self.stats.policy_huge_denies += 1,
        }
        decision
    }

    /// Queues a region for deferred collapse on the policy's behalf —
    /// unlike [`Kernel::note_thp_deferral`], not gated on fault injection
    /// (a [`ThpDecision::Defer`] policy wants the collapse machinery even
    /// on a fault-free kernel).
    fn policy_note_deferral(&mut self, asid: Asid, base_vpn: Vpn) {
        if self.thp_deferred.len() >= THP_DEFER_QUEUE_MAX
            || self.thp_deferred.iter().any(|&(a, v, _)| a == asid && v == base_vpn)
        {
            return;
        }
        self.thp_deferred.push_back((asid, base_vpn, 0));
    }

    /// Activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The physical allocator (read-only).
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// The frame database (read-only).
    pub fn frames(&self) -> &FrameDb {
        &self.frames
    }

    /// Looks up a live process.
    ///
    /// # Errors
    /// [`MemError::NoSuchProcess`] when `asid` is unknown.
    pub fn process(&self, asid: Asid) -> MemResult<&Process> {
        self.processes.get(&asid).ok_or(MemError::NoSuchProcess { asid })
    }

    /// Free physical frames right now.
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_frames()
    }

    /// Mapped clean file-backed pages — what the reclaim path could
    /// evict under pressure.
    pub fn reclaimable_file_pages(&self) -> u64 {
        self.frames
            .iter()
            .filter(|(_, state)| {
                let FrameState::Movable { owner, vpn } = *state else {
                    return false;
                };
                self.processes.get(&owner).is_some_and(|p| {
                    p.page_table
                        .translate(vpn)
                        .is_some_and(|t| t.flags.contains(PteFlags::FILE_BACKED))
                })
            })
            .count() as u64
    }

    /// Creates a new process and returns its identifier.
    pub fn spawn(&mut self) -> Asid {
        let asid = Asid(self.next_asid);
        self.next_asid += 1;
        self.processes
            .insert(asid, Process::new(asid, self.config.va_limit_pages));
        asid
    }

    /// Terminates a process, releasing all its memory.
    ///
    /// # Errors
    /// [`MemError::NoSuchProcess`] when `asid` is unknown.
    pub fn exit(&mut self, asid: Asid) -> MemResult<()> {
        let starts: Vec<Vpn> = self
            .process(asid)?
            .address_space()
            .iter()
            .map(|v| v.start)
            .collect();
        for s in starts {
            self.free(asid, s)?;
        }
        self.processes.remove(&asid);
        self.live_superpages.retain(|&(a, _)| a != asid);
        Ok(())
    }

    /// Allocates `pages` of anonymous memory (heap `malloc`). Eligible
    /// for THS superpages when enabled.
    ///
    /// # Errors
    /// Propagates address-space or physical-memory exhaustion.
    pub fn malloc(&mut self, asid: Asid, pages: u64) -> MemResult<Vpn> {
        self.allocate(asid, pages, VmaKind::Anonymous, PteFlags::user_data())
    }

    /// Maps `pages` of file-backed memory — never superpage candidates
    /// (paper §6.1).
    ///
    /// # Errors
    /// Propagates address-space or physical-memory exhaustion.
    pub fn mmap_file(&mut self, asid: Asid, pages: u64) -> MemResult<Vpn> {
        self.allocate(
            asid,
            pages,
            VmaKind::FileBacked,
            PteFlags::user_data().with(PteFlags::FILE_BACKED),
        )
    }

    /// Reserves `pages` of address space *without* populating frames,
    /// regardless of the kernel's populate mode. Pages are then backed
    /// one at a time by [`Kernel::touch`] — the behavior of programs that
    /// grow structures incrementally rather than in bulk mallocs.
    ///
    /// # Errors
    /// Propagates address-space exhaustion.
    pub fn reserve(&mut self, asid: Asid, pages: u64, kind: VmaKind) -> MemResult<Vpn> {
        let flags = match kind {
            VmaKind::Anonymous => PteFlags::user_data(),
            VmaKind::FileBacked => PteFlags::user_data().with(PteFlags::FILE_BACKED),
        };
        let huge_align = self.policy().huge_align(kind);
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(MemError::NoSuchProcess { asid })?;
        let vma = process.address_space.reserve_hinted(pages, kind, flags, huge_align)?;
        self.stats.allocations += 1;
        self.stats.pages_requested += pages;
        Ok(vma.start)
    }

    fn allocate(
        &mut self,
        asid: Asid,
        pages: u64,
        kind: VmaKind,
        flags: PteFlags,
    ) -> MemResult<Vpn> {
        match self.try_allocate(asid, pages, kind, flags) {
            Err(e @ MemError::OutOfMemory { .. }) if self.faults.is_some() => {
                // Emergency path: reclaim inside the allocator already
                // failed. Kill the largest-RSS process (never the
                // requester) and retry once before surfacing the error.
                if self.oom_kill(Some(asid)).is_none() {
                    return Err(e);
                }
                // The retry re-reserves; undo the failed attempt's
                // counters so one malloc stays one allocation.
                self.stats.allocations -= 1;
                self.stats.pages_requested -= pages;
                self.try_allocate(asid, pages, kind, flags)
            }
            other => other,
        }
    }

    fn try_allocate(
        &mut self,
        asid: Asid,
        pages: u64,
        kind: VmaKind,
        flags: PteFlags,
    ) -> MemResult<Vpn> {
        let huge_align = self.policy().huge_align(kind);
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(MemError::NoSuchProcess { asid })?;
        let vma = process.address_space.reserve_hinted(pages, kind, flags, huge_align)?;
        self.stats.allocations += 1;
        self.stats.pages_requested += pages;
        if self.config.populate == PopulateMode::Eager {
            if let Err(e) = self.populate_range(asid, vma) {
                // Roll back the reservation (already-populated pages are
                // released) so the caller sees a clean failure.
                let _ = self.free(asid, vma.start);
                return Err(e);
            }
        }
        Ok(vma.start)
    }

    /// Resident set size of `asid` in pages (0 for unknown processes).
    pub fn rss_pages(&self, asid: Asid) -> u64 {
        self.processes.get(&asid).map_or(0, |p| {
            let s = p.page_table().stats();
            s.base_pages + s.superpages * SUPERPAGE_PAGES
        })
    }

    /// The OOM killer: tears down the live process with the largest RSS
    /// (ties broken toward the lowest ASID, so the choice is
    /// deterministic), excluding `exclude`. The victim's pages are
    /// released through the ordinary exit path, emitting an `Unmap`
    /// [`ShootdownEvent`] per mapping.
    ///
    /// Returns the victim, or `None` when no process had pages to give.
    pub fn oom_kill(&mut self, exclude: Option<Asid>) -> Option<Asid> {
        let (victim, rss) = self
            .processes
            .keys()
            .copied()
            .filter(|a| Some(*a) != exclude)
            .map(|a| (a, self.rss_pages(a)))
            .max_by(|(a1, r1), (a2, r2)| r1.cmp(r2).then(a2.cmp(a1)))?;
        if rss == 0 {
            return None;
        }
        self.exit(victim).expect("victim is live");
        self.stats.oom_kills += 1;
        Some(victim)
    }

    /// One fault-plan decision for a buddy allocation attempt.
    fn inject_alloc_failure(&mut self) -> bool {
        let fired = self.faults.as_mut().is_some_and(FaultPlan::fail_alloc);
        if fired {
            self.stats.faults_injected += 1;
        }
        fired
    }

    /// One fault-plan decision for a direct-compaction attempt.
    fn inject_compaction_abort(&mut self) -> bool {
        let fired = self.faults.as_mut().is_some_and(FaultPlan::abort_compaction);
        if fired {
            self.stats.faults_injected += 1;
        }
        fired
    }

    /// One fault-plan decision for background reclaim pressure.
    fn take_reclaim_spike(&mut self) -> Option<u64> {
        let spike = self.faults.as_mut().and_then(FaultPlan::reclaim_spike);
        if spike.is_some() {
            self.stats.faults_injected += 1;
        }
        spike
    }

    /// A buddy multi-page allocation under injection: a fired fault makes
    /// the attempt fail spuriously, exercising the degradation path at
    /// the call site.
    fn buddy_alloc_pages(&mut self, pages: u64) -> Option<PfnRange> {
        if self.inject_alloc_failure() {
            return None;
        }
        self.buddy.alloc_pages(pages)
    }

    /// Whether a direct-compaction attempt may run now, consuming one
    /// backoff credit when it may not.
    fn direct_compaction_allowed(&mut self) -> bool {
        if self.compact_backoff > 0 {
            self.compact_backoff -= 1;
            self.stats.compact_deferred += 1;
            return false;
        }
        true
    }

    /// Whether the policy permits direct compaction at all (counted).
    fn policy_direct_compaction(&mut self) -> bool {
        self.stats.policy_decisions += 1;
        self.policy().direct_compaction()
    }

    /// Records a failed (or aborted) direct compaction: the next
    /// `1 << shift` attempts are skipped, with the shift growing
    /// exponentially up to a cap — Linux's `defer_compaction`. Engaged
    /// only under fault injection so the fault-free kernel's compaction
    /// behavior, and every baseline table, is unchanged.
    fn defer_compaction(&mut self) {
        if self.faults.is_none() {
            return;
        }
        self.compact_backoff = 1 << self.compact_defer_shift;
        self.compact_defer_shift = (self.compact_defer_shift + 1).min(COMPACT_MAX_DEFER_SHIFT);
    }

    /// A direct compaction satisfied its allocation: stop deferring.
    fn reset_compaction_backoff(&mut self) {
        self.compact_defer_shift = 0;
        self.compact_backoff = 0;
    }

    /// Populates `vma` with physical frames in as few contiguous runs as
    /// the buddy allocator permits, using THS for aligned 512-page chunks
    /// of anonymous areas.
    fn populate_range(&mut self, asid: Asid, vma: Vma) -> MemResult<()> {
        let thp_eligible = self.config.ths_enabled && vma.kind == VmaKind::Anonymous;
        // One per-VMA policy verdict covers the whole range.
        let decision = if thp_eligible {
            self.policy_thp_decision(vma.kind)
        } else {
            ThpDecision::Deny
        };
        let thp_now = thp_eligible && decision == ThpDecision::Grant;
        // A deferred region keeps the superpage-boundary clamp below so
        // its aligned blocks are cleanly base-filled for the collapse.
        let thp_path = thp_eligible && decision != ThpDecision::Deny;
        let chunk_cap = 1u64 << self.policy().alloc_chunk_order(self.config.max_alloc_order);
        let mut vpn = vma.start;
        let end = vma.end();
        while vpn < end {
            let remaining = end.distance_from(vpn).expect("vpn < end");
            if vpn.is_aligned(9) && remaining >= SUPERPAGE_PAGES {
                if thp_now {
                    if let Some(base_pfn) = self.alloc_superpage_with_defrag() {
                        self.install_super(asid, vpn, base_pfn, vma.flags);
                        vpn = vpn.offset(SUPERPAGE_PAGES);
                        continue;
                    }
                    self.stats.thp_fallbacks += 1;
                    self.note_thp_deferral(asid, vpn);
                } else if thp_path {
                    self.policy_note_deferral(asid, vpn);
                }
            }
            // Base-page chunk: stop at the next superpage boundary when a
            // later THS attempt (or collapse) is still possible, and at
            // the policy's block-order cap.
            let mut chunk = remaining;
            if thp_path && remaining >= SUPERPAGE_PAGES && !vpn.is_aligned(9) {
                let to_boundary = SUPERPAGE_PAGES - (vpn.raw() & (SUPERPAGE_PAGES - 1));
                chunk = chunk.min(to_boundary);
            }
            chunk = chunk.min(chunk_cap);
            let run = self.alloc_run_with_reclaim(chunk)?;
            self.install_base_run(asid, vpn, run, vma.flags);
            vpn = vpn.offset(run.pages);
        }
        self.maybe_split_under_pressure();
        Ok(())
    }

    /// Attempts an aligned 512-frame THP block, running direct compaction
    /// (targeted at order 9) on failure when the defrag flag is on — the
    /// Linux behavior the paper leans on: "THS relies on the memory
    /// compaction daemon, triggering it more often" (§3.2.3).
    fn alloc_superpage_with_defrag(&mut self) -> Option<Pfn> {
        if self.inject_alloc_failure() {
            return None;
        }
        if let Some(p) = thp::try_alloc_superpage(&mut self.buddy) {
            return Some(p);
        }
        if self.config.compaction == CompactionMode::Normal
            && self.policy_direct_compaction()
            && self.buddy.free_frames() >= SUPERPAGE_PAGES
        {
            if !self.direct_compaction_allowed() {
                return None;
            }
            if self.inject_compaction_abort() {
                self.defer_compaction();
                return None;
            }
            let stats = self.compact_bounded(9, 8 * SUPERPAGE_PAGES);
            let got = thp::try_alloc_superpage(&mut self.buddy);
            if got.is_none() || stats.aborted {
                self.defer_compaction();
            } else {
                self.reset_compaction_backoff();
            }
            return got;
        }
        None
    }

    /// Allocates up to `chunk` contiguous frames, compacting on failure
    /// (in [`CompactionMode::Normal`]) and degrading to smaller runs as
    /// fragmentation forces it.
    fn alloc_run_with_reclaim(&mut self, mut chunk: u64) -> MemResult<PfnRange> {
        // Order-0 requests go through the per-CPU page list like every
        // other single-page allocation.
        if chunk == 1 {
            let pfn = self.alloc_single_via_pcp()?;
            return Ok(PfnRange::new(pfn, 1));
        }
        let mut compacted = false;
        loop {
            if let Some(run) = self.buddy_alloc_pages(chunk) {
                return Ok(run);
            }
            // Direct compaction: the Linux defrag flag triggers the
            // daemon on allocation failure (paper §5.1.1). It stops as
            // soon as a block of the needed order is free. Under the
            // defer backoff (or an injected abort) the attempt is
            // skipped and the request degrades to smaller runs instead.
            if !compacted
                && self.config.compaction == CompactionMode::Normal
                && self.policy_direct_compaction()
                && self.buddy.free_frames() >= chunk
            {
                compacted = true;
                if self.direct_compaction_allowed() {
                    if self.inject_compaction_abort() {
                        self.defer_compaction();
                    } else {
                        self.compact_bounded(covering_order(chunk), 4 * chunk.max(64));
                    }
                    continue;
                }
            }
            if chunk > 1 {
                chunk /= 2;
                continue;
            }
            // Last resort before OOM: evict clean page cache.
            if self.reclaim_file_pages(PCP_BATCH * 4) > 0 {
                continue;
            }
            // Terminal attempt, injection bypassed (GFP_MEMALLOC-style):
            // a fired fault plan alone must never manufacture an OOM out
            // of genuinely free memory.
            if let Some(run) = self.buddy.alloc_pages(chunk) {
                return Ok(run);
            }
            return Err(MemError::OutOfMemory { requested_pages: chunk });
        }
    }

    /// Serves one order-0 frame from the per-CPU page list, refilling it
    /// with a contiguous batch from the buddy allocator when empty.
    fn alloc_single_via_pcp(&mut self) -> MemResult<Pfn> {
        if let Some(p) = self.pcp.pop_front() {
            return Ok(p);
        }
        let batch = self.policy().pcp_batch(PCP_BATCH);
        let placement = self.policy().placement();
        let mut want = batch;
        let mut reclaimed = false;
        loop {
            if let Some(run) = self.buddy_alloc_pages(want) {
                for i in 0..run.pages {
                    // Parked in the PCP: owned by the allocator, not yet
                    // mapped anywhere. An interleaving policy perturbs
                    // the serve order so consecutive faults never see
                    // adjacent frames.
                    let p = match placement {
                        Placement::Linear => run.start.offset(i),
                        Placement::Interleaved => run.start.offset(interleave(i, run.pages)),
                    };
                    self.frames.set(p, FrameState::Pinned);
                    self.pcp.push_back(p);
                }
                return Ok(self.pcp.pop_front().expect("batch non-empty"));
            }
            if want > 1 {
                want /= 2;
                continue;
            }
            // Last resort: evict clean page cache (kswapd's job).
            if !reclaimed && self.reclaim_file_pages(PCP_BATCH * 4) > 0 {
                reclaimed = true;
                want = batch;
                continue;
            }
            // Terminal attempt, injection bypassed (GFP_MEMALLOC-style):
            // see alloc_run_with_reclaim.
            if let Some(run) = self.buddy.alloc_pages(1) {
                let p = run.start;
                self.frames.set(p, FrameState::Pinned);
                self.pcp.push_back(p);
                return Ok(self.pcp.pop_front().expect("just pushed"));
            }
            return Err(MemError::OutOfMemory { requested_pages: 1 });
        }
    }

    /// Evicts up to `target` clean file-backed pages (lowest frames
    /// first), unmapping them from their owners and freeing the frames —
    /// the reclaim path that lets allocation succeed under memory
    /// pressure instead of failing. Evicted pages fault back in on the
    /// next touch, as page cache does after a re-read.
    ///
    /// Returns the number of pages evicted.
    pub fn reclaim_file_pages(&mut self, target: u64) -> u64 {
        // The policy picks the scan direction: the default clears the low
        // frames first (where compaction migrates into); the adversarial
        // direction evicts from the top, leaving low holes.
        let order = self.policy().reclaim_order();
        let mut victims: Vec<(Asid, Vpn)> = Vec::new();
        for (pfn, state) in self.frames.iter() {
            if order == ReclaimOrder::LowestPfnFirst && victims.len() as u64 >= target {
                break;
            }
            let FrameState::Movable { owner, vpn } = state else {
                continue;
            };
            let Some(process) = self.processes.get(&owner) else {
                continue;
            };
            let file_backed = process
                .page_table
                .translate(vpn)
                .is_some_and(|t| t.flags.contains(PteFlags::FILE_BACKED));
            if file_backed {
                debug_assert_eq!(
                    process.page_table.translate(vpn).map(|t| t.pfn),
                    Some(pfn)
                );
                victims.push((owner, vpn));
            }
        }
        if order == ReclaimOrder::HighestPfnFirst {
            victims.reverse();
            victims.truncate(target as usize);
        }
        let mut evicted = 0u64;
        for (owner, vpn) in victims {
            let Some(process) = self.processes.get_mut(&owner) else {
                continue;
            };
            let entry_addrs = if self.shootdowns.is_enabled() {
                process.page_table.walk(vpn).map(|p| p.entry_addrs).unwrap_or_default()
            } else {
                Vec::new()
            };
            if let Some(pte) = process.page_table.unmap_base(vpn) {
                self.shootdowns.record(ShootdownEvent {
                    asid: owner,
                    vpn,
                    kind: ShootdownKind::Reclaim,
                    entry_addrs,
                    old_pfn: Some(pte.pfn),
                    new_pfn: None,
                });
                self.frames.set(pte.pfn, FrameState::Free);
                self.buddy.free_block(pte.pfn, 0);
                evicted += 1;
            }
        }
        self.stats.pages_reclaimed += evicted;
        evicted
    }

    fn install_base_run(&mut self, asid: Asid, start_vpn: Vpn, run: PfnRange, flags: PteFlags) {
        let placement = self.policy().placement();
        let process = self.processes.get_mut(&asid).expect("caller validated asid");
        for i in 0..run.pages {
            let vpn = start_vpn.offset(i);
            // An interleaving policy maps consecutive VPNs to a
            // non-adjacent permutation of the run's frames, severing
            // VPN→PFN contiguity without wasting physical memory.
            let pfn = match placement {
                Placement::Linear => run.start.offset(i),
                Placement::Interleaved => run.start.offset(interleave(i, run.pages)),
            };
            process.page_table.map_base(vpn, Pte::new(pfn, flags));
            self.frames.set(pfn, FrameState::Movable { owner: asid, vpn });
        }
        self.stats.pages_populated += run.pages;
        self.stats.physical_runs += 1;
    }

    fn install_super(&mut self, asid: Asid, base_vpn: Vpn, base_pfn: Pfn, flags: PteFlags) {
        let process = self.processes.get_mut(&asid).expect("caller validated asid");
        process.page_table.map_super(base_vpn, Pte::new(base_pfn, flags));
        thp::record_superpage_frames(&mut self.frames, asid, base_vpn, base_pfn);
        self.live_superpages.push_back((asid, base_vpn));
        self.stats.thp_allocs += 1;
        self.stats.pages_populated += SUPERPAGE_PAGES;
        self.stats.physical_runs += 1;
    }

    /// Accesses a virtual page: translates it, demand-populating on a
    /// fault when the kernel is in [`PopulateMode::Demand`].
    ///
    /// # Errors
    /// [`MemError::NotMapped`] when `vpn` lies in no allocation, plus
    /// population failures in demand mode.
    pub fn touch(&mut self, asid: Asid, vpn: Vpn) -> MemResult<Translation> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(MemError::NoSuchProcess { asid })?;
        if let Some(t) = process.page_table.translate(vpn) {
            return Ok(t);
        }
        let vma = *process
            .address_space
            .find(vpn)
            .ok_or(MemError::NotMapped { vpn })?;
        self.stats.demand_faults += 1;
        self.demand_fault(asid, vpn, vma)?;
        let process = self.processes.get(&asid).expect("still live");
        process.page_table.translate(vpn).ok_or(MemError::NotMapped { vpn })
    }

    /// Serves one demand fault: THS first-touch gets a whole aligned
    /// superpage when possible; otherwise a single frame.
    fn demand_fault(&mut self, asid: Asid, vpn: Vpn, vma: Vma) -> MemResult<()> {
        let thp_eligible = self.config.ths_enabled && vma.kind == VmaKind::Anonymous;
        if thp_eligible {
            let decision = self.policy_thp_decision(vma.kind);
            let huge_base = vpn.align_down(9);
            let huge_fits = huge_base >= vma.start
                && huge_base.offset(SUPERPAGE_PAGES) <= vma.end();
            let range_untouched = || {
                let process = self.processes.get(&asid).expect("live");
                (0..SUPERPAGE_PAGES)
                    .all(|i| process.page_table.translate(huge_base.offset(i)).is_none())
            };
            if decision == ThpDecision::Grant && huge_fits && range_untouched() {
                if let Some(base_pfn) = self.alloc_superpage_with_defrag() {
                    self.install_super(asid, huge_base, base_pfn, vma.flags);
                    self.maybe_split_under_pressure();
                    return Ok(());
                }
                self.stats.thp_fallbacks += 1;
                self.note_thp_deferral(asid, huge_base);
            } else if decision == ThpDecision::Defer && huge_fits {
                // Base-fill now; khugepaged collapses the region once all
                // its pages have faulted in.
                self.policy_note_deferral(asid, huge_base);
            }
        }
        let pfn = self.alloc_single_via_pcp()?;
        let process = self.processes.get_mut(&asid).expect("caller validated asid");
        process.page_table.map_base(vpn, Pte::new(pfn, vma.flags));
        self.frames.set(pfn, FrameState::Movable { owner: asid, vpn });
        self.stats.pages_populated += 1;
        self.stats.physical_runs += 1;
        Ok(())
    }

    /// Marks a page dirty (sets the DIRTY attribute on its PTE). Note
    /// that diverging attributes end contiguity runs (paper §5.1.1).
    ///
    /// # Errors
    /// [`MemError::NotMapped`] if `vpn` has no base-page mapping.
    pub fn mark_dirty(&mut self, asid: Asid, vpn: Vpn) -> MemResult<()> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(MemError::NoSuchProcess { asid })?;
        process
            .page_table
            .add_flags_base(vpn, PteFlags::DIRTY)
            .map(|_| ())
            .ok_or(MemError::NotMapped { vpn })
    }

    /// Frees the allocation starting at `start`, returning every frame to
    /// the buddy allocator.
    ///
    /// # Errors
    /// [`MemError::NotAllocationStart`] when `start` does not begin an
    /// allocation.
    pub fn free(&mut self, asid: Asid, start: Vpn) -> MemResult<()> {
        let process = self
            .processes
            .get_mut(&asid)
            .ok_or(MemError::NoSuchProcess { asid })?;
        let vma = process.address_space.remove(start)?;
        let mut vpn = vma.start;
        let end = vma.end();
        while vpn < end {
            match process.page_table.translate(vpn) {
                Some(Translation { kind: PageKind::Super { base_vpn }, .. }) => {
                    let entry_addrs = if self.shootdowns.is_enabled() {
                        process
                            .page_table
                            .walk(base_vpn)
                            .map(|p| p.entry_addrs)
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    let pte = process
                        .page_table
                        .unmap_super(base_vpn)
                        .expect("translation said superpage");
                    self.shootdowns.record(ShootdownEvent {
                        asid,
                        vpn: base_vpn,
                        kind: ShootdownKind::Unmap,
                        entry_addrs,
                        old_pfn: Some(pte.pfn),
                        new_pfn: None,
                    });
                    for i in 0..SUPERPAGE_PAGES {
                        self.frames.set(pte.pfn.offset(i), FrameState::Free);
                    }
                    self.buddy.free_block(pte.pfn, 9);
                    self.live_superpages
                        .retain(|&(a, v)| !(a == asid && v == base_vpn));
                    vpn = base_vpn.offset(SUPERPAGE_PAGES);
                }
                Some(Translation { kind: PageKind::Base, .. }) => {
                    let entry_addrs = if self.shootdowns.is_enabled() {
                        process.page_table.walk(vpn).map(|p| p.entry_addrs).unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    let pte = process.page_table.unmap_base(vpn).expect("mapped");
                    self.shootdowns.record(ShootdownEvent {
                        asid,
                        vpn,
                        kind: ShootdownKind::Unmap,
                        entry_addrs,
                        old_pfn: Some(pte.pfn),
                        new_pfn: None,
                    });
                    self.frames.set(pte.pfn, FrameState::Free);
                    self.buddy.free_block(pte.pfn, 0);
                    vpn = vpn.next();
                }
                None => vpn = vpn.next(),
            }
        }
        Ok(())
    }

    /// Runs one full compaction pass immediately.
    pub fn compact_now(&mut self) -> CompactionStats {
        let stats = compaction::compact_logged(
            &mut self.buddy,
            &mut self.frames,
            &mut self.processes,
            CompactionControl::default(),
            &mut self.shootdowns,
        );
        self.stats.compaction_runs += 1;
        self.stats.pages_migrated += stats.migrated;
        stats
    }

    /// Direct compaction targeted at making one block of `order` free,
    /// bounded at `max_migrations` of work (real direct compaction gives
    /// up rather than stalling the faulting process indefinitely).
    fn compact_bounded(&mut self, order: u32, max_migrations: u64) -> CompactionStats {
        self.stats.policy_compactions_requested += 1;
        let control =
            CompactionControl { target_order: Some(order), max_migrations: Some(max_migrations) }
                .scaled(self.policy().compaction_budget_factor());
        let stats = compaction::compact_logged(
            &mut self.buddy,
            &mut self.frames,
            &mut self.processes,
            control,
            &mut self.shootdowns,
        );
        self.stats.compaction_runs += 1;
        self.stats.pages_migrated += stats.migrated;
        stats
    }

    /// Background activity hook: call periodically (the paper's daemon is
    /// "system background activity"). In [`CompactionMode::Normal`] this
    /// runs a bounded compaction slice when fragmentation exceeds the
    /// configured threshold (kcompactd-style), and lets the THS pressure
    /// daemon split superpages when memory is low.
    pub fn tick(&mut self) {
        // Injected pressure spike: kswapd wakes and evicts page cache.
        if let Some(spike) = self.take_reclaim_spike() {
            self.reclaim_file_pages(spike);
        }
        // Background compaction exists to serve high-order (THP) demand:
        // with THS off the default policy almost never wakes it up (paper
        // §6.2, "disabling THS drastically reduces memory compaction
        // daemon invocations"). The policy decides the trigger; the
        // scenario's compaction mode still gates the daemon entirely.
        let scattered = self.buddy.small_free_fraction(6) > 0.30;
        self.stats.policy_decisions += 1;
        if self.config.compaction == CompactionMode::Normal
            && self.policy().background_compaction(
                self.config.ths_enabled,
                scattered,
                self.buddy.fragmentation_index(),
                self.config.compaction_frag_threshold,
            )
        {
            self.stats.policy_compactions_requested += 1;
            if self.inject_compaction_abort() {
                // The daemon's slice is skipped this round.
                self.stats.compact_deferred += 1;
            } else {
                let slice = self.policy().background_slice(self.buddy.nr_frames());
                let stats = compaction::compact_logged(
                    &mut self.buddy,
                    &mut self.frames,
                    &mut self.processes,
                    CompactionControl::slice(slice),
                    &mut self.shootdowns,
                );
                self.stats.compaction_runs += 1;
                self.stats.pages_migrated += stats.migrated;
            }
        }
        self.maybe_split_under_pressure();
        self.khugepaged_scan();
    }

    /// Queues a THP-fallback region for a deferred khugepaged collapse.
    /// Part of the degradation model: inert unless a fault plan is
    /// installed, keeping the fault-free kernel's behavior untouched.
    fn note_thp_deferral(&mut self, asid: Asid, base_vpn: Vpn) {
        if self.faults.is_none()
            || self.thp_deferred.len() >= THP_DEFER_QUEUE_MAX
            || self.thp_deferred.iter().any(|&(a, v, _)| a == asid && v == base_vpn)
        {
            return;
        }
        self.thp_deferred.push_back((asid, base_vpn, 0));
    }

    /// khugepaged: rescans a few deferred regions, collapsing those whose
    /// 512 pages are all base-mapped into a freshly allocated superpage.
    /// Transient failures are retried up to [`THP_RETRY_BUDGET`] times.
    fn khugepaged_scan(&mut self) {
        for _ in 0..COLLAPSES_PER_TICK {
            let Some((asid, base_vpn, retries)) = self.thp_deferred.pop_front() else {
                return;
            };
            self.stats.thp_deferred_retries += 1;
            match self.try_collapse(asid, base_vpn) {
                CollapseOutcome::Collapsed | CollapseOutcome::Gone => {}
                CollapseOutcome::Retry => {
                    if retries + 1 < THP_RETRY_BUDGET {
                        self.thp_deferred.push_back((asid, base_vpn, retries + 1));
                    }
                }
            }
        }
    }

    /// One collapse attempt: migrate the 512 base pages at `base_vpn`
    /// into a fresh naturally aligned block and remap them as one
    /// superpage — khugepaged's copy+remap, costing one `Migrate`
    /// shootdown per page.
    fn try_collapse(&mut self, asid: Asid, base_vpn: Vpn) -> CollapseOutcome {
        let Some(process) = self.processes.get(&asid) else {
            return CollapseOutcome::Gone;
        };
        // The whole range must still sit inside one anonymous VMA.
        let eligible = process.address_space.find(base_vpn).is_some_and(|vma| {
            vma.kind == VmaKind::Anonymous
                && base_vpn >= vma.start
                && base_vpn.offset(SUPERPAGE_PAGES) <= vma.end()
        });
        if !eligible {
            return CollapseOutcome::Gone;
        }
        self.stats.policy_decisions += 1;
        match thp::collapse_scan_policy(self.policy(), process, base_vpn) {
            thp::CollapseScan::Ineligible => return CollapseOutcome::Gone,
            thp::CollapseScan::Holes => return CollapseOutcome::Retry,
            thp::CollapseScan::Ready => {}
        }
        self.stats.policy_collapses_triggered += 1;
        // The target block is an allocation like any other: subject to
        // injection, and to there simply being no order-9 block yet.
        if self.inject_alloc_failure() {
            return CollapseOutcome::Retry;
        }
        let Some(new_base) = thp::try_alloc_superpage(&mut self.buddy) else {
            return CollapseOutcome::Retry;
        };
        let process = self.processes.get_mut(&asid).expect("checked above");
        let mut flags: Option<PteFlags> = None;
        for i in 0..SUPERPAGE_PAGES {
            let vpn = base_vpn.offset(i);
            let entry_addrs = if self.shootdowns.is_enabled() {
                process.page_table.walk(vpn).map(|p| p.entry_addrs).unwrap_or_default()
            } else {
                Vec::new()
            };
            let old = process.page_table.unmap_base(vpn).expect("scan said base-mapped");
            // The superpage PTE carries the union of the base flags (a
            // dirty page keeps the collapsed region dirty).
            flags = Some(flags.map_or(old.flags, |f| f.with(old.flags)));
            self.shootdowns.record(ShootdownEvent {
                asid,
                vpn,
                kind: ShootdownKind::Migrate,
                entry_addrs,
                old_pfn: Some(old.pfn),
                new_pfn: Some(new_base.offset(i)),
            });
            self.frames.set(old.pfn, FrameState::Free);
            self.buddy.free_block(old.pfn, 0);
        }
        let flags = flags.expect("512 pages merged");
        process.page_table.map_super(base_vpn, Pte::new(new_base, flags));
        thp::record_superpage_frames(&mut self.frames, asid, base_vpn, new_base);
        self.live_superpages.push_back((asid, base_vpn));
        self.stats.thp_allocs += 1;
        CollapseOutcome::Collapsed
    }

    /// Splits oldest-first superpages while the free-memory watermark is
    /// violated (at most a few per invocation, as a daemon would).
    fn maybe_split_under_pressure(&mut self) {
        const SPLITS_PER_ROUND: usize = 8;
        for _ in 0..SPLITS_PER_ROUND {
            if !thp::pressure_should_split_policy(
                self.policy(),
                self.buddy.free_frames(),
                self.buddy.nr_frames(),
                self.config.thp_split_watermark,
            ) {
                return;
            }
            let Some((asid, base_vpn)) = self.live_superpages.pop_front() else {
                return;
            };
            self.split_one(asid, base_vpn);
        }
    }

    /// Forcibly splits up to `n` live superpages (oldest first),
    /// regardless of pressure. Returns how many were split.
    pub fn split_superpages(&mut self, n: usize) -> usize {
        let mut done = 0;
        while done < n {
            let Some((asid, base_vpn)) = self.live_superpages.pop_front() else {
                break;
            };
            if self.split_one(asid, base_vpn) {
                done += 1;
            }
        }
        done
    }

    /// Splits one superpage and, when configured, punctures the residual
    /// 512-page run by reclaiming a strided subset of its pages — the
    /// long-run outcome of pressure splitting plus reclaim, leaving
    /// "tens of pages" of contiguity (paper §3.2.3). Reclaimed pages
    /// fault back in on the next [`Kernel::touch`].
    fn split_one(&mut self, asid: Asid, base_vpn: Vpn) -> bool {
        let Some(process) = self.processes.get_mut(&asid) else {
            return false;
        };
        let pre_split = if self.shootdowns.is_enabled() {
            process.page_table.walk(base_vpn).map(|p| (p.entry_addrs, p.translation.pfn))
        } else {
            None
        };
        if !thp::split_superpage(process, &mut self.frames, base_vpn) {
            return false;
        }
        if let Some((entry_addrs, old_pfn)) = pre_split {
            // The superpage leaf is gone; any TLB entry caching it (and
            // the walker's cached path to it) must go too, even though
            // the split itself leaves every translation intact.
            self.shootdowns.record(ShootdownEvent {
                asid,
                vpn: base_vpn,
                kind: ShootdownKind::SuperSplit,
                entry_addrs,
                old_pfn: Some(old_pfn),
                new_pfn: Some(old_pfn),
            });
        }
        self.stats.thp_splits += 1;
        // Only some split superpages see reclaim before their pages are
        // touched again; the rest keep their full 512-page run.
        let hash = base_vpn.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let punctured = (hash >> 29) % 10 < 6;
        if self.policy().split_puncture(self.config.thp_split_puncture) && punctured {
            // Deterministic per-superpage stride in 32..=127.
            let stride = 32 + (hash >> 33) % 96;
            let mut i = stride;
            while i < SUPERPAGE_PAGES {
                let vpn = base_vpn.offset(i);
                // Reclaim + refault: the page comes back on a different
                // frame, severing the run at this point.
                if let Some(run) = self.buddy.alloc_pages(1) {
                    let process = self.processes.get_mut(&asid).expect("checked above");
                    let entry_addrs = if self.shootdowns.is_enabled() {
                        process.page_table.walk(vpn).map(|p| p.entry_addrs).unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    if let Some(old) = process.page_table.remap_base(vpn, run.start) {
                        self.shootdowns.record(ShootdownEvent {
                            asid,
                            vpn,
                            kind: ShootdownKind::Puncture,
                            entry_addrs,
                            old_pfn: Some(old.pfn),
                            new_pfn: Some(run.start),
                        });
                        self.frames
                            .set(run.start, FrameState::Movable { owner: asid, vpn });
                        self.frames.set(old.pfn, FrameState::Free);
                        self.buddy.free_block(old.pfn, 0);
                    } else {
                        self.buddy.free_pages(run);
                    }
                }
                i += stride;
            }
        }
        true
    }

    /// Number of currently live (unsplit) superpages.
    pub fn live_superpage_count(&self) -> usize {
        self.live_superpages.len()
    }

    /// Allocates `pages` of pinned, unmovable memory with no virtual
    /// mapping (kernel allocations; `memhog`'s tool of choice). The
    /// frames come back scattered across as many runs as fragmentation
    /// dictates.
    ///
    /// # Errors
    /// [`MemError::OutOfMemory`] when physical memory is exhausted.
    pub fn allocate_pinned(&mut self, pages: u64) -> MemResult<Vec<PfnRange>> {
        let chunk_cap = 1u64 << self.policy().alloc_chunk_order(self.config.max_alloc_order);
        let mut out = Vec::new();
        let mut remaining = pages;
        while remaining > 0 {
            let chunk = remaining.min(chunk_cap);
            let run = match self.buddy.alloc_pages(chunk) {
                Some(r) => r,
                None => {
                    // No compaction here: pinned memory is exactly what
                    // compaction cannot help with. Page cache can still
                    // be evicted to make room.
                    let shrunk = self.shrink_until_alloc(chunk).or_else(|| {
                        if self.reclaim_file_pages(chunk.max(64)) > 0 {
                            self.shrink_until_alloc(chunk.max(2))
                        } else {
                            None
                        }
                    });
                    match shrunk {
                        Some(r) => r,
                        None => {
                            for r in out {
                                self.free_pinned(r);
                            }
                            return Err(MemError::OutOfMemory { requested_pages: remaining });
                        }
                    }
                }
            };
            for p in run.iter() {
                self.frames.set(p, FrameState::Pinned);
            }
            remaining -= run.pages;
            out.push(run);
        }
        Ok(out)
    }

    fn shrink_until_alloc(&mut self, mut chunk: u64) -> Option<PfnRange> {
        while chunk > 1 {
            chunk /= 2;
            if let Some(r) = self.buddy.alloc_pages(chunk) {
                return Some(r);
            }
        }
        None
    }

    /// Frees one pinned range returned by [`Kernel::allocate_pinned`].
    pub fn free_pinned(&mut self, range: PfnRange) {
        for p in range.iter() {
            debug_assert_eq!(self.frames.state(p), FrameState::Pinned);
            self.frames.set(p, FrameState::Free);
        }
        self.buddy.free_pages(range);
    }

    /// Scans a process's page table and reports its page-allocation
    /// contiguity (paper §3.1 definition).
    ///
    /// # Errors
    /// [`MemError::NoSuchProcess`] when `asid` is unknown.
    pub fn scan_contiguity(&self, asid: Asid) -> MemResult<ContiguityReport> {
        Ok(ContiguityReport::scan(self.process(asid)?.page_table()))
    }
}

impl Snapshot for CompactionMode {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            CompactionMode::Normal => 0,
            CompactionMode::Low => 1,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(CompactionMode::Normal),
            1 => Ok(CompactionMode::Low),
            b => Err(SnapshotError(format!("invalid CompactionMode tag {b:#x}"))),
        }
    }
}

impl Snapshot for PopulateMode {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            PopulateMode::Eager => 0,
            PopulateMode::Demand => 1,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(PopulateMode::Eager),
            1 => Ok(PopulateMode::Demand),
            b => Err(SnapshotError(format!("invalid PopulateMode tag {b:#x}"))),
        }
    }
}

impl Snapshot for KernelConfig {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.nr_frames);
        enc.bool(self.ths_enabled);
        self.compaction.encode(enc);
        self.populate.encode(enc);
        enc.f64(self.compaction_frag_threshold);
        enc.f64(self.thp_split_watermark);
        enc.u32(self.max_alloc_order);
        enc.bool(self.thp_split_puncture);
        enc.u64(self.va_limit_pages);
        self.policy.encode(enc);
        self.faults.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            nr_frames: dec.u64()?,
            ths_enabled: dec.bool()?,
            compaction: CompactionMode::decode(dec)?,
            populate: PopulateMode::decode(dec)?,
            compaction_frag_threshold: dec.f64()?,
            thp_split_watermark: dec.f64()?,
            max_alloc_order: dec.u32()?,
            thp_split_puncture: dec.bool()?,
            va_limit_pages: dec.u64()?,
            policy: PolicyKind::decode(dec)?,
            faults: Option::decode(dec)?,
        })
    }
}

impl Snapshot for KernelStats {
    fn encode(&self, enc: &mut Enc) {
        for v in [
            self.allocations,
            self.pages_requested,
            self.pages_populated,
            self.physical_runs,
            self.thp_allocs,
            self.thp_fallbacks,
            self.thp_splits,
            self.compaction_runs,
            self.pages_migrated,
            self.demand_faults,
            self.pages_reclaimed,
            self.oom_kills,
            self.compact_deferred,
            self.thp_deferred_retries,
            self.faults_injected,
            self.policy_decisions,
            self.policy_huge_grants,
            self.policy_huge_denies,
            self.policy_collapses_triggered,
            self.policy_compactions_requested,
        ] {
            enc.u64(v);
        }
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            allocations: dec.u64()?,
            pages_requested: dec.u64()?,
            pages_populated: dec.u64()?,
            physical_runs: dec.u64()?,
            thp_allocs: dec.u64()?,
            thp_fallbacks: dec.u64()?,
            thp_splits: dec.u64()?,
            compaction_runs: dec.u64()?,
            pages_migrated: dec.u64()?,
            demand_faults: dec.u64()?,
            pages_reclaimed: dec.u64()?,
            oom_kills: dec.u64()?,
            compact_deferred: dec.u64()?,
            thp_deferred_retries: dec.u64()?,
            faults_injected: dec.u64()?,
            policy_decisions: dec.u64()?,
            policy_huge_grants: dec.u64()?,
            policy_huge_denies: dec.u64()?,
            policy_collapses_triggered: dec.u64()?,
            policy_compactions_requested: dec.u64()?,
        })
    }
}

impl Snapshot for Kernel {
    fn encode(&self, enc: &mut Enc) {
        self.config.encode(enc);
        self.buddy.encode(enc);
        self.frames.encode(enc);
        self.processes.encode(enc);
        enc.u32(self.next_asid);
        self.live_superpages.encode(enc);
        self.pcp.encode(enc);
        self.shootdowns.encode(enc);
        self.faults.encode(enc);
        self.thp_deferred.encode(enc);
        enc.u32(self.compact_defer_shift);
        enc.u64(self.compact_backoff);
        self.stats.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            config: KernelConfig::decode(dec)?,
            buddy: BuddyAllocator::decode(dec)?,
            frames: FrameDb::decode(dec)?,
            processes: BTreeMap::decode(dec)?,
            next_asid: dec.u32()?,
            live_superpages: VecDeque::decode(dec)?,
            pcp: VecDeque::decode(dec)?,
            shootdowns: ShootdownLog::decode(dec)?,
            faults: Option::decode(dec)?,
            thp_deferred: VecDeque::decode(dec)?,
            compact_defer_shift: dec.u32()?,
            compact_backoff: dec.u64()?,
            stats: KernelStats::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kernel(ths: bool) -> Kernel {
        Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: ths,
            ..KernelConfig::default()
        })
    }

    #[test]
    fn malloc_populates_contiguous_frames_when_memory_is_fresh() {
        let mut k = small_kernel(false);
        let asid = k.spawn();
        let base = k.malloc(asid, 64).unwrap();
        let proc = k.process(asid).unwrap();
        let first = proc.translate(base).unwrap().pfn;
        for i in 0..64 {
            let t = proc.translate(base.offset(i)).unwrap();
            assert_eq!(t.pfn, first.offset(i), "fresh memory yields one run");
        }
        assert_eq!(k.stats().physical_runs, 1);
    }

    #[test]
    fn ths_backs_large_anonymous_allocations_with_superpages() {
        let mut k = small_kernel(true);
        let asid = k.spawn();
        let base = k.malloc(asid, 1024).unwrap();
        assert_eq!(k.stats().thp_allocs, 2);
        assert_eq!(k.live_superpage_count(), 2);
        let proc = k.process(asid).unwrap();
        let t = proc.translate(base.offset(600)).unwrap();
        assert!(matches!(t.kind, PageKind::Super { .. }));
    }

    #[test]
    fn file_backed_mappings_never_use_superpages() {
        let mut k = small_kernel(true);
        let asid = k.spawn();
        let base = k.mmap_file(asid, 1024).unwrap();
        assert_eq!(k.stats().thp_allocs, 0);
        let proc = k.process(asid).unwrap();
        let t = proc.translate(base).unwrap();
        assert_eq!(t.kind, PageKind::Base);
        assert!(t.flags.contains(PteFlags::FILE_BACKED));
    }

    #[test]
    fn free_returns_all_frames() {
        let mut k = small_kernel(true);
        let asid = k.spawn();
        let before = k.free_frames();
        let a = k.malloc(asid, 700).unwrap();
        let b = k.mmap_file(asid, 100).unwrap();
        assert_eq!(k.free_frames(), before - 800);
        k.free(asid, a).unwrap();
        k.free(asid, b).unwrap();
        assert_eq!(k.free_frames(), before);
        k.buddy().check_invariants();
    }

    #[test]
    fn exit_releases_everything() {
        let mut k = small_kernel(true);
        let asid = k.spawn();
        k.malloc(asid, 600).unwrap();
        k.malloc(asid, 37).unwrap();
        k.exit(asid).unwrap();
        assert_eq!(k.free_frames(), 4096);
        assert!(k.process(asid).is_err());
        assert_eq!(k.live_superpage_count(), 0);
    }

    #[test]
    fn touch_unmapped_address_errors() {
        let mut k = small_kernel(false);
        let asid = k.spawn();
        let err = k.touch(asid, Vpn::new(0x5000)).unwrap_err();
        assert!(matches!(err, MemError::NotMapped { .. }));
    }

    #[test]
    fn demand_mode_populates_on_first_touch_only() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: false,
            populate: PopulateMode::Demand,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let before = k.free_frames();
        let base = k.malloc(asid, 100).unwrap();
        assert_eq!(k.free_frames(), before, "demand mode allocates nothing up front");
        let t1 = k.touch(asid, base.offset(5)).unwrap();
        let t2 = k.touch(asid, base.offset(5)).unwrap();
        assert_eq!(t1.pfn, t2.pfn);
        assert_eq!(k.stats().demand_faults, 1);
        // The per-CPU page list grabbed a whole batch; one page is mapped
        // and the rest are parked for the next faults.
        assert!(before - k.free_frames() <= 32);
        assert!(k.free_frames() < before);
    }

    #[test]
    fn demand_mode_with_ths_faults_whole_superpages() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: true,
            populate: PopulateMode::Demand,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let base = k.malloc(asid, 1024).unwrap();
        k.touch(asid, base.offset(100)).unwrap();
        assert_eq!(k.stats().thp_allocs, 1);
        let proc = k.process(asid).unwrap();
        assert!(matches!(
            proc.translate(base.offset(511)).unwrap().kind,
            PageKind::Super { .. }
        ));
        assert!(proc.translate(base.offset(512)).is_none(), "next superpage untouched");
    }

    #[test]
    fn pressure_splits_superpages_oldest_first() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 2048,
            ths_enabled: true,
            thp_split_watermark: 0.30,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        // Two superpages = 1024 pages; free fraction 50%, above watermark.
        k.malloc(asid, 1024).unwrap();
        assert_eq!(k.live_superpage_count(), 2);
        // Another 600 pages drops free fraction below 30% → splits begin.
        k.malloc(asid, 600).unwrap();
        assert!(k.stats().thp_splits > 0, "pressure daemon must split");
    }

    #[test]
    fn fragmentation_triggers_direct_compaction() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 1024,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        // Fill memory completely, then free every other allocation so the
        // 512 free frames are shattered into 32-page chunks.
        let mut allocs = Vec::new();
        for _ in 0..32 {
            allocs.push(k.malloc(asid, 32).unwrap());
        }
        for (i, a) in allocs.iter().enumerate() {
            if i % 2 == 0 {
                k.free(asid, *a).unwrap();
            }
        }
        // A 256-page request (order-6 chunks under the cap) cannot be
        // satisfied without compaction: only 32-page holes are free.
        k.malloc(asid, 256).unwrap();
        assert!(k.stats().compaction_runs > 0, "direct compaction must run");
        // And compaction must have produced at least one full-order run.
        let report = k.scan_contiguity(asid).unwrap();
        assert!(report.max_contiguity() >= 64, "got {}", report.max_contiguity());
    }

    #[test]
    fn low_compaction_mode_never_compacts() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 1024,
            ths_enabled: false,
            compaction: CompactionMode::Low,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let mut allocs = Vec::new();
        for _ in 0..16 {
            allocs.push(k.malloc(asid, 32).unwrap());
        }
        for (i, a) in allocs.iter().enumerate() {
            if i % 2 == 0 {
                k.free(asid, *a).unwrap();
            }
        }
        k.malloc(asid, 256).unwrap();
        k.tick();
        assert_eq!(k.stats().compaction_runs, 0);
    }

    #[test]
    fn allocation_degrades_to_scattered_runs_under_fragmentation() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 512,
            ths_enabled: false,
            compaction: CompactionMode::Low,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        // Fill memory completely, then free every other allocation.
        let mut allocs = Vec::new();
        for _ in 0..16 {
            allocs.push(k.malloc(asid, 32).unwrap());
        }
        for (i, a) in allocs.iter().enumerate() {
            if i % 2 == 0 {
                k.free(asid, *a).unwrap();
            }
        }
        // 256 pages exist free but shattered into 32-page chunks; with
        // compaction off the allocation must degrade to multiple runs.
        let runs_before = k.stats().physical_runs;
        k.malloc(asid, 120).unwrap();
        assert!(
            k.stats().physical_runs > runs_before + 1,
            "fragmented allocation requires multiple runs"
        );
    }

    #[test]
    fn pinned_allocations_are_unmovable_and_freeable() {
        let mut k = small_kernel(false);
        let ranges = k.allocate_pinned(100).unwrap();
        let total: u64 = ranges.iter().map(|r| r.pages).sum();
        assert_eq!(total, 100);
        assert_eq!(k.frames().counts().pinned, 100);
        for r in ranges {
            k.free_pinned(r);
        }
        assert_eq!(k.frames().counts().pinned, 0);
        assert_eq!(k.free_frames(), 4096);
    }

    #[test]
    fn oom_rolls_back_cleanly() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 256,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        k.malloc(asid, 200).unwrap();
        let err = k.malloc(asid, 100).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        // The failed allocation must not leak frames.
        assert_eq!(k.free_frames(), 56);
    }

    mod no_leak_properties {
        use super::*;
        use colt_quickprop::prelude::*;

        proptest! {
            /// Extends `oom_rolls_back_cleanly`: under any injected fault
            /// sequence, a failed multi-frame/THP allocation leaves buddy
            /// free-frame accounting and page-table state exactly as
            /// before the attempt, and total memory stays conserved.
            #[test]
            fn failed_allocations_never_leak_under_injection(
                seed in 0u64..1_000_000,
                rate in 0.05f64..0.9,
                window in 0u64..16,
                sizes in prop::collection::vec(1u64..700, 1..12),
            ) {
                let mut k = Kernel::new(KernelConfig {
                    nr_frames: 1024,
                    faults: Some(FaultConfig { rate, window, seed }),
                    ..KernelConfig::default()
                });
                let asid = k.spawn();
                let mapped = |k: &Kernel| {
                    let s = k.process(asid).unwrap().page_table().stats();
                    s.base_pages + s.superpages * SUPERPAGE_PAGES
                };
                let mut live: Vec<Vpn> = Vec::new();
                for (i, pages) in sizes.into_iter().enumerate() {
                    let avail_before = k.free_frames() + k.pcp_parked();
                    let mapped_before = mapped(&k);
                    match k.malloc(asid, pages) {
                        Ok(base) => live.push(base),
                        Err(_) => {
                            // Exact rollback: with one process there is no
                            // reclaim prey and no OOM victim, so failure
                            // must restore the books precisely.
                            prop_assert_eq!(k.free_frames() + k.pcp_parked(), avail_before);
                            prop_assert_eq!(mapped(&k), mapped_before);
                        }
                    }
                    k.tick();
                    if i % 3 == 2 && !live.is_empty() {
                        k.free(asid, live.remove(0)).unwrap();
                    }
                    // Every frame is free, parked in the PCP, or mapped.
                    prop_assert_eq!(k.free_frames() + k.pcp_parked() + mapped(&k), 1024);
                    k.buddy().check_invariants();
                }
            }
        }
    }

    fn faulty_config(rate: f64, window: u64, seed: u64) -> KernelConfig {
        KernelConfig {
            faults: Some(FaultConfig { rate, window, seed }),
            ..KernelConfig::default()
        }
    }

    #[test]
    fn injected_failures_degrade_allocations_but_they_still_succeed() {
        let mut k = Kernel::new(KernelConfig { nr_frames: 4096, ..faulty_config(0.3, 0, 11) });
        let asid = k.spawn();
        // Many sub-superpage mallocs: each takes several buddy-allocation
        // decisions, so the plan fires with near-certainty — and every
        // allocation must still come back fully mapped.
        for _ in 0..16 {
            let base = k.malloc(asid, 128).expect("free memory absorbs injected failures");
            for i in 0..128 {
                assert!(k.process(asid).unwrap().translate(base.offset(i)).is_some());
            }
        }
        assert!(k.stats().faults_injected > 0, "the plan must have fired");
        k.buddy().check_invariants();
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let script = |k: &mut Kernel| {
            let asid = k.spawn();
            let mut regions = Vec::new();
            for pages in [600u64, 64, 300, 128, 512] {
                if let Ok(base) = k.malloc(asid, pages) {
                    regions.push(base);
                }
                k.tick();
            }
            if let Some(first) = regions.first() {
                let _ = k.free(asid, *first);
            }
            k.tick();
        };
        let cfg = KernelConfig { nr_frames: 2048, ..faulty_config(0.25, 8, 99) };
        let mut a = Kernel::new(cfg);
        let mut b = Kernel::new(cfg);
        script(&mut a);
        script(&mut b);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.free_frames(), b.free_frames());
        assert!(a.stats().faults_injected > 0);
    }

    #[test]
    fn oom_killer_tears_down_the_largest_rss_process() {
        // Rate 0 arms the degradation machinery without injecting any
        // faults: the OOM here is real memory exhaustion.
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 512,
            ths_enabled: false,
            ..faulty_config(0.0, 0, 1)
        });
        let a = k.spawn();
        let b = k.spawn();
        k.malloc(a, 300).unwrap();
        let first = k.malloc(b, 150).unwrap();
        // 512 - 450 leaves too little: without the killer this fails.
        let second = k.malloc(b, 150).expect("the OOM killer must rescue this");
        assert_eq!(k.stats().oom_kills, 1);
        assert!(k.process(a).is_err(), "largest-RSS process was killed");
        for i in 0..150 {
            assert!(k.process(b).unwrap().translate(first.offset(i)).is_some());
            assert!(k.process(b).unwrap().translate(second.offset(i)).is_some());
        }
        k.buddy().check_invariants();
    }

    #[test]
    fn oom_killer_never_kills_the_requester() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 256,
            ths_enabled: false,
            ..faulty_config(0.0, 0, 1)
        });
        let only = k.spawn();
        k.malloc(only, 200).unwrap();
        // The requester is the only (and largest) process; with no other
        // victim the allocation must fail cleanly, exactly as before.
        let err = k.malloc(only, 100).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        assert_eq!(k.stats().oom_kills, 0);
        assert!(k.process(only).is_ok());
    }

    #[test]
    fn compaction_backoff_grows_exponentially_and_resets() {
        let mut k = Kernel::new(faulty_config(0.0, 0, 1));
        assert!(k.direct_compaction_allowed());
        k.defer_compaction(); // backoff = 1, shift -> 1
        assert!(!k.direct_compaction_allowed());
        assert!(k.direct_compaction_allowed());
        k.defer_compaction(); // backoff = 2, shift -> 2
        assert!(!k.direct_compaction_allowed());
        assert!(!k.direct_compaction_allowed());
        assert!(k.direct_compaction_allowed());
        assert_eq!(k.stats().compact_deferred, 3);
        k.reset_compaction_backoff();
        k.defer_compaction();
        assert_eq!(k.compact_backoff, 1, "shift restarts after a success");
    }

    #[test]
    fn backoff_is_inert_without_a_fault_plan() {
        let mut k = small_kernel(true);
        k.defer_compaction();
        assert!(k.direct_compaction_allowed());
        assert_eq!(k.stats().compact_deferred, 0);
    }

    #[test]
    fn khugepaged_collapses_a_deferred_region_once_memory_frees_up() {
        // THS on but compaction Low: a fragmented order-9 request cannot
        // be rescued at malloc time, so it falls back and is queued.
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 2048,
            compaction: CompactionMode::Low,
            ..faulty_config(0.0, 0, 1)
        });
        let asid = k.spawn();
        // Fill all of memory with 64-page file mappings, then free every
        // other one: 1024 frames free, no order-9 block anywhere.
        let files: Vec<Vpn> = (0..32).map(|_| k.mmap_file(asid, 64).unwrap()).collect();
        for (i, f) in files.iter().enumerate() {
            if i % 2 == 0 {
                k.free(asid, *f).unwrap();
            }
        }
        let base = k.malloc(asid, 512).unwrap();
        assert_eq!(k.stats().thp_fallbacks, 1);
        assert_eq!(k.live_superpage_count(), 0);
        // Free the remaining file mappings: order-9 blocks exist again.
        for (i, f) in files.iter().enumerate() {
            if i % 2 == 1 {
                k.free(asid, *f).unwrap();
            }
        }
        k.tick();
        assert!(k.stats().thp_deferred_retries >= 1);
        assert_eq!(k.stats().thp_allocs, 1, "the region collapsed");
        assert_eq!(k.live_superpage_count(), 1);
        let t = k.process(asid).unwrap().translate(base.offset(100)).unwrap();
        assert!(matches!(t.kind, PageKind::Super { .. }));
        // Conservation: 512 mapped pages, everything else free.
        assert_eq!(k.free_frames() + k.pcp_parked(), 2048 - 512);
        k.buddy().check_invariants();
    }

    #[test]
    fn collapse_of_a_freed_region_is_dropped() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 2048,
            compaction: CompactionMode::Low,
            ..faulty_config(0.0, 0, 1)
        });
        let asid = k.spawn();
        let files: Vec<Vpn> = (0..32).map(|_| k.mmap_file(asid, 64).unwrap()).collect();
        for (i, f) in files.iter().enumerate() {
            if i % 2 == 0 {
                k.free(asid, *f).unwrap();
            }
        }
        let base = k.malloc(asid, 512).unwrap();
        k.free(asid, base).unwrap();
        k.tick();
        assert_eq!(k.stats().thp_allocs, 0, "freed region must not collapse");
        assert_eq!(k.thp_deferred.len(), 0);
    }

    #[test]
    fn user_allocations_respect_the_block_order_cap() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: false,
            max_alloc_order: 4,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        k.malloc(asid, 256).unwrap();
        // 256 pages at order-4 cap = at least 16 separate runs...
        assert!(k.stats().physical_runs >= 16);
        // ...but carved adjacently from fresh memory, so contiguity still
        // spans the whole allocation (the emergent-run effect).
        let report = k.scan_contiguity(asid).unwrap();
        assert_eq!(report.max_contiguity(), 256);
    }

    #[test]
    fn reclaim_evicts_only_file_pages_and_they_fault_back() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 1024,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let anon = k.malloc(asid, 64).unwrap();
        let file = k.mmap_file(asid, 64).unwrap();
        let evicted = k.reclaim_file_pages(32);
        assert_eq!(evicted, 32);
        assert_eq!(k.stats().pages_reclaimed, 32);
        // Anonymous pages untouched.
        for i in 0..64 {
            assert!(k.process(asid).unwrap().translate(anon.offset(i)).is_some());
        }
        // Some file pages unmapped, but they fault back on touch.
        let unmapped = (0..64)
            .filter(|&i| k.process(asid).unwrap().translate(file.offset(i)).is_none())
            .count();
        assert_eq!(unmapped, 32);
        for i in 0..64 {
            let t = k.touch(asid, file.offset(i)).unwrap();
            assert!(t.flags.contains(PteFlags::FILE_BACKED));
        }
    }

    #[test]
    fn allocation_under_pressure_reclaims_instead_of_oom() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 512,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        k.mmap_file(asid, 300).unwrap(); // page cache fills memory
        k.malloc(asid, 120).unwrap();
        // 512 - 300 - 120 = 92 free minus PCP slack: the next allocation
        // cannot fit without evicting page cache.
        let base = k.malloc(asid, 150).expect("reclaim must rescue this");
        assert!(k.stats().pages_reclaimed > 0);
        for i in 0..150 {
            assert!(k.process(asid).unwrap().translate(base.offset(i)).is_some());
        }
    }

    #[test]
    fn pcp_gives_sequential_faults_adjacent_frames() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let base = k.reserve(asid, 16, crate::vma::VmaKind::Anonymous).unwrap();
        let mut pfns = Vec::new();
        for i in 0..16 {
            pfns.push(k.touch(asid, base.offset(i)).unwrap().pfn);
        }
        // All 16 frames come from one PCP batch: perfectly ascending.
        for w in pfns.windows(2) {
            assert!(w[0].is_followed_by(w[1]), "PCP batch must be adjacent: {w:?}");
        }
    }

    #[test]
    fn pcp_is_shared_between_processes() {
        // Interleaved faults from two processes split one batch between
        // them — exactly how interference breaks faulted contiguity.
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 4096,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let a = k.spawn();
        let b = k.spawn();
        let base_a = k.reserve(a, 8, crate::vma::VmaKind::Anonymous).unwrap();
        let base_b = k.reserve(b, 8, crate::vma::VmaKind::Anonymous).unwrap();
        let mut a_pfns = Vec::new();
        for i in 0..8 {
            a_pfns.push(k.touch(a, base_a.offset(i)).unwrap().pfn);
            k.touch(b, base_b.offset(i)).unwrap();
        }
        // Process A's frames are strided by 2 (B took every other one):
        // adjacency in A's address space is broken.
        assert!(
            a_pfns.windows(2).any(|w| !w[0].is_followed_by(w[1])),
            "interleaved faulting must break adjacency: {a_pfns:?}"
        );
    }

    #[test]
    fn punctured_split_breaks_the_residual_run() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 8192,
            ths_enabled: true,
            thp_split_puncture: true,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        // Allocate until a superpage whose vpn hashes to "punctured".
        let mut punctured_seen = false;
        for _ in 0..8 {
            let base = k.malloc(asid, 512).unwrap();
            if k.live_superpage_count() == 0 {
                continue; // THP failed (unlikely on fresh memory)
            }
            k.split_superpages(1);
            let report = k.scan_contiguity(asid).unwrap();
            if report.runs().len() > 1 {
                punctured_seen = true;
                // The punctured pages are still mapped (remapped to new
                // frames), so the footprint is intact.
                for i in 0..512 {
                    assert!(
                        k.process(asid).unwrap().translate(base.offset(i)).is_some(),
                        "punctured page {i} must stay mapped"
                    );
                }
                break;
            }
            k.free(asid, base).unwrap();
        }
        assert!(punctured_seen, "some split must be punctured (60% rate)");
    }

    #[test]
    fn unpunctured_splits_keep_full_512_runs() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 8192,
            ths_enabled: true,
            thp_split_puncture: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        k.malloc(asid, 512).unwrap();
        assert_eq!(k.live_superpage_count(), 1);
        k.split_superpages(1);
        let report = k.scan_contiguity(asid).unwrap();
        assert_eq!(report.max_contiguity(), 512, "puncturing disabled");
    }

    #[test]
    fn freeing_a_punctured_split_returns_every_frame() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 8192,
            ths_enabled: true,
            thp_split_puncture: true,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let before = k.free_frames();
        // Find a punctured split (60% hash rate) and free it.
        for _ in 0..8 {
            let base = k.malloc(asid, 512).unwrap();
            k.split_superpages(k.live_superpage_count());
            k.free(asid, base).unwrap();
        }
        // Everything came back (modulo frames parked in the PCP).
        let parked = before - k.free_frames();
        assert!(parked <= 32, "at most one PCP batch may stay parked, got {parked}");
        assert_eq!(k.live_superpage_count(), 0);
    }

    #[test]
    fn exit_after_thp_splits_balances_memory() {
        let mut k = Kernel::new(KernelConfig { nr_frames: 8192, ..KernelConfig::default() });
        let before = k.free_frames();
        let asid = k.spawn();
        k.malloc(asid, 1024).unwrap();
        k.malloc(asid, 100).unwrap();
        k.split_superpages(1);
        k.exit(asid).unwrap();
        let parked = before - k.free_frames();
        assert!(parked <= 32, "only PCP slack may remain, got {parked}");
    }

    #[test]
    fn reclaim_with_no_file_pages_is_a_noop() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 1024,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        k.malloc(asid, 64).unwrap();
        assert_eq!(k.reclaim_file_pages(100), 0);
        assert_eq!(k.stats().pages_reclaimed, 0);
    }

    #[test]
    fn reclaimable_file_pages_counts_exactly() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 2048,
            ths_enabled: false,
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        k.malloc(asid, 64).unwrap();
        k.mmap_file(asid, 37).unwrap();
        assert_eq!(k.reclaimable_file_pages(), 37);
    }

    #[test]
    fn mark_dirty_sets_pte_flag() {
        let mut k = small_kernel(false);
        let asid = k.spawn();
        let base = k.malloc(asid, 4).unwrap();
        k.mark_dirty(asid, base.offset(1)).unwrap();
        let t = k.process(asid).unwrap().translate(base.offset(1)).unwrap();
        assert!(t.flags.contains(PteFlags::DIRTY));
        let t0 = k.process(asid).unwrap().translate(base).unwrap();
        assert!(!t0.flags.contains(PteFlags::DIRTY));
    }

    /// Drives a kernel through an aging-style workout and asserts that a
    /// snapshot round trip reproduces every observable: stats, free
    /// frames, translations, walk addresses, and — critically — *future*
    /// behavior (the decoded kernel must allocate and fault-inject
    /// exactly like the original from here on).
    #[test]
    fn kernel_snapshot_round_trip_is_bit_equivalent() {
        let mut k = Kernel::new(KernelConfig {
            nr_frames: 8192,
            faults: Some(FaultConfig { rate: 0.1, window: 16, seed: 5 }),
            ..KernelConfig::default()
        });
        let asid = k.spawn();
        let big = k.malloc(asid, 1024).unwrap();
        let small = k.malloc(asid, 37).unwrap();
        k.mmap_file(asid, 64).unwrap();
        k.split_superpages(1);
        k.tick();
        k.free(asid, small).unwrap();

        let mut enc = Enc::new();
        k.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        let mut back = Kernel::decode(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(back.stats(), k.stats());
        assert_eq!(back.free_frames(), k.free_frames());
        for i in [0u64, 100, 511, 1023] {
            assert_eq!(
                back.process(asid).unwrap().translate(big.offset(i)),
                k.process(asid).unwrap().translate(big.offset(i))
            );
            assert_eq!(
                back.process(asid).unwrap().page_table().walk(big.offset(i)),
                k.process(asid).unwrap().page_table().walk(big.offset(i))
            );
        }

        // Divergence test: both kernels must do the same things next.
        for _ in 0..8 {
            let a = k.malloc(asid, 96);
            let b = back.malloc(asid, 96);
            assert_eq!(a, b);
            k.tick();
            back.tick();
        }
        assert_eq!(back.stats(), k.stats());
        assert_eq!(back.free_frames(), k.free_frames());
        assert_eq!(back.stats().faults_injected, k.stats().faults_injected);
    }
}
