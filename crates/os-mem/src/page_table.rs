//! Four-level radix page table (x86-64 style).
//!
//! Each node holds 512 entries and is placed at a distinct simulated
//! physical address so the page-table *walker* in `colt-memsim` can model
//! the memory accesses of a walk — in particular, that the final walk step
//! fetches a 64-byte cache line containing the PTEs of eight consecutive
//! virtual pages, the window CoLT's coalescing logic inspects (paper
//! §4.1.4). Superpages are leaves at the second-lowest level (2MB).

use crate::addr::{Pfn, PhysAddr, Vpn, PTES_PER_LINE, PT_FANOUT, PT_LEVELS, SUPERPAGE_PAGES};
use crate::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use std::fmt;

/// Simulated physical region where page-table nodes live, placed far above
/// any RAM the buddy allocator manages so addresses never collide.
const PT_NODE_REGION_BASE: u64 = 1 << 40;

/// Page-table entry attribute/permission bits. Contiguous translations
/// may be coalesced only when *all* attribute bits match (paper §5.1.1:
/// "contiguous translations must share the same page attributes").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(u16);

impl PteFlags {
    /// Writable mapping.
    pub const WRITABLE: PteFlags = PteFlags(1 << 0);
    /// User-accessible mapping.
    pub const USER: PteFlags = PteFlags(1 << 1);
    /// Page has been written.
    pub const DIRTY: PteFlags = PteFlags(1 << 2);
    /// Page has been referenced.
    pub const ACCESSED: PteFlags = PteFlags(1 << 3);
    /// Global mapping (not flushed on context switch).
    pub const GLOBAL: PteFlags = PteFlags(1 << 4);
    /// Execution disabled.
    pub const NO_EXEC: PteFlags = PteFlags(1 << 5);
    /// Backed by a file rather than anonymous memory. File-backed pages
    /// are not THS superpage candidates (paper §6.1).
    pub const FILE_BACKED: PteFlags = PteFlags(1 << 6);

    /// The empty flag set.
    pub const fn empty() -> Self {
        PteFlags(0)
    }

    /// The default flags for an anonymous user data page.
    pub fn user_data() -> Self {
        PteFlags::WRITABLE | PteFlags::USER | PteFlags::NO_EXEC
    }

    /// True when all bits of `other` are set in `self`.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `self` with the bits of `other` added.
    #[must_use]
    pub const fn with(self, other: PteFlags) -> Self {
        PteFlags(self.0 | other.0)
    }

    /// Returns `self` with the bits of `other` removed.
    #[must_use]
    pub const fn without(self, other: PteFlags) -> Self {
        PteFlags(self.0 & !other.0)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u16 {
        self.0
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 | rhs.0)
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (PteFlags::WRITABLE, "W"),
            (PteFlags::USER, "U"),
            (PteFlags::DIRTY, "D"),
            (PteFlags::ACCESSED, "A"),
            (PteFlags::GLOBAL, "G"),
            (PteFlags::NO_EXEC, "NX"),
            (PteFlags::FILE_BACKED, "F"),
        ];
        write!(f, "PteFlags(")?;
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        write!(f, ")")
    }
}

/// A leaf page-table entry: target frame plus attributes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pte {
    /// Target physical frame (for superpage leaves, the 512-aligned base).
    pub pfn: Pfn,
    /// Attribute bits.
    pub flags: PteFlags,
}

impl Pte {
    /// Creates a PTE.
    pub fn new(pfn: Pfn, flags: PteFlags) -> Self {
        Self { pfn, flags }
    }
}

/// What kind of page a translation resolved to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageKind {
    /// A 4KB base page.
    Base,
    /// A 2MB superpage; `base_vpn` is its first virtual page.
    Super {
        /// First virtual page of the superpage.
        base_vpn: Vpn,
    },
}

/// The result of translating one virtual page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Translation {
    /// Physical frame backing the queried virtual page.
    pub pfn: Pfn,
    /// Attribute bits of the mapping.
    pub flags: PteFlags,
    /// Base page or superpage.
    pub kind: PageKind,
}

/// The memory accesses a hardware walk of one virtual page would perform:
/// the physical address of the page-table entry read at each level, from
/// the root (level 3) down to the leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalkPath {
    /// Entry addresses in root-to-leaf order (4 for a base page,
    /// 3 for a superpage).
    pub entry_addrs: Vec<PhysAddr>,
    /// The translation found at the leaf.
    pub translation: Translation,
}

/// A cache line's worth of final-level PTEs: the eight (possibly absent)
/// translations for virtual pages `base_vpn .. base_vpn + 8`, fetched by
/// one LLC access during a page walk. This is exactly the material CoLT's
/// coalescing logic inspects (paper §4.1.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PteLine {
    /// First virtual page covered (aligned to eight pages).
    pub base_vpn: Vpn,
    /// The eight PTE slots.
    pub ptes: [Option<Pte>; PTES_PER_LINE as usize],
}

impl PteLine {
    /// Index of `vpn` within the line.
    ///
    /// # Panics
    /// Panics if `vpn` is outside the line.
    pub fn slot_of(&self, vpn: Vpn) -> usize {
        let d = vpn.distance_from(self.base_vpn).expect("vpn below line base");
        assert!(d < PTES_PER_LINE, "vpn beyond line");
        d as usize
    }
}

#[derive(Clone, Debug)]
enum Entry {
    Empty,
    Table(Box<Node>),
    LeafBase(Pte),
    LeafSuper(Pte),
}

#[derive(Clone, Debug)]
struct Node {
    /// Simulated physical base address of this 4KB table node.
    phys: PhysAddr,
    entries: Vec<Entry>,
    /// Number of non-empty entries, for cheap node reclamation checks.
    live: u16,
}

impl Node {
    fn new(id: u64) -> Self {
        let mut entries = Vec::with_capacity(PT_FANOUT as usize);
        entries.resize_with(PT_FANOUT as usize, || Entry::Empty);
        Self {
            phys: PhysAddr::new(PT_NODE_REGION_BASE + id * 4096),
            entries,
            live: 0,
        }
    }

    fn entry_addr(&self, index: usize) -> PhysAddr {
        self.phys.offset(index as u64 * 8)
    }
}

/// Index of `vpn` at radix `level` (level 3 = root, level 0 = last).
fn level_index(vpn: Vpn, level: usize) -> usize {
    ((vpn.raw() >> (9 * level)) & (PT_FANOUT - 1)) as usize
}

/// Statistics about the mappings held in a page table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PageTableStats {
    /// Number of mapped 4KB base pages.
    pub base_pages: u64,
    /// Number of mapped 2MB superpages.
    pub superpages: u64,
    /// Number of allocated table nodes.
    pub nodes: u64,
}

/// A four-level radix page table for one address space.
///
/// ```
/// use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
/// use colt_os_mem::addr::{Pfn, Vpn};
/// let mut pt = PageTable::new();
/// pt.map_base(Vpn::new(1), Pte::new(Pfn::new(58), PteFlags::user_data()));
/// let t = pt.translate(Vpn::new(1)).expect("mapped");
/// assert_eq!(t.pfn, Pfn::new(58));
/// ```
#[derive(Clone, Debug)]
pub struct PageTable {
    root: Node,
    next_node_id: u64,
    base_pages: u64,
    superpages: u64,
    nodes: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self {
            root: Node::new(0),
            next_node_id: 1,
            base_pages: 0,
            superpages: 0,
            nodes: 1,
        }
    }

    /// Current mapping statistics.
    pub fn stats(&self) -> PageTableStats {
        PageTableStats {
            base_pages: self.base_pages,
            superpages: self.superpages,
            nodes: self.nodes,
        }
    }

    fn alloc_node(next_node_id: &mut u64, nodes: &mut u64) -> Box<Node> {
        let id = *next_node_id;
        *next_node_id += 1;
        *nodes += 1;
        Box::new(Node::new(id))
    }

    /// Descends to the node at `target_level` covering `vpn`, creating
    /// intermediate nodes as needed.
    ///
    /// # Panics
    /// Panics if the path is blocked by an existing superpage leaf.
    fn node_at_mut(&mut self, vpn: Vpn, target_level: usize) -> &mut Node {
        let next_node_id = &mut self.next_node_id;
        let nodes = &mut self.nodes;
        let mut node = &mut self.root;
        let mut level = PT_LEVELS - 1;
        while level > target_level {
            let idx = level_index(vpn, level);
            let entry = &mut node.entries[idx];
            match entry {
                Entry::Empty => {
                    *entry = Entry::Table(Self::alloc_node(next_node_id, nodes));
                    node.live += 1;
                }
                Entry::Table(_) => {}
                Entry::LeafBase(_) | Entry::LeafSuper(_) => {
                    panic!("mapping path blocked by existing leaf at level {level}")
                }
            }
            let Entry::Table(child) = entry else { unreachable!() };
            node = child;
            level -= 1;
        }
        node
    }

    /// Maps a 4KB base page.
    ///
    /// # Panics
    /// Panics if `vpn` is already mapped (by a base page or an enclosing
    /// superpage).
    pub fn map_base(&mut self, vpn: Vpn, pte: Pte) {
        let node = self.node_at_mut(vpn, 0);
        let idx = level_index(vpn, 0);
        match node.entries[idx] {
            Entry::Empty => {
                node.entries[idx] = Entry::LeafBase(pte);
                node.live += 1;
                self.base_pages += 1;
            }
            _ => panic!("virtual page {vpn} already mapped"),
        }
    }

    /// Maps a 2MB superpage at the 512-page-aligned `base_vpn`.
    ///
    /// # Panics
    /// Panics if `base_vpn` or `pte.pfn` is misaligned, or the slot is
    /// occupied.
    pub fn map_super(&mut self, base_vpn: Vpn, pte: Pte) {
        assert!(base_vpn.is_aligned(9), "superpage vpn {base_vpn} misaligned");
        assert!(pte.pfn.is_aligned(9), "superpage pfn {} misaligned", pte.pfn);
        let node = self.node_at_mut(base_vpn, 1);
        let idx = level_index(base_vpn, 1);
        // A PTE table emptied by unmaps is reclaimed on the spot: the
        // khugepaged collapse path unmaps all 512 base pages and then
        // installs the superpage leaf in their place.
        let mut freed_table = false;
        if matches!(&node.entries[idx], Entry::Table(child) if child.live == 0) {
            node.entries[idx] = Entry::Empty;
            node.live -= 1;
            freed_table = true;
        }
        match node.entries[idx] {
            Entry::Empty => {
                node.entries[idx] = Entry::LeafSuper(pte);
                node.live += 1;
                self.superpages += 1;
            }
            _ => panic!("superpage slot at {base_vpn} already occupied"),
        }
        if freed_table {
            self.nodes -= 1;
        }
    }

    fn leaf_entry(&self, vpn: Vpn) -> Option<(&Entry, usize)> {
        let mut node = &self.root;
        let mut level = PT_LEVELS - 1;
        loop {
            let idx = level_index(vpn, level);
            match &node.entries[idx] {
                Entry::Empty => return None,
                Entry::Table(child) => {
                    if level == 0 {
                        return None;
                    }
                    node = child;
                    level -= 1;
                }
                e @ Entry::LeafBase(_) => return Some((e, level)),
                e @ Entry::LeafSuper(_) => {
                    if level == 1 {
                        return Some((e, level));
                    }
                    return None;
                }
            }
        }
    }

    /// Translates a virtual page to its backing frame, resolving both
    /// base-page and superpage mappings.
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        match self.leaf_entry(vpn)? {
            (Entry::LeafBase(pte), _) => Some(Translation {
                pfn: pte.pfn,
                flags: pte.flags,
                kind: PageKind::Base,
            }),
            (Entry::LeafSuper(pte), _) => {
                let base_vpn = vpn.align_down(9);
                let within = vpn.distance_from(base_vpn).expect("aligned down");
                Some(Translation {
                    pfn: pte.pfn.offset(within),
                    flags: pte.flags,
                    kind: PageKind::Super { base_vpn },
                })
            }
            _ => unreachable!("leaf_entry returns only leaves"),
        }
    }

    /// Simulates a hardware page walk of `vpn`, returning the physical
    /// address of the entry read at each level and the final translation.
    /// Returns `None` if the page is unmapped.
    pub fn walk(&self, vpn: Vpn) -> Option<WalkPath> {
        let mut addrs = Vec::with_capacity(PT_LEVELS);
        let mut node = &self.root;
        let mut level = PT_LEVELS - 1;
        loop {
            let idx = level_index(vpn, level);
            addrs.push(node.entry_addr(idx));
            match &node.entries[idx] {
                Entry::Empty => return None,
                Entry::Table(child) => {
                    if level == 0 {
                        return None;
                    }
                    node = child;
                    level -= 1;
                }
                Entry::LeafBase(pte) => {
                    return Some(WalkPath {
                        entry_addrs: addrs,
                        translation: Translation {
                            pfn: pte.pfn,
                            flags: pte.flags,
                            kind: PageKind::Base,
                        },
                    });
                }
                Entry::LeafSuper(pte) => {
                    if level != 1 {
                        return None;
                    }
                    let base_vpn = vpn.align_down(9);
                    let within = vpn.distance_from(base_vpn).expect("aligned down");
                    return Some(WalkPath {
                        entry_addrs: addrs,
                        translation: Translation {
                            pfn: pte.pfn.offset(within),
                            flags: pte.flags,
                            kind: PageKind::Super { base_vpn },
                        },
                    });
                }
            }
        }
    }

    /// The 64-byte cache line of final-level PTEs covering `vpn`: the
    /// eight slots for virtual pages `align8(vpn) .. align8(vpn)+8`.
    /// Slots that are unmapped, or that fall under a superpage (whose
    /// translation lives one level up), read as `None`.
    pub fn pte_line(&self, vpn: Vpn) -> PteLine {
        let base_vpn = vpn.align_down(3);
        let mut ptes = [None; PTES_PER_LINE as usize];
        // All eight pages share the same level-0 node (its 512 entries
        // cover 512 consecutive pages and 8 divides 512).
        for (i, slot) in ptes.iter_mut().enumerate() {
            let v = base_vpn.offset(i as u64);
            if let Some((Entry::LeafBase(pte), _)) = self.leaf_entry(v) {
                *slot = Some(*pte);
            }
        }
        PteLine { base_vpn, ptes }
    }

    /// Removes the base-page mapping of `vpn`, returning its PTE.
    pub fn unmap_base(&mut self, vpn: Vpn) -> Option<Pte> {
        let pte = self.update_base(vpn, |_| None)?;
        Some(pte)
    }

    /// Replaces the frame of an existing base mapping (page migration),
    /// returning the old PTE. Flags are preserved.
    pub fn remap_base(&mut self, vpn: Vpn, new_pfn: Pfn) -> Option<Pte> {
        self.update_base(vpn, |old| Some(Pte::new(new_pfn, old.flags)))
    }

    /// Sets additional flag bits on an existing base mapping (e.g. DIRTY),
    /// returning the old PTE.
    pub fn add_flags_base(&mut self, vpn: Vpn, flags: PteFlags) -> Option<Pte> {
        self.update_base(vpn, |old| Some(Pte::new(old.pfn, old.flags.with(flags))))
    }

    /// Applies `f` to the base-page leaf at `vpn`; `None` from `f` unmaps.
    /// Returns the previous PTE, or `None` when `vpn` has no base mapping.
    fn update_base(&mut self, vpn: Vpn, f: impl FnOnce(Pte) -> Option<Pte>) -> Option<Pte> {
        let mut node = &mut self.root;
        for level in (1..PT_LEVELS).rev() {
            let idx = level_index(vpn, level);
            match &mut node.entries[idx] {
                Entry::Table(child) => node = child,
                _ => return None,
            }
        }
        let idx = level_index(vpn, 0);
        let old = match &node.entries[idx] {
            Entry::LeafBase(pte) => *pte,
            _ => return None,
        };
        let mut unmapped = false;
        match f(old) {
            Some(new) => node.entries[idx] = Entry::LeafBase(new),
            None => {
                node.entries[idx] = Entry::Empty;
                node.live -= 1;
                unmapped = true;
            }
        }
        if unmapped {
            self.base_pages -= 1;
        }
        Some(old)
    }

    /// Removes a superpage mapping, returning its base PTE.
    pub fn unmap_super(&mut self, base_vpn: Vpn) -> Option<Pte> {
        assert!(base_vpn.is_aligned(9), "superpage vpn {base_vpn} misaligned");
        let mut node = &mut self.root;
        let mut level = PT_LEVELS - 1;
        while level > 1 {
            let idx = level_index(base_vpn, level);
            match &mut node.entries[idx] {
                Entry::Table(child) => node = child,
                _ => return None,
            }
            level -= 1;
        }
        let idx = level_index(base_vpn, 1);
        if let Entry::LeafSuper(pte) = node.entries[idx] {
            node.entries[idx] = Entry::Empty;
            node.live -= 1;
            self.superpages -= 1;
            Some(pte)
        } else {
            None
        }
    }

    /// Splits a 2MB superpage into 512 base PTEs mapping the *same*
    /// consecutive frames. The residual contiguity this leaves behind is
    /// one of the paper's key observations (§3.2.3: split THS pages
    /// "retain contiguity among tens of baseline 4KB pages").
    ///
    /// Returns the superpage's base PTE, or `None` if no superpage maps
    /// `base_vpn`.
    pub fn split_superpage(&mut self, base_vpn: Vpn) -> Option<Pte> {
        let pte = self.unmap_super(base_vpn)?;
        for i in 0..SUPERPAGE_PAGES {
            self.map_base(base_vpn.offset(i), Pte::new(pte.pfn.offset(i), pte.flags));
        }
        Some(pte)
    }

    /// Iterates all base-page mappings in ascending VPN order (the
    /// contiguity scanner's input; superpage-mapped pages are excluded,
    /// matching the paper's CDFs over "non-superpage pages").
    pub fn iter_base(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        let mut out = Vec::with_capacity(self.base_pages as usize);
        collect_base(&self.root, PT_LEVELS - 1, 0, &mut out);
        out.into_iter()
    }

    /// Iterates all superpage mappings as `(base_vpn, pte)` in ascending
    /// VPN order.
    pub fn iter_super(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        let mut out = Vec::with_capacity(self.superpages as usize);
        collect_super(&self.root, PT_LEVELS - 1, 0, &mut out);
        out.into_iter()
    }
}

impl Snapshot for PteFlags {
    fn encode(&self, enc: &mut Enc) {
        enc.u16(self.0);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(PteFlags(dec.u16()?))
    }
}

impl Snapshot for Pte {
    fn encode(&self, enc: &mut Enc) {
        self.pfn.encode(enc);
        self.flags.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self { pfn: Pfn::decode(dec)?, flags: PteFlags::decode(dec)? })
    }
}

// The node graph is serialized *structurally* — each node carries its
// simulated physical address — rather than rebuilt through map_base():
// node-id assignment order determines walk entry addresses, and those
// feed the cache model, so a reconstruction that allocated ids in a
// different order would change simulation results.
impl Snapshot for Entry {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Entry::Empty => enc.u8(0),
            Entry::Table(node) => {
                enc.u8(1);
                node.encode(enc);
            }
            Entry::LeafBase(pte) => {
                enc.u8(2);
                pte.encode(enc);
            }
            Entry::LeafSuper(pte) => {
                enc.u8(3);
                pte.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        match dec.u8()? {
            0 => Ok(Entry::Empty),
            1 => Ok(Entry::Table(Box::new(Node::decode(dec)?))),
            2 => Ok(Entry::LeafBase(Pte::decode(dec)?)),
            3 => Ok(Entry::LeafSuper(Pte::decode(dec)?)),
            b => Err(SnapshotError(format!("invalid page-table Entry tag {b:#x}"))),
        }
    }
}

impl Snapshot for Node {
    fn encode(&self, enc: &mut Enc) {
        self.phys.encode(enc);
        enc.u16(self.live);
        // Sparse encoding: most of a node's 512 slots are Empty, so store
        // only the occupied (index, entry) pairs.
        let occupied: Vec<(usize, &Entry)> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !matches!(e, Entry::Empty))
            .collect();
        enc.usize(occupied.len());
        for (idx, entry) in occupied {
            enc.u16(idx as u16);
            entry.encode(enc);
        }
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        let phys = PhysAddr::decode(dec)?;
        let live = dec.u16()?;
        let n = dec.len("page-table node entries")?;
        if n > PT_FANOUT as usize {
            return Err(SnapshotError(format!("node with {n} occupied entries")));
        }
        let mut entries = Vec::with_capacity(PT_FANOUT as usize);
        entries.resize_with(PT_FANOUT as usize, || Entry::Empty);
        for _ in 0..n {
            let idx = dec.u16()? as usize;
            if idx >= PT_FANOUT as usize {
                return Err(SnapshotError(format!("node entry index {idx} out of range")));
            }
            entries[idx] = Entry::decode(dec)?;
        }
        Ok(Self { phys, entries, live })
    }
}

impl Snapshot for PageTable {
    fn encode(&self, enc: &mut Enc) {
        self.root.encode(enc);
        enc.u64(self.next_node_id);
        enc.u64(self.base_pages);
        enc.u64(self.superpages);
        enc.u64(self.nodes);
    }

    fn decode(dec: &mut Dec<'_>) -> SnapResult<Self> {
        Ok(Self {
            root: Node::decode(dec)?,
            next_node_id: dec.u64()?,
            base_pages: dec.u64()?,
            superpages: dec.u64()?,
            nodes: dec.u64()?,
        })
    }
}

fn collect_base(node: &Node, level: usize, prefix: u64, out: &mut Vec<(Vpn, Pte)>) {
    for (idx, entry) in node.entries.iter().enumerate() {
        let vpn_bits = prefix | ((idx as u64) << (9 * level));
        match entry {
            Entry::Table(child) if level > 0 => collect_base(child, level - 1, vpn_bits, out),
            Entry::LeafBase(pte) if level == 0 => out.push((Vpn::new(vpn_bits), *pte)),
            _ => {}
        }
    }
}

fn collect_super(node: &Node, level: usize, prefix: u64, out: &mut Vec<(Vpn, Pte)>) {
    for (idx, entry) in node.entries.iter().enumerate() {
        let vpn_bits = prefix | ((idx as u64) << (9 * level));
        match entry {
            Entry::Table(child) if level > 1 => collect_super(child, level - 1, vpn_bits, out),
            Entry::LeafSuper(pte) if level == 1 => out.push((Vpn::new(vpn_bits), *pte)),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> PteFlags {
        PteFlags::user_data()
    }

    #[test]
    fn map_translate_unmap_base_page() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(0x12345), Pte::new(Pfn::new(77), flags()));
        let t = pt.translate(Vpn::new(0x12345)).unwrap();
        assert_eq!(t.pfn, Pfn::new(77));
        assert_eq!(t.kind, PageKind::Base);
        assert_eq!(pt.stats().base_pages, 1);
        let old = pt.unmap_base(Vpn::new(0x12345)).unwrap();
        assert_eq!(old.pfn, Pfn::new(77));
        assert!(pt.translate(Vpn::new(0x12345)).is_none());
        assert_eq!(pt.stats().base_pages, 0);
    }

    #[test]
    fn translate_unmapped_is_none() {
        let pt = PageTable::new();
        assert!(pt.translate(Vpn::new(42)).is_none());
        assert!(pt.walk(Vpn::new(42)).is_none());
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(1), Pte::new(Pfn::new(1), flags()));
        pt.map_base(Vpn::new(1), Pte::new(Pfn::new(2), flags()));
    }

    #[test]
    fn superpage_translation_offsets_within_block() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(1024), flags()));
        let t = pt.translate(Vpn::new(512 + 37)).unwrap();
        assert_eq!(t.pfn, Pfn::new(1024 + 37));
        assert_eq!(t.kind, PageKind::Super { base_vpn: Vpn::new(512) });
        assert_eq!(pt.stats().superpages, 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_superpage_panics() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(5), Pte::new(Pfn::new(1024), flags()));
    }

    #[test]
    fn walk_base_page_touches_four_levels() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(0x12345), Pte::new(Pfn::new(9), flags()));
        let w = pt.walk(Vpn::new(0x12345)).unwrap();
        assert_eq!(w.entry_addrs.len(), 4);
        assert_eq!(w.translation.pfn, Pfn::new(9));
        // All entry addresses are distinct and in the PT node region.
        for (i, a) in w.entry_addrs.iter().enumerate() {
            assert!(a.raw() >= PT_NODE_REGION_BASE);
            for b in &w.entry_addrs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn walk_superpage_touches_three_levels() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(1024), Pte::new(Pfn::new(2048), flags()));
        let w = pt.walk(Vpn::new(1024 + 3)).unwrap();
        assert_eq!(w.entry_addrs.len(), 3);
        assert_eq!(w.translation.pfn, Pfn::new(2051));
    }

    #[test]
    fn consecutive_vpns_share_pte_cache_lines() {
        let mut pt = PageTable::new();
        for i in 0..16 {
            pt.map_base(Vpn::new(64 + i), Pte::new(Pfn::new(100 + i), flags()));
        }
        let w0 = pt.walk(Vpn::new(64)).unwrap();
        let w7 = pt.walk(Vpn::new(71)).unwrap();
        let w8 = pt.walk(Vpn::new(72)).unwrap();
        let leaf0 = w0.entry_addrs.last().unwrap();
        let leaf7 = w7.entry_addrs.last().unwrap();
        let leaf8 = w8.entry_addrs.last().unwrap();
        assert_eq!(leaf0.cache_line(), leaf7.cache_line(), "vpns 64..72 share a line");
        assert_ne!(leaf0.cache_line(), leaf8.cache_line(), "vpn 72 starts the next line");
    }

    #[test]
    fn pte_line_reads_eight_slots() {
        let mut pt = PageTable::new();
        for i in [0u64, 1, 2, 5] {
            pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(50 + i), flags()));
        }
        let line = pt.pte_line(Vpn::new(10));
        assert_eq!(line.base_vpn, Vpn::new(8));
        assert_eq!(line.slot_of(Vpn::new(10)), 2);
        assert_eq!(line.ptes[0].unwrap().pfn, Pfn::new(50));
        assert_eq!(line.ptes[1].unwrap().pfn, Pfn::new(51));
        assert_eq!(line.ptes[2].unwrap().pfn, Pfn::new(52));
        assert!(line.ptes[3].is_none());
        assert!(line.ptes[4].is_none());
        assert_eq!(line.ptes[5].unwrap().pfn, Pfn::new(55));
        assert!(line.ptes[6].is_none());
    }

    #[test]
    fn pte_line_excludes_superpage_slots() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(512), flags()));
        let line = pt.pte_line(Vpn::new(515));
        assert!(line.ptes.iter().all(Option::is_none));
    }

    #[test]
    fn split_superpage_preserves_contiguity() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(4096), flags()));
        let old = pt.split_superpage(Vpn::new(512)).unwrap();
        assert_eq!(old.pfn, Pfn::new(4096));
        assert_eq!(pt.stats().superpages, 0);
        assert_eq!(pt.stats().base_pages, 512);
        for i in 0..512 {
            let t = pt.translate(Vpn::new(512 + i)).unwrap();
            assert_eq!(t.pfn, Pfn::new(4096 + i));
            assert_eq!(t.kind, PageKind::Base);
        }
    }

    #[test]
    fn remap_base_migrates_frame_preserving_flags() {
        let mut pt = PageTable::new();
        let f = flags().with(PteFlags::DIRTY);
        pt.map_base(Vpn::new(7), Pte::new(Pfn::new(10), f));
        let old = pt.remap_base(Vpn::new(7), Pfn::new(99)).unwrap();
        assert_eq!(old.pfn, Pfn::new(10));
        let t = pt.translate(Vpn::new(7)).unwrap();
        assert_eq!(t.pfn, Pfn::new(99));
        assert_eq!(t.flags, f);
    }

    #[test]
    fn add_flags_sets_bits() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(7), Pte::new(Pfn::new(10), flags()));
        pt.add_flags_base(Vpn::new(7), PteFlags::DIRTY);
        assert!(pt.translate(Vpn::new(7)).unwrap().flags.contains(PteFlags::DIRTY));
    }

    #[test]
    fn iter_base_is_vpn_sorted_and_complete() {
        let mut pt = PageTable::new();
        let vpns = [0x900_000u64, 0x3, 0x1_000_000, 0x4, 0x200];
        for (i, &v) in vpns.iter().enumerate() {
            pt.map_base(Vpn::new(v), Pte::new(Pfn::new(i as u64), flags()));
        }
        let got: Vec<u64> = pt.iter_base().map(|(v, _)| v.raw()).collect();
        let mut want = vpns.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn iter_super_lists_superpages() {
        let mut pt = PageTable::new();
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(0), flags()));
        pt.map_super(Vpn::new(512 * 5), Pte::new(Pfn::new(512), flags()));
        let got: Vec<u64> = pt.iter_super().map(|(v, _)| v.raw()).collect();
        assert_eq!(got, vec![512, 512 * 5]);
    }

    #[test]
    fn snapshot_round_trip_preserves_walk_addresses() {
        let mut pt = PageTable::new();
        for i in 0..64u64 {
            pt.map_base(Vpn::new(0x4000 + i), Pte::new(Pfn::new(900 + i), flags()));
        }
        pt.map_super(Vpn::new(512), Pte::new(Pfn::new(1024), flags()));
        pt.unmap_base(Vpn::new(0x4000 + 7));

        let mut enc = Enc::new();
        pt.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        let back = PageTable::decode(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(back.stats(), pt.stats());
        for vpn in [Vpn::new(0x4000), Vpn::new(0x4000 + 63), Vpn::new(512 + 13)] {
            let a = pt.walk(vpn).unwrap();
            let b = back.walk(vpn).unwrap();
            assert_eq!(a.entry_addrs, b.entry_addrs, "walk addresses must survive");
            assert_eq!(a.translation, b.translation);
        }
        assert!(back.walk(Vpn::new(0x4000 + 7)).is_none());
        // Future node allocation continues from the same id.
        assert_eq!(back.next_node_id, pt.next_node_id);
    }

    #[test]
    fn flags_ops_and_debug() {
        let f = PteFlags::user_data();
        assert!(f.contains(PteFlags::WRITABLE));
        assert!(!f.contains(PteFlags::DIRTY));
        let g = f.with(PteFlags::DIRTY);
        assert!(g.contains(PteFlags::DIRTY));
        assert_eq!(g.without(PteFlags::DIRTY), f);
        assert!(format!("{f:?}").contains('W'));
        assert_eq!(format!("{:?}", PteFlags::empty()), "PteFlags(-)");
    }
}
