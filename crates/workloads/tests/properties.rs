//! Property-based tests of the workload generators.

use colt_os_mem::addr::Vpn;
use colt_workloads::pattern::{PatternGen, PatternSpec};
use colt_workloads::trace::{read_trace, write_trace, MemRef, LINES_PER_PAGE};
use colt_quickprop::prelude::*;
use std::sync::Arc;

fn arbitrary_pattern() -> impl Strategy<Value = PatternSpec> {
    let leaf = prop_oneof![
        (1u32..16).prop_map(|a| PatternSpec::Sequential { accesses_per_page: a }),
        Just(PatternSpec::UniformRandom),
        (0.01f64..1.0, 0.0f64..1.0).prop_map(|(f, p)| PatternSpec::HotCold {
            hot_fraction: f,
            hot_probability: p,
        }),
        Just(PatternSpec::PointerChase),
        (1u64..16, 1u32..8).prop_map(|(s, a)| PatternSpec::Strided {
            stride_pages: s,
            accesses_per_touch: a,
        }),
        (1u64..64, 1u32..4, 1u32..8).prop_map(|(w, r, a)| PatternSpec::WindowedSweep {
            window_pages: w,
            repeats: r,
            accesses_per_page: a,
        }),
    ];
    // One level of composition: mixtures and phases of leaves.
    prop_oneof![
        leaf.clone(),
        prop::collection::vec((0.1f64..1.0, leaf.clone()), 1..4).prop_map(PatternSpec::Mixture),
        prop::collection::vec((1u64..50, leaf), 1..4).prop_map(PatternSpec::Phased),
    ]
}

proptest! {
    /// Every pattern, simple or composed, stays inside its footprint and
    /// produces valid line indices.
    #[test]
    fn patterns_stay_in_bounds(
        spec in arbitrary_pattern(),
        pages in 1u64..500,
        seed in 0u64..1000,
    ) {
        let footprint: Arc<Vec<Vpn>> =
            Arc::new((0..pages).map(|i| Vpn::new(0x4000 + i * 2)).collect());
        let mut gen = PatternGen::new(&spec, Arc::clone(&footprint), seed);
        for _ in 0..500 {
            let r = gen.next_ref();
            prop_assert!(footprint.contains(&r.vpn), "vpn {} outside footprint", r.vpn);
            prop_assert!((r.line as u64) < LINES_PER_PAGE);
        }
    }

    /// Identical seeds reproduce identical streams for every pattern.
    #[test]
    fn patterns_are_deterministic(
        spec in arbitrary_pattern(),
        pages in 1u64..200,
        seed in 0u64..1000,
    ) {
        let footprint: Arc<Vec<Vpn>> = Arc::new((0..pages).map(Vpn::new).collect());
        let a = PatternGen::new(&spec, Arc::clone(&footprint), seed).take_refs(200);
        let b = PatternGen::new(&spec, footprint, seed).take_refs(200);
        prop_assert_eq!(a, b);
    }

    /// Trace files round-trip every representable reference stream.
    #[test]
    fn trace_round_trip(
        refs in prop::collection::vec(
            (0u64..(1 << 36), 0u8..64, prop::bool::ANY),
            0..200
        )
    ) {
        let refs: Vec<MemRef> = refs
            .into_iter()
            .map(|(v, l, w)| MemRef { vpn: Vpn::new(v), line: l, write: w })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &refs).expect("in-memory write");
        let back = read_trace(&buf[..]).expect("own format parses");
        prop_assert_eq!(back, refs);
    }
}
