//! The paper's published numbers, used two ways: to parameterize the
//! synthetic benchmark models (ordering of TLB pressure and contiguity)
//! and to report paper-vs-measured comparisons in every experiment
//! (EXPERIMENTS.md).
//!
//! Sources: Table 1 (real-system MPMIs with THS on/off), the Figure 7–15
//! CDF legends (average contiguities per kernel configuration), and the
//! headline aggregates of Figures 18–21.

/// Benchmark suite of origin (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec,
    /// BioBench bioinformatics suite.
    BioBench,
}

/// Per-benchmark numbers published in the paper.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PaperBenchmark {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Table 1: L1 TLB misses per million instructions, THS on.
    pub l1_mpmi_ths_on: f64,
    /// Table 1: L2 TLB MPMI, THS on.
    pub l2_mpmi_ths_on: f64,
    /// Table 1: L1 TLB MPMI, THS off.
    pub l1_mpmi_ths_off: f64,
    /// Table 1: L2 TLB MPMI, THS off.
    pub l2_mpmi_ths_off: f64,
    /// Figures 7–9 legend: average contiguity, THS on + normal compaction.
    pub contig_ths_on: f64,
    /// Figures 10–12 legend: average contiguity, THS off + normal
    /// compaction.
    pub contig_ths_off: f64,
    /// Figures 13–15 legend: average contiguity, THS off + low compaction.
    pub contig_low_compaction: f64,
}

/// The paper's 14 benchmarks in Table-1 order (highest to lowest THS-on
/// L2 MPMI).
pub const PAPER_BENCHMARKS: [PaperBenchmark; 14] = [
    PaperBenchmark { name: "Mcf",        suite: Suite::Spec,     l1_mpmi_ths_on: 56550.0, l2_mpmi_ths_on: 28600.0, l1_mpmi_ths_off: 95600.0, l2_mpmi_ths_off: 49230.0, contig_ths_on: 20.3,   contig_ths_off: 11.14,  contig_low_compaction: 5.01 },
    PaperBenchmark { name: "Tigr",       suite: Suite::BioBench, l1_mpmi_ths_on: 19000.0, l2_mpmi_ths_on: 18150.0, l1_mpmi_ths_off: 26950.0, l2_mpmi_ths_off: 18860.0, contig_ths_on: 55.55,  contig_ths_off: 2.71,   contig_low_compaction: 2.71 },
    PaperBenchmark { name: "Mummer",     suite: Suite::BioBench, l1_mpmi_ths_on: 12910.0, l2_mpmi_ths_on: 11450.0, l1_mpmi_ths_off: 14760.0, l2_mpmi_ths_off: 12970.0, contig_ths_on: 6.2,    contig_ths_off: 8.1,    contig_low_compaction: 1.3 },
    PaperBenchmark { name: "CactusADM",  suite: Suite::Spec,     l1_mpmi_ths_on: 6610.0,  l2_mpmi_ths_on: 8140.0,  l1_mpmi_ths_off: 8420.0,  l2_mpmi_ths_off: 6930.0,  contig_ths_on: 149.7,  contig_ths_off: 1.79,   contig_low_compaction: 1.6 },
    PaperBenchmark { name: "Astar",      suite: Suite::Spec,     l1_mpmi_ths_on: 8480.0,  l2_mpmi_ths_on: 4660.0,  l1_mpmi_ths_off: 17390.0, l2_mpmi_ths_off: 11240.0, contig_ths_on: 3.89,   contig_ths_off: 1.69,   contig_low_compaction: 1.26 },
    PaperBenchmark { name: "Omnetpp",    suite: Suite::Spec,     l1_mpmi_ths_on: 8410.0,  l2_mpmi_ths_on: 2730.0,  l1_mpmi_ths_off: 34040.0, l2_mpmi_ths_off: 8080.0,  contig_ths_on: 32.05,  contig_ths_off: 48.5,   contig_low_compaction: 1.2 },
    PaperBenchmark { name: "Xalancbmk",  suite: Suite::Spec,     l1_mpmi_ths_on: 2670.0,  l2_mpmi_ths_on: 2150.0,  l1_mpmi_ths_off: 14120.0, l2_mpmi_ths_off: 2100.0,  contig_ths_on: 1.88,   contig_ths_off: 2.23,   contig_low_compaction: 1.775 },
    PaperBenchmark { name: "Povray",     suite: Suite::Spec,     l1_mpmi_ths_on: 7010.0,  l2_mpmi_ths_on: 630.0,   l1_mpmi_ths_off: 7310.0,  l2_mpmi_ths_off: 630.0,   contig_ths_on: 1.85,   contig_ths_off: 1.64,   contig_low_compaction: 1.82 },
    PaperBenchmark { name: "GemsFDTD",   suite: Suite::Spec,     l1_mpmi_ths_on: 1300.0,  l2_mpmi_ths_on: 620.0,   l1_mpmi_ths_off: 8030.0,  l2_mpmi_ths_off: 3620.0,  contig_ths_on: 8.1,    contig_ths_off: 12.1,   contig_low_compaction: 8.4 },
    PaperBenchmark { name: "Gobmk",      suite: Suite::Spec,     l1_mpmi_ths_on: 710.0,   l2_mpmi_ths_on: 410.0,   l1_mpmi_ths_off: 1550.0,  l2_mpmi_ths_off: 510.0,   contig_ths_on: 8.9,    contig_ths_off: 1.83,   contig_low_compaction: 1.68 },
    PaperBenchmark { name: "FastaProt",  suite: Suite::BioBench, l1_mpmi_ths_on: 460.0,   l2_mpmi_ths_on: 300.0,   l1_mpmi_ths_off: 610.0,   l2_mpmi_ths_off: 300.0,   contig_ths_on: 4.79,   contig_ths_off: 1.013,  contig_low_compaction: 1.1 },
    PaperBenchmark { name: "Sjeng",      suite: Suite::Spec,     l1_mpmi_ths_on: 1840.0,  l2_mpmi_ths_on: 200.0,   l1_mpmi_ths_off: 3860.0,  l2_mpmi_ths_off: 440.0,   contig_ths_on: 116.75, contig_ths_off: 104.0,  contig_low_compaction: 96.6 },
    PaperBenchmark { name: "Bzip2",      suite: Suite::Spec,     l1_mpmi_ths_on: 4070.0,  l2_mpmi_ths_on: 150.0,   l1_mpmi_ths_off: 7120.0,  l2_mpmi_ths_off: 270.0,   contig_ths_on: 82.74,  contig_ths_off: 59.55,  contig_low_compaction: 89.09 },
    PaperBenchmark { name: "Milc",       suite: Suite::Spec,     l1_mpmi_ths_on: 120.0,   l2_mpmi_ths_on: 90.0,    l1_mpmi_ths_off: 3780.0,  l2_mpmi_ths_off: 1820.0,  contig_ths_on: 84.09,  contig_ths_off: 1.88,   contig_low_compaction: 1.88 },
];

/// Looks up the paper's numbers for `name`.
pub fn paper_benchmark(name: &str) -> Option<&'static PaperBenchmark> {
    PAPER_BENCHMARKS.iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

/// The paper's average contiguities across all benchmarks
/// (Figure 9/12/15 legends).
pub const PAPER_AVG_CONTIG_THS_ON: f64 = 41.19;
/// Average contiguity, THS off + normal compaction.
pub const PAPER_AVG_CONTIG_THS_OFF: f64 = 18.43;
/// Average contiguity, THS off + low compaction.
pub const PAPER_AVG_CONTIG_LOW_COMPACTION: f64 = 15.38;

/// Headline aggregates of the evaluation (§7, Figures 16–21).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PaperAggregates {
    /// Figure 16: average contiguity with THS on under memhog
    /// 0% / 25% / 50%.
    pub fig16_contig_by_memhog: [f64; 3],
    /// Figure 17: average contiguity with THS off under memhog
    /// 0% / 25% / 50%.
    pub fig17_contig_by_memhog: [f64; 3],
    /// Figure 18: average percent of baseline L1/L2 misses eliminated by
    /// CoLT-SA, CoLT-FA, CoLT-All.
    pub fig18_avg_elimination: [f64; 3],
    /// Figure 20: percent of baseline 4-way misses eliminated by
    /// 4-way CoLT-SA / 8-way no CoLT / 8-way CoLT-SA.
    pub fig20_avg_elimination: [f64; 3],
    /// Figure 21: average performance improvement (%) of CoLT-SA,
    /// CoLT-FA, CoLT-All.
    pub fig21_avg_perf: [f64; 3],
}

/// The paper's headline aggregates.
pub const PAPER_AGGREGATES: PaperAggregates = PaperAggregates {
    fig16_contig_by_memhog: [41.19, 43.0, 10.0],
    fig17_contig_by_memhog: [18.43, 20.0, 5.0],
    fig18_avg_elimination: [40.0, 55.0, 55.0],
    fig20_avg_elimination: [40.0, 10.0, 60.0],
    fig21_avg_perf: [12.0, 14.0, 14.0],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_benchmarks_in_mpmi_order() {
        assert_eq!(PAPER_BENCHMARKS.len(), 14);
        // Table 1 orders by THS-on L2 MPMI, highest first (with the tail
        // benchmarks roughly tied; check the strict head).
        for w in PAPER_BENCHMARKS.windows(2).take(7) {
            assert!(
                w[0].l2_mpmi_ths_on >= w[1].l2_mpmi_ths_on,
                "{} should not rank above {}",
                w[1].name,
                w[0].name
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(paper_benchmark("mcf").is_some());
        assert!(paper_benchmark("MCF").is_some());
        assert!(paper_benchmark("nosuch").is_none());
    }

    #[test]
    fn ths_off_average_contiguity_is_lower() {
        // Evaluated through locals so the transcription of the paper's
        // constants is actually exercised (clippy would otherwise fold
        // the comparison away).
        let (on, off, low) = (
            PAPER_AVG_CONTIG_THS_ON,
            PAPER_AVG_CONTIG_THS_OFF,
            PAPER_AVG_CONTIG_LOW_COMPACTION,
        );
        assert!(off < on, "{off} < {on}");
        assert!(low < off, "{low} < {off}");
    }

    #[test]
    fn mcf_is_the_tlb_stress_leader() {
        let mcf = paper_benchmark("Mcf").unwrap();
        for b in &PAPER_BENCHMARKS {
            assert!(mcf.l2_mpmi_ths_on >= b.l2_mpmi_ths_on);
        }
    }
}
