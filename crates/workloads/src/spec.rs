//! Synthetic models of the paper's 14 evaluation benchmarks (Table 1:
//! SPEC 2006 + BioBench).
//!
//! We have neither the SPEC/BioBench binaries nor the authors' Simics
//! traces, so each benchmark is modeled by the two things that determine
//! CoLT's behavior (DESIGN.md §4):
//!
//! 1. **An allocation profile** — how many pages each `malloc` requests,
//!    how much competing allocation traffic interleaves with it, and how
//!    much churn fragments it. This is what the buddy allocator/THS see,
//!    and it controls the page-allocation contiguity each benchmark ends
//!    up with (calibrated against the Figure 7–15 legend averages).
//! 2. **An access pattern** — hot/warm/cold tiers, streaming windows,
//!    strides, and pointer chasing, calibrated against the Table-1 MPMI
//!    ordering and against the per-benchmark CoLT behaviors §7 calls out
//!    (e.g. Tigr's high contiguity but poor temporal proximity; Astar's
//!    warm set that CoLT's reach multiplication captures entirely).

use crate::calibration::{paper_benchmark, PaperBenchmark, Suite};
use crate::pattern::PatternSpec;

/// Whether an allocation is backed in bulk or one page per touch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PopulatePolicy {
    /// The whole chunk is populated at `malloc` time (programs that
    /// initialize big structures up front: Mcf's hash tables, Sjeng's
    /// transposition table). The buddy allocator serves multi-page runs.
    Eager,
    /// Pages fault in one at a time as the program grows its structures
    /// (allocator-arena programs: Xalancbmk, Astar). Buddy contiguity
    /// then only comes from adjacent free pages being handed out in
    /// sequence — unless THS backs whole 2MB regions at first touch,
    /// which is exactly what separates the paper's "THS-on high,
    /// THS-off tiny" benchmarks (Tigr, CactusADM, Milc).
    Faulted,
}

/// How a benchmark's heap is requested from the kernel.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AllocBehavior {
    /// Pages per `malloc` call. Large values (≥512) are THS-eligible and
    /// let the buddy allocator hand out long contiguous runs (paper
    /// §3.2.1: applications request many pages together).
    pub chunk_pages: u64,
    /// Bulk or per-touch backing.
    pub populate: PopulatePolicy,
    /// Pages of competing (background-process) allocation between the
    /// benchmark's own mallocs — interleaving that breaks up contiguity.
    pub interleave_pages: u64,
    /// Alloc/free churn rounds before the real allocation, self-inflicted
    /// fragmentation.
    pub churn_rounds: u32,
    /// Fraction of the footprint that is file-backed (`mmap`), which THS
    /// never backs with superpages (paper §6.1).
    pub file_fraction: f64,
}

/// A complete synthetic benchmark model.
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Name (matches the paper's Table 1).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Total data footprint in 4KB pages (scaled down with the TLB sizes,
    /// as the paper scaled its simulated TLBs to match real-system load,
    /// §5.2.1).
    pub footprint_pages: u64,
    /// Allocation profile.
    pub alloc: AllocBehavior,
    /// Access pattern over the allocated footprint.
    pub pattern: PatternSpec,
    /// Instructions represented by each memory reference (converts miss
    /// counts to MPMI).
    pub instructions_per_access: u64,
    /// The paper's published numbers for this benchmark.
    pub paper: &'static PaperBenchmark,
}

/// Builds the tiered locality pattern used by most non-streaming models:
/// a hot tier sized within L1 reach, a warm tier around L2 reach, and a
/// cold remainder.
fn tiered(
    footprint: u64,
    hot_pages: u64,
    warm_pages: u64,
    w_hot: f64,
    w_warm: f64,
    cold: PatternSpec,
) -> PatternSpec {
    let w_cold = (1.0 - w_hot - w_warm).max(0.0);
    PatternSpec::Mixture(vec![
        (
            w_hot,
            PatternSpec::HotCold {
                hot_fraction: (hot_pages as f64 / footprint as f64).min(1.0),
                hot_probability: 1.0,
            },
        ),
        (
            w_warm,
            // The warm tier is sweep-shaped: the program works through a
            // region repeatedly (rows of a table, frontier of a search),
            // so its instantaneous working point is narrow even though
            // the region exceeds baseline TLB reach.
            PatternSpec::WindowedSweep {
                window_pages: warm_pages,
                repeats: 3,
                accesses_per_page: 2,
            },
        ),
        (w_cold, cold),
    ])
}

/// The 14 benchmark models in Table-1 order.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        // Mcf: huge hash-based structures allocated up front via a few
        // very large mallocs (§6.1), then pointer-chased — the TLB
        // stress leader.
        BenchmarkSpec {
            name: "Mcf",
            suite: Suite::Spec,
            footprint_pages: 19968,
            alloc: AllocBehavior { chunk_pages: 32, populate: PopulatePolicy::Eager, interleave_pages: 24, churn_rounds: 1, file_fraction: 0.0 },
            pattern: tiered(19_968, 24, 400, 0.60, 0.28, PatternSpec::PointerChase),
            instructions_per_access: 4,
            paper: paper_benchmark("Mcf").expect("table entry"),
        },
        // Tigr: genome assembly; high contiguity but cold accesses lack
        // temporal proximity, which is why its CoLT gains are modest
        // (§7.1.1).
        BenchmarkSpec {
            name: "Tigr",
            suite: Suite::BioBench,
            footprint_pages: 12288,
            alloc: AllocBehavior { chunk_pages: 512, populate: PopulatePolicy::Faulted, interleave_pages: 16, churn_rounds: 0, file_fraction: 0.0 },
            pattern: tiered(12_000, 30, 100, 0.86, 0.04, PatternSpec::UniformRandom),
            instructions_per_access: 6,
            paper: paper_benchmark("Tigr").expect("table entry"),
        },
        // Mummer: suffix-tree matching; pointer chasing over a large
        // tree with moderate contiguity.
        BenchmarkSpec {
            name: "Mummer",
            suite: Suite::BioBench,
            footprint_pages: 9984,
            alloc: AllocBehavior { chunk_pages: 64, populate: PopulatePolicy::Faulted, interleave_pages: 2, churn_rounds: 1, file_fraction: 0.2 },
            pattern: tiered(10_000, 24, 100, 0.90, 0.04, PatternSpec::PointerChase),
            instructions_per_access: 5,
            paper: paper_benchmark("Mummer").expect("table entry"),
        },
        // CactusADM: structured-grid relaxation; short-stride sweeps that
        // coalesce beautifully, very high THS-on contiguity.
        BenchmarkSpec {
            name: "CactusADM",
            suite: Suite::Spec,
            footprint_pages: 8192,
            alloc: AllocBehavior { chunk_pages: 1024, populate: PopulatePolicy::Faulted, interleave_pages: 4, churn_rounds: 0, file_fraction: 0.0 },
            pattern: PatternSpec::Mixture(vec![
                (0.88, PatternSpec::HotCold { hot_fraction: 16.0 / 8000.0, hot_probability: 1.0 }),
                (0.12, PatternSpec::Strided { stride_pages: 3, accesses_per_touch: 4 }),
            ]),
            instructions_per_access: 4,
            paper: paper_benchmark("CactusADM").expect("table entry"),
        },
        // Astar: path-finding; a warm set slightly beyond baseline L2
        // reach — exactly what CoLT's reach multiplication captures
        // (near-perfect TLBs with CoLT-FA/All, §7.1.1).
        BenchmarkSpec {
            name: "Astar",
            suite: Suite::Spec,
            footprint_pages: 8000,
            alloc: AllocBehavior { chunk_pages: 8, populate: PopulatePolicy::Faulted, interleave_pages: 2, churn_rounds: 1, file_fraction: 0.0 },
            pattern: tiered(8_000, 24, 300, 0.89, 0.10, PatternSpec::PointerChase),
            instructions_per_access: 3,
            paper: paper_benchmark("Astar").expect("table entry"),
        },
        // Omnetpp: discrete-event simulation; event objects in a warm
        // heap region.
        BenchmarkSpec {
            name: "Omnetpp",
            suite: Suite::Spec,
            footprint_pages: 6016,
            alloc: AllocBehavior { chunk_pages: 64, populate: PopulatePolicy::Faulted, interleave_pages: 0, churn_rounds: 0, file_fraction: 0.0 },
            pattern: tiered(6_000, 24, 220, 0.85, 0.12, PatternSpec::UniformRandom),
            instructions_per_access: 6,
            paper: paper_benchmark("Omnetpp").expect("table entry"),
        },
        // Xalancbmk: XML transformation; many small allocations, low
        // contiguity, warm-set dominated.
        BenchmarkSpec {
            name: "Xalancbmk",
            suite: Suite::Spec,
            footprint_pages: 5000,
            alloc: AllocBehavior { chunk_pages: 4, populate: PopulatePolicy::Faulted, interleave_pages: 8, churn_rounds: 2, file_fraction: 0.1 },
            pattern: tiered(5_000, 24, 110, 0.925, 0.070, PatternSpec::UniformRandom),
            instructions_per_access: 3,
            paper: paper_benchmark("Xalancbmk").expect("table entry"),
        },
        // Povray: ray tracing; small scene, high reuse, tiny miss rates.
        BenchmarkSpec {
            name: "Povray",
            suite: Suite::Spec,
            footprint_pages: 2000,
            alloc: AllocBehavior { chunk_pages: 4, populate: PopulatePolicy::Faulted, interleave_pages: 8, churn_rounds: 2, file_fraction: 0.1 },
            pattern: PatternSpec::Mixture(vec![
                (0.70, PatternSpec::HotCold { hot_fraction: 16.0 / 2000.0, hot_probability: 1.0 }),
                (0.30, PatternSpec::WindowedSweep { window_pages: 90, repeats: 12, accesses_per_page: 8 }),
            ]),
            instructions_per_access: 4,
            paper: paper_benchmark("Povray").expect("table entry"),
        },
        // GemsFDTD: finite-difference time domain; regular short strides
        // over field arrays.
        BenchmarkSpec {
            name: "GemsFDTD",
            suite: Suite::Spec,
            footprint_pages: 6000,
            alloc: AllocBehavior { chunk_pages: 16, populate: PopulatePolicy::Eager, interleave_pages: 8, churn_rounds: 0, file_fraction: 0.0 },
            pattern: PatternSpec::Mixture(vec![
                (0.86, PatternSpec::HotCold { hot_fraction: 24.0 / 6000.0, hot_probability: 1.0 }),
                (0.14, PatternSpec::Strided { stride_pages: 2, accesses_per_touch: 8 }),
            ]),
            instructions_per_access: 5,
            paper: paper_benchmark("GemsFDTD").expect("table entry"),
        },
        // Gobmk: game tree search; almost everything hits a small hot set.
        BenchmarkSpec {
            name: "Gobmk",
            suite: Suite::Spec,
            footprint_pages: 2000,
            alloc: AllocBehavior { chunk_pages: 16, populate: PopulatePolicy::Faulted, interleave_pages: 2, churn_rounds: 1, file_fraction: 0.0 },
            pattern: tiered(2_000, 30, 250, 0.985, 0.012, PatternSpec::UniformRandom),
            instructions_per_access: 9,
            paper: paper_benchmark("Gobmk").expect("table entry"),
        },
        // FastaProt: protein sequence search; small working set.
        BenchmarkSpec {
            name: "FastaProt",
            suite: Suite::BioBench,
            footprint_pages: 1504,
            alloc: AllocBehavior { chunk_pages: 16, populate: PopulatePolicy::Faulted, interleave_pages: 6, churn_rounds: 0, file_fraction: 0.4 },
            pattern: tiered(1_500, 24, 200, 0.995, 0.003, PatternSpec::UniformRandom),
            instructions_per_access: 9,
            paper: paper_benchmark("FastaProt").expect("table entry"),
        },
        // Sjeng: chess; one big hash table allocated up front — huge
        // contiguity under every kernel configuration (Figures 9/12/15).
        BenchmarkSpec {
            name: "Sjeng",
            suite: Suite::Spec,
            footprint_pages: 4096,
            alloc: AllocBehavior { chunk_pages: 128, populate: PopulatePolicy::Eager, interleave_pages: 8, churn_rounds: 0, file_fraction: 0.0 },
            pattern: tiered(4_000, 24, 100, 0.965, 0.030, PatternSpec::UniformRandom),
            instructions_per_access: 7,
            paper: paper_benchmark("Sjeng").expect("table entry"),
        },
        // Bzip2: block compression; sweeps ~900KB blocks repeatedly — the
        // L2 TLB catches the re-sweeps, CoLT catches the block pages.
        BenchmarkSpec {
            name: "Bzip2",
            suite: Suite::Spec,
            footprint_pages: 6144,
            alloc: AllocBehavior { chunk_pages: 96, populate: PopulatePolicy::Eager, interleave_pages: 16, churn_rounds: 0, file_fraction: 0.0 },
            pattern: PatternSpec::Mixture(vec![
                (0.50, PatternSpec::HotCold { hot_fraction: 16.0 / 6000.0, hot_probability: 1.0 }),
                (0.50, PatternSpec::WindowedSweep { window_pages: 225, repeats: 16, accesses_per_page: 16 }),
            ]),
            instructions_per_access: 5,
            paper: paper_benchmark("Bzip2").expect("table entry"),
        },
        // Milc: lattice QCD; streaming over large field arrays. With THS
        // its arrays sit in superpages (MPMI collapses from 3780 to 120);
        // without THS the interleaved allocation leaves short runs.
        BenchmarkSpec {
            name: "Milc",
            suite: Suite::Spec,
            footprint_pages: 8192,
            alloc: AllocBehavior { chunk_pages: 512, populate: PopulatePolicy::Faulted, interleave_pages: 8, churn_rounds: 1, file_fraction: 0.0 },
            pattern: PatternSpec::Mixture(vec![
                (0.70, PatternSpec::HotCold { hot_fraction: 16.0 / 8000.0, hot_probability: 1.0 }),
                (0.30, PatternSpec::Sequential { accesses_per_page: 8 }),
            ]),
            instructions_per_access: 10,
            paper: paper_benchmark("Milc").expect("table entry"),
        },
    ]
}

/// Looks up one benchmark model by (case-insensitive) name.
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    all_benchmarks().into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_models_matching_the_paper_table() {
        let specs = all_benchmarks();
        assert_eq!(specs.len(), 14);
        for s in &specs {
            assert_eq!(s.name, s.paper.name, "model and paper rows must align");
            assert!(s.footprint_pages > 0);
            assert!(s.instructions_per_access > 0);
            assert!((0.0..=1.0).contains(&s.alloc.file_fraction));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mcf").is_some());
        assert!(benchmark("Bzip2").is_some());
        assert!(benchmark("doom").is_none());
    }

    #[test]
    fn tlb_stressors_have_larger_footprints() {
        let mcf = benchmark("Mcf").unwrap();
        let fasta = benchmark("FastaProt").unwrap();
        assert!(mcf.footprint_pages > 5 * fasta.footprint_pages);
    }

    #[test]
    fn contiguity_leaders_allocate_in_large_chunks() {
        // Sjeng/Bzip2 keep high contiguity in every configuration — they
        // must malloc eagerly in sizable chunks.
        for name in ["Sjeng", "Bzip2"] {
            let b = benchmark(name).unwrap();
            assert!(b.alloc.chunk_pages >= 96, "{name} must malloc large chunks");
            assert_eq!(b.alloc.populate, PopulatePolicy::Eager);
        }
        // Xalanc/Povray sit at ~1.9 contiguity — tiny chunks, heavy noise.
        for name in ["Xalancbmk", "Povray"] {
            let b = benchmark(name).unwrap();
            assert!(b.alloc.chunk_pages <= 8);
            assert!(b.alloc.interleave_pages > 0);
        }
    }

    #[test]
    fn patterns_compile_over_their_footprints() {
        use crate::pattern::PatternGen;
        use colt_os_mem::addr::Vpn;
        use std::sync::Arc;
        for spec in all_benchmarks() {
            let footprint: Arc<Vec<Vpn>> =
                Arc::new((0..spec.footprint_pages).map(|i| Vpn::new(0x2000 + i)).collect());
            let mut g = PatternGen::new(&spec.pattern, footprint, 1);
            for _ in 0..100 {
                let r = g.next_ref();
                assert!(r.vpn.raw() >= 0x2000);
                assert!(r.vpn.raw() < 0x2000 + spec.footprint_pages);
            }
        }
    }
}
