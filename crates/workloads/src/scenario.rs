//! System scenarios: the kernel configurations of paper §5.1.1.
//!
//! The paper studies twelve configurations (THS on/off × compaction
//! normal/low × memhog 0/25/50%) and focuses on five. [`Scenario`]
//! captures one configuration; [`Scenario::prepare`] boots a kernel,
//! ages it, applies memhog load, and performs the benchmark's allocation
//! phase (with interleaved background traffic) — producing a
//! [`PreparedWorkload`] whose page table carries exactly the contiguity
//! that configuration generates.

use crate::background::{age_system, AgingConfig, Interferer};
use crate::pattern::PatternGen;
use crate::spec::{BenchmarkSpec, PopulatePolicy};
use colt_os_mem::addr::{Asid, Vpn};
use colt_os_mem::contiguity::ContiguityReport;
use colt_os_mem::error::MemResult;
use colt_os_mem::faults::FaultConfig;
use colt_os_mem::kernel::{CompactionMode, Kernel, KernelConfig};
use colt_os_mem::memhog::{Memhog, MemhogConfig};
use colt_os_mem::policy::PolicyKind;
use colt_os_mem::snapshot::{Dec, Enc, SnapResult, Snapshot, SnapshotError};
use colt_os_mem::vma::VmaKind;
use colt_prng::rngs::StdRng;
use colt_prng::{Rng, SeedableRng};
use std::sync::Arc;

/// One system configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name.
    pub name: String,
    /// Transparent hugepage support on/off.
    pub ths: bool,
    /// Compaction daemon aggressiveness (the `defrag` flag).
    pub compaction: CompactionMode,
    /// Fraction of memory claimed by memhog (0.0, 0.25, or 0.50 in the
    /// paper).
    pub memhog_fraction: f64,
    /// Physical memory in frames.
    pub nr_frames: u64,
    /// Aging churn before the benchmark runs.
    pub aging: AgingConfig,
    /// Share of live superpages split by long-run system pressure after
    /// the allocation phase. Models the paper's observation that
    /// "optimistically-allocated 2MB superpages are often eventually
    /// split due to system pressure" yet leave residual contiguity
    /// (§3.2.3). Additional splits still happen emergently whenever the
    /// free-memory watermark is violated.
    pub pressure_split_fraction: f64,
    /// Fraction of the benchmark's pages marked dirty after allocation
    /// (write traffic so far). Diverging DIRTY bits break contiguity
    /// runs under the paper's equal-attribute rule (§5.1.1) — the
    /// future-work attribute ablation measures what tolerating them
    /// recovers.
    pub dirty_fraction: f64,
    /// Master seed (aging, memhog, interferer, allocation mixing).
    pub seed: u64,
    /// Deterministic memory-pressure fault injection for the kernel this
    /// scenario boots (`None` keeps preparation bit-identical to the
    /// fault-free baseline).
    pub faults: Option<FaultConfig>,
    /// Memory-management policy governing the kernel this scenario boots
    /// (THP grants, compaction triggering, reclaim order, placement).
    /// [`PolicyKind::Default`] reproduces historical behavior exactly.
    pub policy: PolicyKind,
}

impl Scenario {
    fn base(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ths: true,
            compaction: CompactionMode::Normal,
            memhog_fraction: 0.0,
            nr_frames: 1 << 17, // 512MB
            aging: AgingConfig::default(),
            pressure_split_fraction: 0.85,
            dirty_fraction: 0.0,
            seed: 0xC011_7E57,
            faults: None,
            policy: PolicyKind::Default,
        }
    }

    /// Enables fault injection in the kernel this scenario prepares.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Marks a fraction of the benchmark's pages dirty after allocation.
    #[must_use]
    pub fn with_dirty_fraction(mut self, fraction: f64) -> Self {
        self.dirty_fraction = fraction;
        self
    }

    /// Boots the scenario's kernel under `policy`. Non-default policies
    /// are reflected in the scenario name (and hence in snapshot-cache
    /// keys and result labels); the default policy leaves the name — and
    /// every prepared byte — untouched.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        if self.policy != PolicyKind::Default {
            // Strip a previously appended suffix before re-tagging.
            if let Some(pos) = self.name.rfind(" [policy=") {
                self.name.truncate(pos);
            }
        }
        self.policy = policy;
        if policy != PolicyKind::Default {
            self.name.push_str(&format!(" [policy={}]", policy.name()));
        }
        self
    }

    /// Configuration 1: THS on, normal compaction, no memhog — the Linux
    /// default.
    pub fn default_linux() -> Self {
        Self::base("THS on, normal compaction")
    }

    /// Configuration 2: THS off, normal compaction, no memhog.
    pub fn no_ths() -> Self {
        Self { ths: false, ..Self::base("THS off, normal compaction") }
    }

    /// Configuration 3: THS off, low compaction — the paper's
    /// conservative stress test.
    pub fn no_ths_low_compaction() -> Self {
        Self {
            ths: false,
            compaction: CompactionMode::Low,
            ..Self::base("THS off, low compaction")
        }
    }

    /// Configuration 4: THS on, normal compaction, with memhog at
    /// `fraction` (0.25 or 0.50 in the paper).
    pub fn default_with_memhog(fraction: f64) -> Self {
        Self {
            memhog_fraction: fraction,
            ..Self::base(&format!("THS on, memhog({}%)", (fraction * 100.0) as u32))
        }
    }

    /// Configuration 5: THS off, normal compaction, with memhog.
    pub fn no_ths_with_memhog(fraction: f64) -> Self {
        Self {
            ths: false,
            memhog_fraction: fraction,
            ..Self::base(&format!("THS off, memhog({}%)", (fraction * 100.0) as u32))
        }
    }

    /// The five configurations the paper focuses on (§5.1.1), with
    /// memhog at 25%.
    pub fn paper_five() -> Vec<Scenario> {
        vec![
            Self::default_linux(),
            Self::no_ths(),
            Self::no_ths_low_compaction(),
            Self::default_with_memhog(0.25),
            Self::no_ths_with_memhog(0.25),
        ]
    }

    /// All twelve §5.1.1 configurations: THS on/off × compaction
    /// normal/low × memhog 0/25/50%.
    pub fn all_twelve() -> Vec<Scenario> {
        let mut out = Vec::with_capacity(12);
        for ths in [true, false] {
            for compaction in [CompactionMode::Normal, CompactionMode::Low] {
                for memhog in [0.0, 0.25, 0.50] {
                    let name = format!(
                        "THS {}, {} compaction, memhog({}%)",
                        if ths { "on" } else { "off" },
                        if compaction == CompactionMode::Normal { "normal" } else { "low" },
                        (memhog * 100.0) as u32,
                    );
                    out.push(Scenario {
                        ths,
                        compaction,
                        memhog_fraction: memhog,
                        ..Self::base(&name)
                    });
                }
            }
        }
        out
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Boots one kernel and allocates *several* benchmarks into it, for
    /// multiprogrammed simulation. Allocation phases run one benchmark
    /// after another (as staggered program starts would).
    ///
    /// # Errors
    /// Propagates kernel errors; the combined footprints plus load must
    /// fit the configured memory.
    pub fn prepare_many(&self, specs: &[BenchmarkSpec]) -> MemResult<MultiWorkload> {
        let mut kernel = Kernel::new(KernelConfig {
            nr_frames: self.nr_frames,
            ths_enabled: self.ths,
            compaction: self.compaction,
            faults: self.faults,
            policy: self.policy,
            ..KernelConfig::default()
        });
        age_system(&mut kernel, self.aging, self.seed)?;
        let memhog = self.engage_memhog(
            &mut kernel,
            specs.iter().map(|s| s.footprint_pages).sum::<u64>(),
        )?;
        let mut parts = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let asid = kernel.spawn();
            let mut interferer = Interferer::new(&mut kernel, self.seed ^ (0x1F + i as u64));
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA6E5 ^ (i as u64) << 32);
            let footprint =
                self.allocate_benchmark(&mut kernel, asid, spec, &mut interferer, &mut rng)?;
            parts.push((spec.clone(), asid, Arc::new(footprint)));
        }
        self.apply_pressure(&mut kernel)?;
        for (_, asid, footprint) in &parts {
            for &vpn in footprint.iter() {
                kernel.touch(*asid, vpn)?;
            }
        }
        kernel.tick();
        // An injected reclaim spike in that tick may have evicted clean
        // file-backed footprint pages; fault them back in (the
        // simulation assumes a fully mapped footprint).
        if self.faults.is_some() {
            for (_, asid, footprint) in &parts {
                for &vpn in footprint.iter() {
                    kernel.touch(*asid, vpn)?;
                }
            }
        }
        for (_, asid, footprint) in &parts {
            self.mark_dirty_fraction(&mut kernel, *asid, footprint);
        }
        Ok(MultiWorkload {
            scenario_name: self.name.clone(),
            kernel,
            parts,
            _memhog: memhog,
        })
    }

    /// Boots, ages, loads, and allocates: produces the benchmark's
    /// populated address space under this configuration.
    ///
    /// # Errors
    /// Propagates kernel errors (the scenario is sized so that genuine
    /// OOM indicates a configuration mistake).
    pub fn prepare(&self, spec: &BenchmarkSpec) -> MemResult<PreparedWorkload> {
        let mut kernel = Kernel::new(KernelConfig {
            nr_frames: self.nr_frames,
            ths_enabled: self.ths,
            compaction: self.compaction,
            faults: self.faults,
            policy: self.policy,
            ..KernelConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA6E5);

        // 1. Age the machine.
        age_system(&mut kernel, self.aging, self.seed)?;

        // 2. System load + background-daemon settling.
        let memhog = self.engage_memhog(&mut kernel, spec.footprint_pages)?;

        // 3. The benchmark process plus its interfering neighbor.
        let asid = kernel.spawn();
        let mut interferer = Interferer::new(&mut kernel, self.seed ^ 0x1F);
        let footprint =
            self.allocate_benchmark(&mut kernel, asid, spec, &mut interferer, &mut rng)?;

        // 4. Long-run pressure: superpage splits with punctured residue.
        self.apply_pressure(&mut kernel)?;
        for &vpn in &footprint {
            kernel.touch(asid, vpn)?;
        }
        kernel.tick();
        // An injected reclaim spike in that tick may have evicted clean
        // file-backed footprint pages; fault them back in (the
        // simulation assumes a fully mapped footprint).
        if self.faults.is_some() {
            for &vpn in &footprint {
                kernel.touch(asid, vpn)?;
            }
        }

        // 5. Write traffic: dirty a deterministic subset of pages.
        self.mark_dirty_fraction(&mut kernel, asid, &footprint);

        Ok(PreparedWorkload {
            scenario_name: self.name.clone(),
            spec: spec.clone(),
            kernel,
            asid,
            footprint: Arc::new(footprint),
            _memhog: memhog,
        })
    }

    /// Engages memhog (capped to what physical memory can satisfy
    /// without swap, counting reclaimable page cache) and lets the
    /// background compaction daemon settle.
    fn engage_memhog(&self, kernel: &mut Kernel, reserve_pages: u64) -> MemResult<Option<Memhog>> {
        let memhog = if self.memhog_fraction > 0.0 {
            let reserve = reserve_pages + reserve_pages / 8 + 2048;
            let claimable = (kernel.free_frames() + kernel.reclaimable_file_pages())
                .saturating_sub(reserve);
            let max_fraction = claimable as f64 / self.nr_frames as f64;
            let fraction = self.memhog_fraction.min(max_fraction).max(0.0);
            Some(Memhog::engage(
                kernel,
                MemhogConfig { fraction, seed: self.seed ^ 0x4096, ..MemhogConfig::default() },
            )?)
        } else {
            None
        };
        // Let the background compaction daemon reach its steady state on
        // the aged machine (a real system's kcompactd has had weeks).
        for _ in 0..64 {
            if kernel.buddy().small_free_fraction(6) < 0.20 {
                break;
            }
            kernel.tick();
        }
        Ok(memhog)
    }

    /// Runs one benchmark's churn + allocation phase.
    fn allocate_benchmark(
        &self,
        kernel: &mut Kernel,
        asid: Asid,
        spec: &BenchmarkSpec,
        interferer: &mut Interferer,
        rng: &mut StdRng,
    ) -> MemResult<Vec<Vpn>> {
        // Churn: allocate and free a few rounds first (self-inflicted
        // fragmentation of many-small-allocation programs).
        for _round in 0..spec.alloc.churn_rounds {
            let mut bases = Vec::new();
            let churn_pages = (spec.footprint_pages / 4).max(spec.alloc.chunk_pages);
            let mut done = 0;
            while done < churn_pages {
                let chunk = spec.alloc.chunk_pages.min(churn_pages - done).max(1);
                bases.push(kernel.malloc(asid, chunk)?);
                done += chunk;
            }
            for base in bases {
                kernel.free(asid, base)?;
            }
        }

        // The real allocation phase, interleaved with noise.
        let mut footprint: Vec<Vpn> = Vec::with_capacity(spec.footprint_pages as usize);
        let mut allocated = 0u64;
        let mut chunk_idx = 0u64;
        while allocated < spec.footprint_pages {
            let chunk = spec.alloc.chunk_pages.min(spec.footprint_pages - allocated);
            let kind = if rng.gen_bool(spec.alloc.file_fraction) {
                VmaKind::FileBacked
            } else {
                VmaKind::Anonymous
            };
            let base = match spec.alloc.populate {
                PopulatePolicy::Eager => match kind {
                    VmaKind::Anonymous => kernel.malloc(asid, chunk)?,
                    VmaKind::FileBacked => kernel.mmap_file(asid, chunk)?,
                },
                PopulatePolicy::Faulted => {
                    // Reserve, then fault pages in one at a time with
                    // interleaved noise faults from the neighbor process.
                    let base = kernel.reserve(asid, chunk, kind)?;
                    for i in 0..chunk {
                        kernel.touch(asid, base.offset(i))?;
                        if spec.alloc.interleave_pages > 0 && i % 16 == 15 {
                            interferer
                                .interfere(kernel, (spec.alloc.interleave_pages / 8).max(1))?;
                        }
                        // Background daemons run while the program faults
                        // its heap in (kswapd/kcompactd cadence).
                        if (allocated + i) % 256 == 255 {
                            kernel.tick();
                        }
                    }
                    base
                }
            };
            for i in 0..chunk {
                footprint.push(base.offset(i));
            }
            allocated += chunk;
            if spec.alloc.interleave_pages > 0 {
                interferer.interfere(kernel, spec.alloc.interleave_pages)?;
            }
            chunk_idx += 1;
            if chunk_idx.is_multiple_of(8) {
                kernel.tick();
            }
        }
        Ok(footprint)
    }

    /// Splits a pressure-scaled share of the system's superpages (oldest
    /// first, with reclaim puncturing, §3.2.3) and lets a transient
    /// neighbor snap up the reclaimed frames. Callers re-touch their
    /// footprints afterwards so punctured pages fault back in.
    fn apply_pressure(&self, kernel: &mut Kernel) -> MemResult<()> {
        if self.ths && self.pressure_split_fraction > 0.0 {
            let occupied =
                1.0 - kernel.free_frames() as f64 / kernel.buddy().nr_frames() as f64;
            let pressure = ((occupied - 0.20) * 2.2).clamp(0.3, 1.0);
            let fraction = (self.pressure_split_fraction * pressure).min(0.95);
            let live = kernel.live_superpage_count();
            let n = (live as f64 * fraction).round() as usize;
            kernel.split_superpages(n);
            // Other processes snap up the reclaimed frames before the
            // benchmark touches its punctured pages again.
            let mut scavenger = Interferer::new(kernel, self.seed ^ 0x5CAF);
            scavenger.interfere(kernel, 256)?;
        }
        Ok(())
    }

    /// Marks a deterministic `dirty_fraction` subset of `footprint` dirty.
    fn mark_dirty_fraction(&self, kernel: &mut Kernel, asid: Asid, footprint: &[Vpn]) {
        if self.dirty_fraction > 0.0 {
            let threshold = (self.dirty_fraction * 1000.0) as u64;
            for &vpn in footprint {
                let h = vpn.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
                if h % 1000 < threshold {
                    // Superpage-backed pages have no base PTE to mark.
                    let _ = kernel.mark_dirty(asid, vpn);
                }
            }
        }
    }
}

/// Several benchmarks allocated in *one* kernel, for multiprogrammed
/// simulation (round-robin scheduling with TLB flushes at switches).
#[derive(Clone, Debug)]
pub struct MultiWorkload {
    /// Name of the scenario that produced this workload.
    pub scenario_name: String,
    /// The shared kernel.
    pub kernel: Kernel,
    /// Per-benchmark: the model, its address space, and its footprint.
    pub parts: Vec<(BenchmarkSpec, Asid, Arc<Vec<Vpn>>)>,
    /// Keeps memhog's pinned memory alive.
    _memhog: Option<Memhog>,
}

impl MultiWorkload {
    /// Builds the pattern generator for part `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn pattern(&self, index: usize, seed: u64) -> PatternGen {
        let (spec, _, footprint) = &self.parts[index];
        PatternGen::new(&spec.pattern, Arc::clone(footprint), seed)
    }

    /// Scans part `index`'s page-allocation contiguity.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn contiguity(&self, index: usize) -> ContiguityReport {
        self.kernel
            .scan_contiguity(self.parts[index].1)
            .expect("benchmark process is live")
    }
}

/// A benchmark allocated and ready to run under one scenario.
///
/// Cloning is a fast deep copy of the prepared kernel (the footprint is
/// `Arc`-shared): the sweep runner prepares once and hands clones to
/// cells instead of re-booting, and the snapshot cache persists the
/// preparation across `repro` invocations.
#[derive(Clone, Debug)]
pub struct PreparedWorkload {
    /// Name of the scenario that produced this workload.
    pub scenario_name: String,
    /// The benchmark model.
    pub spec: BenchmarkSpec,
    /// The kernel with all processes and page tables live.
    pub kernel: Kernel,
    /// The benchmark's address space.
    pub asid: Asid,
    /// All allocated pages in VA order (the pattern generator's domain).
    pub footprint: Arc<Vec<Vpn>>,
    /// Keeps memhog's pinned memory alive for the workload's lifetime.
    _memhog: Option<Memhog>,
}

impl PreparedWorkload {
    /// Builds the benchmark's access-pattern generator.
    pub fn pattern(&self, seed: u64) -> PatternGen {
        PatternGen::new(&self.spec.pattern, Arc::clone(&self.footprint), seed)
    }

    /// Scans the benchmark's page-allocation contiguity (the paper's §6
    /// measurement).
    pub fn contiguity(&self) -> ContiguityReport {
        self.kernel
            .scan_contiguity(self.asid)
            .expect("benchmark process is live")
    }

    /// Instructions represented by `accesses` memory references.
    pub fn instructions(&self, accesses: u64) -> u64 {
        accesses * self.spec.instructions_per_access
    }

    /// Serializes the prepared state for the on-disk snapshot cache.
    ///
    /// The benchmark spec itself is *not* serialized — it holds static
    /// table references — so [`PreparedWorkload::decode_snapshot`] takes
    /// the spec back from the caller and only checks the recorded name.
    pub fn encode_snapshot(&self, enc: &mut Enc) {
        enc.str(&self.scenario_name);
        enc.str(self.spec.name);
        self.kernel.encode(enc);
        self.asid.encode(enc);
        self.footprint.as_ref().encode(enc);
        self._memhog.encode(enc);
    }

    /// Rebuilds a prepared workload from [`Self::encode_snapshot`] bytes.
    ///
    /// # Errors
    /// Malformed bytes, or a snapshot recorded for a different benchmark
    /// than `spec`.
    pub fn decode_snapshot(dec: &mut Dec<'_>, spec: &BenchmarkSpec) -> SnapResult<Self> {
        let scenario_name = dec.str()?;
        let spec_name = dec.str()?;
        if spec_name != spec.name {
            return Err(SnapshotError(format!(
                "snapshot is for benchmark '{spec_name}', expected '{}'",
                spec.name
            )));
        }
        Ok(Self {
            scenario_name,
            spec: spec.clone(),
            kernel: Kernel::decode(dec)?,
            asid: Asid::decode(dec)?,
            footprint: Arc::new(Vec::decode(dec)?),
            _memhog: Option::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    #[test]
    fn paper_five_scenarios_have_expected_settings() {
        let five = Scenario::paper_five();
        assert_eq!(five.len(), 5);
        assert!(five[0].ths && five[0].memhog_fraction == 0.0);
        assert!(!five[1].ths);
        assert_eq!(five[2].compaction, CompactionMode::Low);
        assert!(five[3].ths && five[3].memhog_fraction > 0.0);
        assert!(!five[4].ths && five[4].memhog_fraction > 0.0);
    }

    #[test]
    fn all_twelve_configurations_enumerate() {
        let twelve = Scenario::all_twelve();
        assert_eq!(twelve.len(), 12);
        let names: std::collections::HashSet<_> =
            twelve.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 12, "names must be distinct");
        assert_eq!(twelve.iter().filter(|s| s.ths).count(), 6);
        assert_eq!(
            twelve.iter().filter(|s| s.compaction == CompactionMode::Low).count(),
            6
        );
        assert_eq!(twelve.iter().filter(|s| s.memhog_fraction == 0.0).count(), 4);
    }

    #[test]
    fn prepare_allocates_the_full_footprint() {
        let spec = benchmark("Gobmk").unwrap();
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        assert_eq!(w.footprint.len() as u64, spec.footprint_pages);
        // Every footprint page translates.
        let proc = w.kernel.process(w.asid).unwrap();
        for &vpn in w.footprint.iter() {
            assert!(proc.translate(vpn).is_some(), "unbacked footprint page {vpn}");
        }
    }

    #[test]
    fn ths_scenario_creates_superpages_and_splits_some() {
        let spec = benchmark("Sjeng").unwrap(); // big 1024-page chunks
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let stats = w.kernel.stats();
        assert!(stats.thp_allocs > 0, "large anonymous chunks must get THP");
        assert!(stats.thp_splits > 0, "pressure must split some superpages");
    }

    #[test]
    fn no_ths_scenario_never_creates_superpages() {
        let spec = benchmark("Sjeng").unwrap();
        let w = Scenario::no_ths().prepare(&spec).unwrap();
        assert_eq!(w.kernel.stats().thp_allocs, 0);
        assert_eq!(w.kernel.process(w.asid).unwrap().page_table().stats().superpages, 0);
    }

    #[test]
    fn big_chunk_benchmarks_get_more_contiguity_than_small_chunk_ones() {
        let scenario = Scenario::no_ths();
        let sjeng = scenario.prepare(&benchmark("Sjeng").unwrap()).unwrap();
        let xalanc = scenario.prepare(&benchmark("Xalancbmk").unwrap()).unwrap();
        let c_sjeng = sjeng.contiguity().average_contiguity();
        let c_xalanc = xalanc.contiguity().average_contiguity();
        assert!(
            c_sjeng > 2.0 * c_xalanc,
            "Sjeng ({c_sjeng:.1}) must out-contiguity Xalancbmk ({c_xalanc:.1})"
        );
    }

    #[test]
    fn low_compaction_reduces_contiguity() {
        let spec = benchmark("Mcf").unwrap();
        let normal = Scenario::no_ths().prepare(&spec).unwrap();
        let low = Scenario::no_ths_low_compaction().prepare(&spec).unwrap();
        let cn = normal.contiguity().average_contiguity();
        let cl = low.contiguity().average_contiguity();
        // With THS off the compaction daemon barely runs (§6.2), so the
        // two configurations land close together; allow seed noise.
        assert!(
            cn * 1.5 >= cl,
            "normal compaction ({cn:.2}) must not badly trail low compaction ({cl:.2})"
        );
    }

    #[test]
    fn memhog_scenario_prepares_successfully_at_50_percent() {
        let spec = benchmark("Povray").unwrap(); // small footprint
        let w = Scenario::default_with_memhog(0.5).prepare(&spec).unwrap();
        assert_eq!(w.footprint.len() as u64, spec.footprint_pages);
        assert!(w.kernel.frames().counts().pinned > 0, "memhog is holding memory");
    }

    #[test]
    fn prepare_many_shares_one_kernel() {
        let specs = [benchmark("Gobmk").unwrap(), benchmark("Povray").unwrap()];
        let multi = Scenario::default_linux().prepare_many(&specs).unwrap();
        assert_eq!(multi.parts.len(), 2);
        let (a, b) = (multi.parts[0].1, multi.parts[1].1);
        assert_ne!(a, b, "distinct address spaces");
        for (i, (spec, asid, footprint)) in multi.parts.iter().enumerate() {
            assert_eq!(footprint.len() as u64, spec.footprint_pages);
            let proc = multi.kernel.process(*asid).unwrap();
            for &vpn in footprint.iter() {
                assert!(proc.translate(vpn).is_some(), "part {i} page {vpn} unbacked");
            }
            assert!(multi.contiguity(i).average_contiguity() >= 1.0);
        }
        // Patterns roam their own footprints only.
        let mut g = multi.pattern(1, 7);
        for _ in 0..200 {
            let r = g.next_ref();
            assert!(multi.parts[1].2.contains(&r.vpn));
        }
    }

    #[test]
    fn faulty_preparation_completes_and_is_deterministic() {
        let spec = benchmark("Gobmk").unwrap();
        let scen = Scenario::default_linux().with_faults(FaultConfig::default());
        let a = scen.prepare(&spec).unwrap();
        let b = scen.prepare(&spec).unwrap();
        assert!(a.kernel.stats().faults_injected > 0, "the plan must fire");
        assert_eq!(a.footprint, b.footprint);
        assert_eq!(a.kernel.stats(), b.kernel.stats());
        // Same scenario without the plan allocates differently-degraded
        // memory but the same footprint VPNs.
        let clean = Scenario::default_linux().prepare(&spec).unwrap();
        assert_eq!(clean.kernel.stats().faults_injected, 0);
    }

    #[test]
    fn snapshot_round_trip_reproduces_the_prepared_workload() {
        let spec = benchmark("Gobmk").unwrap();
        let w = Scenario::default_with_memhog(0.25).prepare(&spec).unwrap();
        let mut enc = Enc::new();
        w.encode_snapshot(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        let back = PreparedWorkload::decode_snapshot(&mut dec, &spec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.scenario_name, w.scenario_name);
        assert_eq!(back.asid, w.asid);
        assert_eq!(back.footprint, w.footprint);
        assert_eq!(back.kernel.stats(), w.kernel.stats());
        assert_eq!(back.kernel.free_frames(), w.kernel.free_frames());
        let (a, b) = (w.contiguity(), back.contiguity());
        assert_eq!(a.average_contiguity(), b.average_contiguity());
        // Walk a sample of pages: identical translations and PTE addresses.
        let proc_a = w.kernel.process(w.asid).unwrap();
        let proc_b = back.kernel.process(back.asid).unwrap();
        for &vpn in w.footprint.iter().step_by(37) {
            assert_eq!(proc_a.translate(vpn), proc_b.translate(vpn));
        }
        // Decoding against the wrong spec is refused.
        let other = benchmark("Bzip2").unwrap();
        assert!(PreparedWorkload::decode_snapshot(&mut Dec::new(&bytes), &other).is_err());
    }

    #[test]
    fn clone_is_deep_for_the_kernel() {
        let spec = benchmark("Povray").unwrap();
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let mut c = w.clone();
        let before = w.kernel.stats();
        // Mutating the clone must not disturb the original.
        c.kernel.tick();
        let extra = c.kernel.spawn();
        c.kernel.malloc(extra, 64).unwrap();
        assert_eq!(w.kernel.stats(), before);
        assert!(w.kernel.process(extra).is_err());
        assert_eq!(w.footprint, c.footprint);
    }

    #[test]
    fn preparation_is_deterministic() {
        let spec = benchmark("Astar").unwrap();
        let a = Scenario::default_linux().prepare(&spec).unwrap();
        let b = Scenario::default_linux().prepare(&spec).unwrap();
        assert_eq!(a.footprint, b.footprint);
        assert_eq!(
            a.contiguity().average_contiguity(),
            b.contiguity().average_contiguity()
        );
    }

    #[test]
    fn with_policy_tags_names_only_for_non_default_policies() {
        let base = Scenario::default_linux();
        let name = base.name.clone();
        assert_eq!(base.clone().with_policy(PolicyKind::Default).name, name);
        let greedy = base.clone().with_policy(PolicyKind::GreedyContig);
        assert_eq!(greedy.name, format!("{name} [policy=greedy_contig]"));
        // Re-tagging replaces, never stacks, the suffix.
        let retagged = greedy.with_policy(PolicyKind::Adversarial);
        assert_eq!(retagged.name, format!("{name} [policy=adversarial]"));
        assert_eq!(retagged.clone().with_policy(PolicyKind::Default).name, name);
    }

    #[test]
    fn default_policy_prepares_byte_identically() {
        let spec = benchmark("Gobmk").unwrap();
        let plain = Scenario::default_linux().prepare(&spec).unwrap();
        let tagged = Scenario::default_linux()
            .with_policy(PolicyKind::Default)
            .prepare(&spec)
            .unwrap();
        let enc_of = |w: &PreparedWorkload| {
            let mut enc = Enc::new();
            w.encode_snapshot(&mut enc);
            enc.finish()
        };
        assert_eq!(enc_of(&plain), enc_of(&tagged), "DefaultPolicy must be a no-op");
    }

    #[test]
    fn no_thp_policy_backs_nothing_hugely() {
        let spec = benchmark("Sjeng").unwrap(); // big chunks: THP bait
        let w = Scenario::default_linux()
            .with_policy(PolicyKind::NoThp)
            .prepare(&spec)
            .unwrap();
        let stats = w.kernel.stats();
        assert_eq!(stats.thp_allocs, 0, "NoThp must deny every huge grant");
        assert_eq!(stats.policy_collapses_triggered, 0, "NoThp must veto khugepaged");
        assert!(stats.policy_huge_denies > 0, "denials must be counted");
        assert_eq!(w.kernel.process(w.asid).unwrap().page_table().stats().superpages, 0);
    }

    #[test]
    fn policy_contiguity_orders_greedy_above_default_above_adversarial() {
        let spec = benchmark("Mcf").unwrap();
        let contig = |kind| {
            Scenario::default_linux()
                .with_policy(kind)
                .prepare(&spec)
                .unwrap()
                .contiguity()
                .average_contiguity()
        };
        let greedy = contig(PolicyKind::GreedyContig);
        let default = contig(PolicyKind::Default);
        let adversarial = contig(PolicyKind::Adversarial);
        assert!(
            greedy >= default,
            "greedy_contig ({greedy:.2}) must not trail default ({default:.2})"
        );
        assert!(
            default > adversarial,
            "default ({default:.2}) must beat adversarial ({adversarial:.2})"
        );
    }

    #[test]
    fn non_default_policy_counters_are_live() {
        let spec = benchmark("Gobmk").unwrap();
        let w = Scenario::default_linux()
            .with_policy(PolicyKind::GreedyContig)
            .prepare(&spec)
            .unwrap();
        let stats = w.kernel.stats();
        assert!(stats.policy_decisions > 0);
        assert!(stats.policy_huge_grants > 0);
        assert!(stats.policy_compactions_requested > 0);
    }
}
