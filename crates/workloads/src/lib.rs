//! # colt-workloads — synthetic workload models for the CoLT reproduction
//!
//! The paper evaluates on 14 SPEC 2006 / BioBench benchmarks traced with
//! Simics (Table 1, §5). Lacking those binaries and traces, this crate
//! models each benchmark by the two properties that determine CoLT's
//! behavior — its allocation profile (what the buddy allocator and THS
//! see) and its access pattern (TLB pressure and temporal proximity) —
//! calibrated against the paper's published per-benchmark numbers (kept
//! verbatim in [`calibration`]).
//!
//! * [`spec`] — the 14 benchmark models,
//! * [`pattern`] — access-pattern generators,
//! * [`scenario`] — the §5.1.1 system configurations (THS × compaction ×
//!   memhog), machine aging, and the allocation phase,
//! * [`background`] — aging and interfering processes,
//! * [`trace`] — memory-reference records,
//! * [`calibration`] — the paper's numbers, for model parameterization
//!   and paper-vs-measured reporting.
//!
//! ## Quick example
//!
//! ```
//! use colt_workloads::{scenario::Scenario, spec::benchmark};
//!
//! # fn main() -> colt_os_mem::error::MemResult<()> {
//! let spec = benchmark("Gobmk").expect("a Table-1 benchmark");
//! let workload = Scenario::default_linux().prepare(&spec)?;
//! let report = workload.contiguity();
//! assert!(report.average_contiguity() >= 1.0);
//! # Ok(())
//! # }
//! ```

pub mod background;
pub mod calibration;
pub mod pattern;
pub mod scenario;
pub mod spec;
pub mod trace;

pub use calibration::{PaperBenchmark, Suite, PAPER_BENCHMARKS};
pub use pattern::{PatternGen, PatternSpec};
pub use scenario::{PreparedWorkload, Scenario};
pub use spec::{all_benchmarks, benchmark, BenchmarkSpec};
pub use trace::MemRef;
