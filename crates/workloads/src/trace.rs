//! Memory-reference records.
//!
//! The paper extracts micro-op-level memory traces with Simics (§5.2.1);
//! we generate equivalent streams synthetically. The TLB-relevant content
//! of a trace record is the virtual page touched; the line offset within
//! the page feeds the data-cache model.

use colt_os_mem::addr::{VirtAddr, Vpn, PAGE_SIZE};

/// Cache lines per 4KB page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / 64;

/// One data memory reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Virtual page touched.
    pub vpn: Vpn,
    /// Cache-line index within the page (0..64).
    pub line: u8,
    /// Store (true) or load (false).
    pub write: bool,
}

impl MemRef {
    /// The full virtual address of the reference (line granularity).
    pub fn virt_addr(&self) -> VirtAddr {
        VirtAddr::new(self.vpn.raw() * PAGE_SIZE + self.line as u64 * 64)
    }
}

/// Writes a reference stream in the plain-text trace format:
/// one `vpn line rw` triple per line, `vpn` in hex.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_trace<W: std::io::Write>(mut w: W, refs: &[MemRef]) -> std::io::Result<()> {
    for r in refs {
        writeln!(w, "{:x} {} {}", r.vpn.raw(), r.line, u8::from(r.write))?;
    }
    Ok(())
}

/// Reads a reference stream written by [`write_trace`]. Lines that are
/// empty or start with `#` are skipped, so traces can carry comments.
///
/// # Errors
/// Returns `InvalidData` on malformed records, plus underlying I/O
/// errors.
pub fn read_trace<R: std::io::BufRead>(r: R) -> std::io::Result<Vec<MemRef>> {
    use std::io::{Error, ErrorKind};
    let mut out = Vec::new();
    for (no, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |what: &str| {
            Error::new(ErrorKind::InvalidData, format!("trace line {}: {what}", no + 1))
        };
        let vpn = u64::from_str_radix(parts.next().ok_or_else(|| bad("missing vpn"))?, 16)
            .map_err(|_| bad("bad vpn"))?;
        let line_idx: u64 = parts
            .next()
            .ok_or_else(|| bad("missing line index"))?
            .parse()
            .map_err(|_| bad("bad line index"))?;
        if line_idx >= LINES_PER_PAGE {
            return Err(bad("line index out of range"));
        }
        let write: u8 = parts
            .next()
            .ok_or_else(|| bad("missing rw flag"))?
            .parse()
            .map_err(|_| bad("bad rw flag"))?;
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        out.push(MemRef { vpn: Vpn::new(vpn), line: line_idx as u8, write: write != 0 });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_combines_page_and_line() {
        let r = MemRef { vpn: Vpn::new(3), line: 2, write: false };
        assert_eq!(r.virt_addr().raw(), 3 * 4096 + 128);
        assert_eq!(r.virt_addr().page(), Vpn::new(3));
    }

    #[test]
    fn lines_per_page_is_64() {
        assert_eq!(LINES_PER_PAGE, 64);
    }

    #[test]
    fn trace_round_trips() {
        let refs = vec![
            MemRef { vpn: Vpn::new(0x1234), line: 7, write: true },
            MemRef { vpn: Vpn::new(0xABCDEF), line: 63, write: false },
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &refs).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn trace_reader_skips_comments_and_blanks() {
        let text = b"# a comment

1f 3 0
";
        let refs = read_trace(&text[..]).unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].vpn, Vpn::new(0x1f));
    }

    #[test]
    fn trace_reader_rejects_garbage() {
        assert!(read_trace(&b"zz 3 0
"[..]).is_err());
        assert!(read_trace(&b"1f 99 0
"[..]).is_err(), "line index out of range");
        assert!(read_trace(&b"1f 3
"[..]).is_err(), "missing field");
        assert!(read_trace(&b"1f 3 0 junk
"[..]).is_err(), "trailing field");
    }
}
