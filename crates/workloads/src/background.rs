//! Background system load: machine "aging" and interfering processes.
//!
//! The paper measures contiguity on a realistically fragmented machine
//! ("a machine that has already run a number of applications … for two
//! months", §5.1.1) with other processes allocating concurrently. We
//! reproduce both effects deterministically: an aging pass churns
//! allocations from several background processes before the benchmark
//! starts, and an [`Interferer`] injects competing allocations between
//! the benchmark's own mallocs.

use colt_os_mem::addr::{Asid, Vpn};
use colt_os_mem::error::MemResult;
use colt_os_mem::kernel::Kernel;
use colt_prng::rngs::StdRng;
use colt_prng::{Rng, SeedableRng};

/// How hard the aging pass churns memory.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AgingConfig {
    /// Fill physical memory up to this fraction before punching holes —
    /// a long-running machine's memory is essentially all in use (page
    /// cache and resident processes).
    pub fill_fraction: f64,
    /// Fraction of the fill allocations freed afterwards, leaving
    /// scattered holes whose sizes follow the allocation sizes.
    pub hole_fraction: f64,
    /// Maximum pages per background allocation.
    pub max_chunk_pages: u64,
    /// Extra alloc/free churn operations after hole punching, mixing the
    /// free-space pattern further.
    pub churn_ops: u32,
}

impl Default for AgingConfig {
    fn default() -> Self {
        Self { fill_fraction: 0.97, hole_fraction: 0.50, max_chunk_pages: 3, churn_ops: 600 }
    }
}

/// Probability that a fill allocation is a large buffer (hundreds of
/// pages) rather than a small chunk — the heavy tail that leaves the
/// occasional large free region behind, like a closed application's
/// buffers on a real machine.
const LARGE_ALLOC_PROB: f64 = 0.0005;

/// Ages the system the way two months of use would (paper §5.1.1):
/// background processes fill nearly all of memory with small mixed
/// anonymous/file allocations, then a large share is freed in random
/// order, leaving free space shattered into allocation-sized holes.
/// Returns the background ASIDs (still live and holding memory).
///
/// # Errors
/// Propagates kernel allocation failures (aging stays within the fill
/// fraction, so failure indicates a configuration error).
pub fn age_system(kernel: &mut Kernel, config: AgingConfig, seed: u64) -> MemResult<Vec<Asid>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let procs: Vec<Asid> = (0..3).map(|_| kernel.spawn()).collect();
    let total = kernel.buddy().nr_frames();
    let mut live: Vec<(Asid, Vpn, u64)> = Vec::new();

    // Phase 1: fill memory to the target fraction — mostly small chunks,
    // with an occasional large buffer (the heavy tail). Filling runs all
    // the way down (no virgin strip survives months of uptime).
    let fill_target = ((total as f64 * (1.0 - config.fill_fraction)) as u64).min(128);
    while kernel.free_frames() > fill_target {
        let asid = procs[rng.gen_range(0..procs.len())];
        let pages = if rng.gen_bool(LARGE_ALLOC_PROB) {
            // Half the large buffers are THP-eligible (>= 512 pages):
            // with THS on, their faults trigger defrag compaction — the
            // side effect that raises *other* processes' contiguity
            // (paper §6.2's Omnetpp explanation).
            rng.gen_range(256u64..=768)
        } else {
            rng.gen_range(1..=config.max_chunk_pages)
        }
        .min(kernel.free_frames() - fill_target);
        // A third of background traffic is file-backed (never THP).
        let base = if rng.gen_bool(0.33) {
            kernel.mmap_file(asid, pages)?
        } else {
            kernel.malloc(asid, pages)?
        };
        live.push((asid, base, pages));
    }

    // Phase 2: punch holes by freeing a random share of allocations.
    let holes = (live.len() as f64 * config.hole_fraction) as usize;
    for _ in 0..holes {
        if live.is_empty() {
            break;
        }
        let idx = rng.gen_range(0..live.len());
        let (asid, base, _) = live.swap_remove(idx);
        kernel.free(asid, base)?;
    }

    // Phase 3: churn to mix the hole pattern (no compaction ticks here —
    // an aged machine's free space stays fragmented until something
    // triggers the daemon).
    for _ in 0..config.churn_ops {
        if rng.gen_bool(0.5) && !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            let (asid, base, _) = live.swap_remove(idx);
            kernel.free(asid, base)?;
        } else {
            let asid = procs[rng.gen_range(0..procs.len())];
            let pages = rng.gen_range(1..=config.max_chunk_pages.min(16));
            if kernel.free_frames() < pages + fill_target {
                continue;
            }
            let base = if rng.gen_bool(0.33) {
                kernel.mmap_file(asid, pages)?
            } else {
                kernel.malloc(asid, pages)?
            };
            live.push((asid, base, pages));
        }
    }
    // Phase 4: a large THP-using application starts, touches its heap,
    // and exits. With THS on, every 2MB first-touch triggers defrag
    // compaction, consolidating free space machine-wide — the side
    // effect through which THS raises *other* processes' contiguity
    // (paper §6.2). With THS off the same faults allocate single pages
    // and change nothing.
    let app = kernel.spawn();
    let mut heaps = Vec::new();
    for _ in 0..10 {
        let pages = rng.gen_range(512u64..=1024);
        if kernel.free_frames() < pages + fill_target {
            break;
        }
        let base = kernel.reserve(app, pages, colt_os_mem::vma::VmaKind::Anonymous)?;
        for i in 0..pages {
            kernel.touch(app, base.offset(i))?;
        }
        heaps.push(base);
    }
    for base in heaps {
        kernel.free(app, base)?;
    }

    Ok(procs)
}

/// A background process that allocates between the benchmark's mallocs,
/// breaking up the buddy allocator's contiguous runs.
#[derive(Debug)]
pub struct Interferer {
    asid: Asid,
    live: Vec<Vpn>,
    rng: StdRng,
}

impl Interferer {
    /// Spawns the interfering process.
    pub fn new(kernel: &mut Kernel, seed: u64) -> Self {
        Self { asid: kernel.spawn(), live: Vec::new(), rng: StdRng::seed_from_u64(seed) }
    }

    /// The interferer's address space.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Allocates roughly `pages` in small chunks, freeing about 40% of
    /// its older allocations as it goes (steady-state process behavior).
    ///
    /// # Errors
    /// Propagates kernel allocation failures.
    pub fn interfere(&mut self, kernel: &mut Kernel, pages: u64) -> MemResult<()> {
        let mut remaining = pages;
        while remaining > 0 {
            let chunk = self.rng.gen_range(1u64..=16).min(remaining);
            let base = kernel.malloc(self.asid, chunk)?;
            self.live.push(base);
            remaining -= chunk;
            if self.live.len() > 4 && self.rng.gen_bool(0.4) {
                let idx = self.rng.gen_range(0..self.live.len());
                let base = self.live.swap_remove(idx);
                kernel.free(self.asid, base)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_os_mem::kernel::KernelConfig;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig { nr_frames: 1 << 14, ..KernelConfig::ths_off() })
    }

    #[test]
    fn aging_fragments_free_memory() {
        let mut k = kernel();
        let blocks_before: usize = k.buddy().histogram().counts.iter().sum();
        age_system(&mut k, AgingConfig::default(), 7).unwrap();
        let blocks_after: usize = k.buddy().histogram().counts.iter().sum();
        assert!(blocks_after > blocks_before, "aging must shatter free memory");
        // Phase 2 frees ~half the fill *allocations*, so free frames land
        // near 50% of memory with seed-dependent spread; assert well below
        // the expectation so the check flags real leaks, not RNG luck.
        assert!(k.free_frames() > (1 << 14) * 2 / 5, "aging must not consume most memory");
    }

    #[test]
    fn aging_is_deterministic() {
        let run = |seed| {
            let mut k = kernel();
            age_system(&mut k, AgingConfig::default(), seed).unwrap();
            (k.free_frames(), k.buddy().histogram().counts.clone())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn aging_cleanup_is_independent_of_kill_order() {
        // The background processes hold memory after aging; reclaiming
        // them must leave the same machine no matter which dies first
        // (frees go back to the buddy allocator, which merges by
        // address, not by teardown order).
        let run = |reverse: bool| {
            let mut k = kernel();
            let mut procs = age_system(&mut k, AgingConfig::default(), 11).unwrap();
            if reverse {
                procs.reverse();
            }
            for asid in procs {
                k.exit(asid).unwrap();
            }
            (k.free_frames(), k.buddy().histogram().counts.clone())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn interferer_allocates_and_churns() {
        let mut k = kernel();
        let mut i = Interferer::new(&mut k, 5);
        let before = k.free_frames();
        i.interfere(&mut k, 64).unwrap();
        assert!(k.free_frames() < before);
        // It holds some but not all of what it allocated. (Order-0
        // allocations may park a whole per-CPU batch, so allow that
        // slack on top of the 64 requested pages.)
        let held = before - k.free_frames();
        assert!(held > 0 && held <= 64 + 32, "held {held}");
    }
}
