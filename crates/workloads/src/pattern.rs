//! Access-pattern generators.
//!
//! Each of the 14 benchmark models (see [`crate::spec`]) is characterized
//! by a mixture of these primitive behaviors over its allocated footprint:
//! streaming sweeps, uniform-random access, hot/cold locality, pointer
//! chasing, and strided grid traversal. What matters for CoLT is (a) how
//! much TLB pressure the stream creates and (b) whether contiguous pages
//! are touched in temporal proximity — the property the paper notes is
//! required for coalesced entries to pay off (§7.1.1, the Tigr
//! discussion).

use crate::trace::{MemRef, LINES_PER_PAGE};
use colt_os_mem::addr::Vpn;
use colt_prng::rngs::SmallRng;
use colt_prng::{Rng, SeedableRng};
use std::sync::Arc;

/// Declarative description of an access pattern.
#[derive(Clone, Debug)]
pub enum PatternSpec {
    /// Sweep the footprint in virtual-address order, touching
    /// `accesses_per_page` lines of each page before moving on
    /// (streaming compression/physics codes: Bzip2, Milc).
    Sequential {
        /// Consecutive line touches per page (≥ 1).
        accesses_per_page: u32,
    },
    /// Uniformly random page each access (hash-table traffic: Mcf-like
    /// worst case).
    UniformRandom,
    /// A hot *contiguous window* of pages absorbs most accesses
    /// (game-tree searchers: Gobmk, Sjeng). Working sets are contiguous
    /// in virtual address space — objects and arrays cluster — which is
    /// exactly the spatial locality CoLT's reach multiplication needs.
    HotCold {
        /// Fraction of the footprint that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability an access goes to the hot window.
        hot_probability: f64,
    },
    /// Follow a fixed random permutation cycle over the pages (pointer
    /// chasing: Mcf, Mummer, Astar graph/suffix-tree codes).
    PointerChase,
    /// Jump by a fixed page stride with wraparound, touching
    /// `accesses_per_touch` lines per visit (grid sweeps: CactusADM,
    /// GemsFDTD).
    Strided {
        /// Page stride between successive touches.
        stride_pages: u64,
        /// Line touches per visited page.
        accesses_per_touch: u32,
    },
    /// Sweep a window of pages repeatedly before advancing it (block
    /// compression: Bzip2 processes ~900KB blocks that fit the L2 TLB's
    /// reach but not the L1's). Touches each page of the window
    /// `accesses_per_page` times per sweep, `repeats` sweeps per window.
    WindowedSweep {
        /// Window size in pages.
        window_pages: u64,
        /// Sweeps over the window before it advances.
        repeats: u32,
        /// Line touches per page per sweep.
        accesses_per_page: u32,
    },
    /// Weighted mixture: each access is drawn from one of the
    /// sub-patterns with the given weight.
    Mixture(Vec<(f64, PatternSpec)>),
    /// Program phases: run each sub-pattern for its access budget, then
    /// move to the next, wrapping around (initialization scan followed by
    /// compute loops, etc.).
    Phased(Vec<(u64, PatternSpec)>),
}

/// A compiled, seeded pattern generator over a concrete footprint.
///
/// ```
/// use colt_workloads::pattern::{PatternGen, PatternSpec};
/// use colt_os_mem::addr::Vpn;
/// use std::sync::Arc;
/// let footprint: Arc<Vec<Vpn>> = Arc::new((0..100).map(Vpn::new).collect());
/// let mut gen = PatternGen::new(&PatternSpec::UniformRandom, footprint, 42);
/// let r = gen.next_ref();
/// assert!(r.vpn.raw() < 100);
/// ```
#[derive(Clone, Debug)]
pub struct PatternGen {
    footprint: Arc<Vec<Vpn>>,
    rng: SmallRng,
    state: GenState,
}

#[derive(Clone, Debug)]
enum GenState {
    Sequential {
        accesses_per_page: u32,
        pos: usize,
        line: u32,
    },
    UniformRandom,
    HotCold {
        hot_pages: usize,
        hot_probability: f64,
        /// Start of the contiguous hot window within the footprint.
        window_start: usize,
    },
    PointerChase {
        /// successor[i] = next page index in the cycle.
        successor: Arc<Vec<u32>>,
        pos: usize,
    },
    Strided {
        stride_pages: u64,
        accesses_per_touch: u32,
        pos: u64,
        line: u32,
    },
    WindowedSweep {
        window_pages: u64,
        repeats: u32,
        accesses_per_page: u32,
        window_start: u64,
        sweep: u32,
        pos_in_window: u64,
        line: u32,
    },
    Mixture {
        cumulative: Vec<f64>,
        gens: Vec<PatternGen>,
    },
    Phased {
        lengths: Vec<u64>,
        gens: Vec<PatternGen>,
        phase: usize,
        used: u64,
    },
}

impl PatternGen {
    /// Compiles `spec` over `footprint` (the allocated pages in VA
    /// order), seeding all randomness from `seed`.
    ///
    /// # Panics
    /// Panics if the footprint is empty or the spec is degenerate
    /// (empty mixture, zero weights, zero strides).
    pub fn new(spec: &PatternSpec, footprint: Arc<Vec<Vpn>>, seed: u64) -> Self {
        assert!(!footprint.is_empty(), "pattern needs a non-empty footprint");
        let mut rng = SmallRng::seed_from_u64(seed);
        let state = match spec {
            PatternSpec::Sequential { accesses_per_page } => {
                assert!(*accesses_per_page >= 1, "must touch each page at least once");
                // Start at a random phase so bounded simulation windows
                // sample the whole footprint without positional bias.
                let pos = rng.gen_range(0..footprint.len());
                GenState::Sequential { accesses_per_page: *accesses_per_page, pos, line: 0 }
            }
            PatternSpec::UniformRandom => GenState::UniformRandom,
            PatternSpec::HotCold { hot_fraction, hot_probability } => {
                assert!(*hot_fraction > 0.0 && *hot_fraction <= 1.0, "hot fraction in (0,1]");
                assert!((0.0..=1.0).contains(hot_probability), "probability in [0,1]");
                let n = footprint.len();
                let hot_pages = ((n as f64 * hot_fraction).ceil() as usize).max(1);
                GenState::HotCold {
                    hot_pages,
                    hot_probability: *hot_probability,
                    window_start: rng.gen_range(0..n),
                }
            }
            PatternSpec::PointerChase => {
                let n = footprint.len();
                // Random cyclic permutation (Sattolo's algorithm).
                let mut perm: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..i);
                    perm.swap(i, j);
                }
                // perm is a cycle through all indices; successor of
                // perm[i] is perm[(i+1) % n].
                let mut successor = vec![0u32; n];
                for i in 0..n {
                    successor[perm[i] as usize] = perm[(i + 1) % n];
                }
                GenState::PointerChase { successor: Arc::new(successor), pos: 0 }
            }
            PatternSpec::Strided { stride_pages, accesses_per_touch } => {
                assert!(*stride_pages > 0, "stride must be positive");
                assert!(*accesses_per_touch >= 1);
                GenState::Strided {
                    stride_pages: *stride_pages,
                    accesses_per_touch: *accesses_per_touch,
                    pos: 0,
                    line: 0,
                }
            }
            PatternSpec::WindowedSweep { window_pages, repeats, accesses_per_page } => {
                assert!(*window_pages > 0 && *repeats >= 1 && *accesses_per_page >= 1);
                GenState::WindowedSweep {
                    window_pages: *window_pages,
                    repeats: *repeats,
                    accesses_per_page: *accesses_per_page,
                    window_start: 0,
                    sweep: 0,
                    pos_in_window: 0,
                    line: 0,
                }
            }
            PatternSpec::Phased(phases) => {
                assert!(!phases.is_empty(), "phases must be non-empty");
                assert!(
                    phases.iter().all(|&(len, _)| len > 0),
                    "each phase needs a positive access budget"
                );
                let gens = phases
                    .iter()
                    .enumerate()
                    .map(|(i, (_, sub))| {
                        PatternGen::new(
                            sub,
                            Arc::clone(&footprint),
                            seed.wrapping_add(0xFA5E + i as u64 * 0x51D),
                        )
                    })
                    .collect();
                GenState::Phased {
                    lengths: phases.iter().map(|&(len, _)| len).collect(),
                    gens,
                    phase: 0,
                    used: 0,
                }
            }
            PatternSpec::Mixture(parts) => {
                assert!(!parts.is_empty(), "mixture must have components");
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                assert!(total > 0.0, "mixture weights must be positive");
                let mut cumulative = Vec::with_capacity(parts.len());
                let mut acc = 0.0;
                let mut gens = Vec::with_capacity(parts.len());
                for (i, (w, sub)) in parts.iter().enumerate() {
                    acc += w / total;
                    cumulative.push(acc);
                    gens.push(PatternGen::new(
                        sub,
                        Arc::clone(&footprint),
                        seed.wrapping_add(0x9E37 + i as u64 * 0x79B9),
                    ));
                }
                GenState::Mixture { cumulative, gens }
            }
        };
        Self { footprint, rng, state }
    }

    /// Produces the next memory reference.
    pub fn next_ref(&mut self) -> MemRef {
        let n = self.footprint.len();
        match &mut self.state {
            GenState::Sequential { accesses_per_page, pos, line } => {
                let vpn = self.footprint[*pos];
                let stride = LINES_PER_PAGE / (*accesses_per_page as u64).clamp(1, LINES_PER_PAGE);
                let l = (*line as u64 * stride) % LINES_PER_PAGE;
                *line += 1;
                if *line >= *accesses_per_page {
                    *line = 0;
                    *pos = (*pos + 1) % n;
                }
                MemRef { vpn, line: l as u8, write: false }
            }
            GenState::UniformRandom => {
                let vpn = self.footprint[self.rng.gen_range(0..n)];
                let line = self.rng.gen_range(0..LINES_PER_PAGE) as u8;
                MemRef { vpn, line, write: self.rng.gen_bool(0.3) }
            }
            GenState::HotCold { hot_pages, hot_probability, window_start } => {
                let idx = if self.rng.gen_bool(*hot_probability) {
                    (*window_start + self.rng.gen_range(0..*hot_pages)) % n
                } else {
                    self.rng.gen_range(0..n)
                };
                MemRef {
                    vpn: self.footprint[idx],
                    line: self.rng.gen_range(0..LINES_PER_PAGE) as u8,
                    write: self.rng.gen_bool(0.3),
                }
            }
            GenState::PointerChase { successor, pos } => {
                let vpn = self.footprint[*pos];
                *pos = successor[*pos] as usize;
                MemRef { vpn, line: self.rng.gen_range(0..LINES_PER_PAGE) as u8, write: false }
            }
            GenState::Strided { stride_pages, accesses_per_touch, pos, line } => {
                let vpn = self.footprint[(*pos % n as u64) as usize];
                let l = *line as u64 % LINES_PER_PAGE;
                *line += 1;
                if *line >= *accesses_per_touch {
                    *line = 0;
                    *pos = pos.wrapping_add(*stride_pages);
                }
                MemRef { vpn, line: l as u8, write: self.rng.gen_bool(0.2) }
            }
            GenState::WindowedSweep {
                window_pages,
                repeats,
                accesses_per_page,
                window_start,
                sweep,
                pos_in_window,
                line,
            } => {
                let w = (*window_pages).min(n as u64);
                let idx = ((*window_start + *pos_in_window) % n as u64) as usize;
                let vpn = self.footprint[idx];
                let l = *line as u64 % LINES_PER_PAGE;
                *line += 1;
                if *line >= *accesses_per_page {
                    *line = 0;
                    *pos_in_window += 1;
                    if *pos_in_window >= w {
                        *pos_in_window = 0;
                        *sweep += 1;
                        if *sweep >= *repeats {
                            *sweep = 0;
                            *window_start = (*window_start + w) % n as u64;
                        }
                    }
                }
                MemRef { vpn, line: l as u8, write: self.rng.gen_bool(0.3) }
            }
            GenState::Mixture { cumulative, gens } => {
                let x: f64 = self.rng.gen_f64();
                let which = cumulative.iter().position(|&c| x <= c).unwrap_or(gens.len() - 1);
                gens[which].next_ref()
            }
            GenState::Phased { lengths, gens, phase, used } => {
                if *used >= lengths[*phase] {
                    *used = 0;
                    *phase = (*phase + 1) % gens.len();
                }
                *used += 1;
                gens[*phase].next_ref()
            }
        }
    }

    /// Produces `count` references into a vector.
    pub fn take_refs(&mut self, count: usize) -> Vec<MemRef> {
        (0..count).map(|_| self.next_ref()).collect()
    }

    /// The footprint the generator roams over.
    pub fn footprint(&self) -> &Arc<Vec<Vpn>> {
        &self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn footprint(n: u64) -> Arc<Vec<Vpn>> {
        Arc::new((0..n).map(|i| Vpn::new(0x1000 + i)).collect())
    }

    #[test]
    fn sequential_visits_pages_in_order() {
        let mut g = PatternGen::new(
            &PatternSpec::Sequential { accesses_per_page: 2 },
            footprint(4),
            1,
        );
        let refs = g.take_refs(8);
        let pages: Vec<u64> = refs.iter().map(|r| r.vpn.raw() - 0x1000).collect();
        // Starts at a seed-derived phase, then ascends (mod wraparound)
        // touching each page twice.
        let start = pages[0];
        let expected: Vec<u64> = (0..4u64).flat_map(|i| [(start + i) % 4; 2]).collect();
        assert_eq!(pages, expected);
        // Continues wrapping.
        assert_eq!(g.next_ref().vpn.raw() - 0x1000, start);
    }

    #[test]
    fn uniform_random_stays_in_footprint() {
        let mut g = PatternGen::new(&PatternSpec::UniformRandom, footprint(10), 7);
        for r in g.take_refs(1000) {
            assert!(r.vpn.raw() >= 0x1000 && r.vpn.raw() < 0x100A);
            assert!((r.line as u64) < LINES_PER_PAGE);
        }
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let mut g = PatternGen::new(
            &PatternSpec::HotCold { hot_fraction: 0.1, hot_probability: 0.9 },
            footprint(100),
            3,
        );
        let mut counts = std::collections::HashMap::new();
        for r in g.take_refs(20_000) {
            *counts.entry(r.vpn.raw()).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.8 * 20_000.0,
            "top 10 pages must absorb most accesses, got {top10}"
        );
    }

    #[test]
    fn pointer_chase_is_a_full_cycle() {
        let mut g = PatternGen::new(&PatternSpec::PointerChase, footprint(50), 11);
        let refs = g.take_refs(50);
        let mut seen: Vec<u64> = refs.iter().map(|r| r.vpn.raw()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "one lap visits every page exactly once");
        // The next lap repeats the same sequence.
        let second = g.take_refs(50);
        assert_eq!(
            refs.iter().map(|r| r.vpn).collect::<Vec<_>>(),
            second.iter().map(|r| r.vpn).collect::<Vec<_>>()
        );
    }

    #[test]
    fn strided_jumps_by_stride() {
        let mut g = PatternGen::new(
            &PatternSpec::Strided { stride_pages: 3, accesses_per_touch: 1 },
            footprint(10),
            5,
        );
        let pages: Vec<u64> = g.take_refs(5).iter().map(|r| r.vpn.raw() - 0x1000).collect();
        assert_eq!(pages, vec![0, 3, 6, 9, 2]);
    }

    #[test]
    fn mixture_draws_from_all_components() {
        let spec = PatternSpec::Mixture(vec![
            (0.5, PatternSpec::Sequential { accesses_per_page: 1 }),
            (0.5, PatternSpec::UniformRandom),
        ]);
        let mut g = PatternGen::new(&spec, footprint(1000), 9);
        let refs = g.take_refs(2000);
        // The sequential component produces many adjacent-page pairs; a
        // pure uniform stream over 1000 pages almost never would.
        let adjacent_pairs = refs
            .windows(2)
            .filter(|w| w[1].vpn.raw() == w[0].vpn.raw() || w[1].vpn.raw() == w[0].vpn.raw() + 1)
            .count();
        assert!(adjacent_pairs > 200, "sequential component visible ({adjacent_pairs} pairs)");
        // And the random component must roam widely.
        let distinct: std::collections::HashSet<u64> = refs.iter().map(|r| r.vpn.raw()).collect();
        assert!(distinct.len() > 300, "random component visible ({} pages)", distinct.len());
    }

    #[test]
    fn windowed_sweep_repeats_before_advancing() {
        let mut g = PatternGen::new(
            &PatternSpec::WindowedSweep { window_pages: 3, repeats: 2, accesses_per_page: 1 },
            footprint(9),
            1,
        );
        let pages: Vec<u64> = g.take_refs(9).iter().map(|r| r.vpn.raw() - 0x1000).collect();
        assert_eq!(pages, vec![0, 1, 2, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn windowed_sweep_window_larger_than_footprint_clamps() {
        let mut g = PatternGen::new(
            &PatternSpec::WindowedSweep { window_pages: 100, repeats: 1, accesses_per_page: 1 },
            footprint(4),
            1,
        );
        let pages: Vec<u64> = g.take_refs(8).iter().map(|r| r.vpn.raw() - 0x1000).collect();
        assert_eq!(pages, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn phased_patterns_switch_after_their_budget() {
        let spec = PatternSpec::Phased(vec![
            (6, PatternSpec::Sequential { accesses_per_page: 1 }),
            (4, PatternSpec::PointerChase),
        ]);
        let mut g = PatternGen::new(&spec, footprint(20), 3);
        let refs = g.take_refs(20);
        // First six references ascend sequentially (mod wraparound).
        let seq: Vec<u64> = refs[..6].iter().map(|r| r.vpn.raw()).collect();
        for w in seq.windows(2) {
            let delta = (w[1] + 20 - w[0]) % 20;
            assert_eq!(delta, 1, "sequential phase must ascend: {seq:?}");
        }
        // After 6 + 4 accesses the sequential phase resumes where the
        // generator's second lap places it — just check determinism and
        // coverage of both behaviors.
        let again = PatternGen::new(&spec, footprint(20), 3).take_refs(20);
        assert_eq!(refs, again);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_phase_panics() {
        let _ = PatternGen::new(
            &PatternSpec::Phased(vec![(0, PatternSpec::UniformRandom)]),
            footprint(4),
            0,
        );
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let spec = PatternSpec::HotCold { hot_fraction: 0.2, hot_probability: 0.8 };
        let a = PatternGen::new(&spec, footprint(100), 42).take_refs(100);
        let b = PatternGen::new(&spec, footprint(100), 42).take_refs(100);
        assert_eq!(a, b);
        let c = PatternGen::new(&spec, footprint(100), 43).take_refs(100);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "non-empty footprint")]
    fn empty_footprint_panics() {
        let _ = PatternGen::new(&PatternSpec::UniformRandom, Arc::new(Vec::new()), 0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = PatternGen::new(
            &PatternSpec::Strided { stride_pages: 0, accesses_per_touch: 1 },
            footprint(4),
            0,
        );
    }
}
