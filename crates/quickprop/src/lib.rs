//! # colt-quickprop — std-only property testing
//!
//! A proptest-shaped shim so the repo's property suites run **offline**
//! with zero crates.io dependencies. It mirrors the subset of proptest's
//! API the suites actually use — `proptest!`, `prop_oneof!`, `Just`,
//! `prop::collection::vec`, `prop::bool::ANY`, integer/float range
//! strategies, tuples, `prop_map` — on top of [`colt_prng`].
//!
//! Differences from real proptest, deliberately accepted:
//! - **no automatic shrinking**: a failing `proptest!` case reports its
//!   inputs via the assert message but is not minimised. Drivers that
//!   replay event lists (e.g. the `repro --check` fuzzer) can minimise
//!   a failing list explicitly with [`shrink_list`];
//! - **derived seeding**: each test's cases are seeded from an FNV-1a
//!   hash of its module path + name, so runs are fully deterministic
//!   (no `PROPTEST_` env handling, no persistence files);
//! - `prop_assume!` skips the case instead of drawing a replacement.

use colt_prng::{Rng, SeedableRng};

/// The generator handed to strategies. One fresh instance per case.
pub type TestRng = colt_prng::rngs::SmallRng;

/// How many cases each property runs (proptest's `ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases: enough to exercise the structured generators here while
    /// keeping `cargo test -q` fast on the full workspace.
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A value generator. `Clone` is part of the contract (as in proptest)
/// so strategies compose freely — e.g. `leaf.clone()` inside
/// `prop_oneof!` arms.
pub trait Strategy: Clone {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values (proptest's `prop_map`).
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { source: self, map }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always produces a clone of the wrapped value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Object-safe face of [`Strategy`], so `prop_oneof!` can mix arm types
/// that share only their output type.
pub trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
    fn clone_box(&self) -> Box<dyn StrategyObj<T>>;
}

impl<S> StrategyObj<S::Value> for S
where
    S: Strategy + 'static,
{
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }

    fn clone_box(&self) -> Box<dyn StrategyObj<S::Value>> {
        Box::new(self.clone())
    }
}

/// Uniform choice among heterogeneous arms (proptest's `Union`; built
/// by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<Box<dyn StrategyObj<T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn StrategyObj<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        Self { arms: self.arms.iter().map(|a| a.clone_box()).collect() }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate_obj(rng)
    }
}

/// proptest's `prop::` namespace.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use colt_prng::Rng;

        /// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
        pub trait IntoSizeRange {
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self + 1)
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end)
            }
        }

        /// See [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max_exclusive: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.min..self.max_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector whose elements come from `element` and whose length
        /// comes from `size` (proptest's `prop::collection::vec`).
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max_exclusive) = size.bounds();
            VecStrategy { element, min, max_exclusive }
        }
    }

    pub mod bool {
        use super::super::{Strategy, TestRng};
        use colt_prng::Rng;

        /// See [`ANY`].
        #[derive(Clone, Copy, Debug)]
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// A fair coin (proptest's `prop::bool::ANY`).
        pub const ANY: AnyBool = AnyBool;
    }
}

/// FNV-1a, used to derive a per-test base seed from its full name so
/// every property gets a distinct but reproducible case stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The generator for one case: test-name seed mixed with the case index.
pub fn case_rng(base_seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Minimises a failing input list with complement-based delta debugging
/// (Zeller's *ddmin*). `fails` must return `true` on any list that still
/// reproduces the failure; it is assumed to hold for `items` itself
/// (if it does not, `items` is returned unchanged). The result is
/// *1-minimal*: removing any single remaining element no longer fails.
///
/// Element order is preserved, which matters for event-replay shrinking
/// where interleaving *is* the bug.
pub fn shrink_list<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !complement.is_empty() && fails(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break; // already 1-minimal
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// proptest's entry macro: wraps each `fn name(arg in strategy, ...)`
/// into a plain test that redraws its arguments [`ProptestConfig::cases`]
/// times. An optional `#![proptest_config(...)]` header applies to every
/// function in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)*);
            let __base_seed =
                $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(__base_seed, __case);
                let ($($arg,)*) = &__strategies;
                $(let $arg = $crate::Strategy::generate($arg, &mut __rng);)*
                $body
            }
        }
    )*};
}

/// proptest's `prop_assert!`: no shrinking here, so it is `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// proptest's `prop_assert_eq!`: no shrinking here, so `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// proptest's `prop_assume!`: skips the current case when the
/// precondition fails (no replacement draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Boxes one `prop_oneof!` arm. A helper fn rather than an `as` cast so
/// the arm's value type is fixed by projection instead of left to
/// deferred-coercion inference (which fails on larger compositions).
pub fn oneof_arm<S: Strategy + 'static>(arm: S) -> Box<dyn StrategyObj<S::Value>> {
    Box::new(arm)
}

/// proptest's `prop_oneof!`: uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::oneof_arm($arm)),+])
    };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        case_rng, fnv1a, oneof_arm, prop_assert, prop_assert_eq, prop_assume, prop_oneof,
        proptest, shrink_list, Just, Map, OneOf, ProptestConfig, Strategy, StrategyObj, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Alloc(u64),
        Free,
    }

    fn arbitrary_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![(1u64..=64).prop_map(Op::Alloc), Just(Op::Free)],
            1..30,
        )
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..17, y in 3u32..=9, f in 0.25f64..0.75) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((3..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10), "out-of-range element in {:?}", v);
        }

        #[test]
        fn fixed_size_vec_is_exact(v in prop::collection::vec(prop::bool::ANY, 20)) {
            prop_assert_eq!(v.len(), 20);
        }

        #[test]
        fn oneof_composes_with_prop_map(ops in arbitrary_ops()) {
            prop_assert!(!ops.is_empty());
            for op in &ops {
                if let Op::Alloc(n) = op {
                    prop_assert!((1..=64).contains(n));
                }
            }
        }

        #[test]
        fn tuples_generate_componentwise(t in (0u64..4, 10u8..12, prop::bool::ANY)) {
            prop_assert!(t.0 < 4 && (10..12).contains(&t.1));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_applies(_x in 0u64..100) {
            // Runs exactly 5 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn oneof_visits_every_arm() {
        let strategy = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        let mut rng = case_rng(fnv1a("oneof_visits_every_arm"), 0);
        for _ in 0..200 {
            seen[strategy.generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all arms must be reachable: {seen:?}");
    }

    #[test]
    fn shrink_finds_the_two_culprit_elements() {
        let items: Vec<u64> = (0..40).collect();
        let minimal = shrink_list(&items, |sub| sub.contains(&7) && sub.contains(&23));
        assert_eq!(minimal, vec![7, 23], "order must be preserved too");
    }

    #[test]
    fn shrink_result_is_one_minimal() {
        // Failure: at least three even numbers present.
        let items: Vec<u64> = (0..32).collect();
        let fails = |sub: &[u64]| sub.iter().filter(|x| **x % 2 == 0).count() >= 3;
        let minimal = shrink_list(&items, fails);
        assert!(fails(&minimal));
        for skip in 0..minimal.len() {
            let without: Vec<u64> = minimal
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &x)| x)
                .collect();
            assert!(!fails(&without), "removing index {skip} should pass");
        }
    }

    #[test]
    fn shrink_keeps_non_failing_input_unchanged() {
        let items = vec![1u64, 2, 3];
        assert_eq!(shrink_list(&items, |_| false), items);
        assert_eq!(shrink_list::<u64>(&[], |_| true), Vec::<u64>::new());
    }

    #[test]
    fn shrink_of_order_dependent_failure_preserves_interleaving() {
        // Fails only when an 'a' appears somewhere before a 'b'.
        let items = vec!['b', 'x', 'a', 'y', 'b', 'z'];
        let minimal = shrink_list(&items, |sub| {
            sub.iter()
                .position(|&c| c == 'a')
                .is_some_and(|i| sub[i..].contains(&'b'))
        });
        assert_eq!(minimal, vec!['a', 'b']);
    }

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strategy = prop::collection::vec(0u64..1000, 1..20);
        let a = strategy.generate(&mut case_rng(99, 7));
        let b = strategy.generate(&mut case_rng(99, 7));
        assert_eq!(a, b);
    }
}
