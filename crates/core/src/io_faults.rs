//! Seeded storage fault injection: the decision plan and the global
//! fault ledger.
//!
//! This is the storage leg of the chaos program (memory pressure in
//! `colt_os_mem::faults`, network faults in `serve::chaos`): an
//! [`IoFaultPlan`] is a one-draw-per-decision seeded stream consulted by
//! [`crate::vfs::FaultyVfs`] at every failure-prone storage operation —
//! writes (ENOSPC, short/torn writes), reads (EIO, bit flips), fsyncs
//! (failed and *lying*), and renames. Every decision consumes exactly one
//! base draw whether or not it fires, so a plan replays identically for a
//! given config; fault-kind selection and flip positions use extra draws
//! only when a decision fires, the same discipline as
//! `FaultPlan::delivery_fault`.
//!
//! The module also owns the process-global **ledger** the torture
//! harness audits: every injected error carries a `colt-io-fault[...]`
//! marker in its message, every degradation site that handles a storage
//! error calls [`account`], and every read-time bit flip is recorded
//! against its path until a consumer *detects* the corruption and calls
//! [`confirm_flip`]. The `repro torture` verdict "faults injected ==
//! faults accounted" is an identity over this ledger: it fails if any
//! `Vfs` call site swallows an injected error without accounting, or if
//! any flipped read is accepted without its corruption being noticed.
//! See DESIGN.md §16.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use colt_os_mem::faults::FaultConfig;
use colt_prng::rngs::SmallRng;
use colt_prng::{Rng, SeedableRng};

/// Marker prefix carried in the message of every injected [`io::Error`];
/// [`classify`] recognises it, so accounting never counts a *real*
/// filesystem error as injected.
const MARKER: &str = "colt-io-fault[";

/// The storage fault taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoFaultKind {
    /// A write fails with no bytes accepted (disk full).
    Enospc,
    /// A write lands a prefix of the buffer, then fails (torn write).
    ShortWrite,
    /// A read fails outright.
    ReadEio,
    /// A read succeeds but one bit of the returned buffer is flipped.
    BitFlip,
    /// An fsync fails honestly: the caller knows durability was not
    /// achieved.
    SyncFail,
    /// An fsync *lies*: returns Ok without making anything durable. The
    /// loss only surfaces at the next power cut.
    SyncLie,
    /// A rename fails before taking effect.
    RenameFail,
    /// Any operation attempted after the simulated power-cut point (the
    /// disk is dead until the "reboot", i.e. [`crate::vfs::FaultyVfs::power_cut`]).
    PostCut,
}

impl IoFaultKind {
    /// Stable name used in the error marker and counter reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Enospc => "enospc",
            Self::ShortWrite => "short-write",
            Self::ReadEio => "read-eio",
            Self::BitFlip => "bit-flip",
            Self::SyncFail => "sync-fail",
            Self::SyncLie => "sync-lie",
            Self::RenameFail => "rename-fail",
            Self::PostCut => "post-cut",
        }
    }

    fn error_kind(self) -> io::ErrorKind {
        match self {
            Self::Enospc => io::ErrorKind::StorageFull,
            Self::ShortWrite => io::ErrorKind::WriteZero,
            _ => io::ErrorKind::Other,
        }
    }
}

/// Builds the tagged [`io::Error`] for an injected fault.
pub fn injected_error(kind: IoFaultKind, path: &Path) -> io::Error {
    io::Error::new(
        kind.error_kind(),
        format!("{MARKER}{}] injected on {}", kind.name(), path.display()),
    )
}

/// Recognises an injected error by its marker. Real filesystem errors
/// return `None`.
pub fn classify(e: &io::Error) -> Option<IoFaultKind> {
    let msg = e.to_string();
    let rest = msg.split(MARKER).nth(1)?;
    let name = rest.split(']').next()?;
    [
        IoFaultKind::Enospc,
        IoFaultKind::ShortWrite,
        IoFaultKind::ReadEio,
        IoFaultKind::BitFlip,
        IoFaultKind::SyncFail,
        IoFaultKind::SyncLie,
        IoFaultKind::RenameFail,
        IoFaultKind::PostCut,
    ]
    .into_iter()
    .find(|k| k.name() == name)
}

/// Per-kind fault counters. The plan keeps one (injections); the ledger
/// keeps another (errors accounted at degradation sites).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct IoFaultCounts {
    /// Writes failed with ENOSPC.
    pub enospc: u64,
    /// Torn writes (prefix landed, then error).
    pub short_writes: u64,
    /// Reads failed with EIO.
    pub read_eio: u64,
    /// Reads returned with one bit flipped.
    pub bit_flips: u64,
    /// Fsyncs failed honestly.
    pub sync_fails: u64,
    /// Fsyncs that lied (Ok without durability).
    pub sync_lies: u64,
    /// Renames failed before taking effect.
    pub rename_fails: u64,
    /// Operations refused after the power-cut point.
    pub post_cut: u64,
}

impl IoFaultCounts {
    /// Every fault, of any kind.
    pub fn total(&self) -> u64 {
        self.errors() + self.bit_flips + self.sync_lies
    }

    /// Faults that surface as an [`io::Error`] — the kinds the accounted
    /// side of the ledger can match exactly. Bit flips (detected via the
    /// flip ledger) and lying fsyncs (latent until the power cut) are
    /// audited by other verdicts.
    pub fn errors(&self) -> u64 {
        self.enospc
            + self.short_writes
            + self.read_eio
            + self.sync_fails
            + self.rename_fails
            + self.post_cut
    }

    fn bump(&mut self, kind: IoFaultKind) {
        match kind {
            IoFaultKind::Enospc => self.enospc += 1,
            IoFaultKind::ShortWrite => self.short_writes += 1,
            IoFaultKind::ReadEio => self.read_eio += 1,
            IoFaultKind::BitFlip => self.bit_flips += 1,
            IoFaultKind::SyncFail => self.sync_fails += 1,
            IoFaultKind::SyncLie => self.sync_lies += 1,
            IoFaultKind::RenameFail => self.rename_fails += 1,
            IoFaultKind::PostCut => self.post_cut += 1,
        }
    }

    /// `(name, injected, accounted)` rows for reports.
    pub fn rows(&self, accounted: &IoFaultCounts) -> Vec<(&'static str, u64, u64)> {
        vec![
            ("enospc", self.enospc, accounted.enospc),
            ("short-write", self.short_writes, accounted.short_writes),
            ("read-eio", self.read_eio, accounted.read_eio),
            ("sync-fail", self.sync_fails, accounted.sync_fails),
            ("rename-fail", self.rename_fails, accounted.rename_fails),
            ("post-cut", self.post_cut, accounted.post_cut),
        ]
    }
}

/// A live, seeded stream of storage-fault decisions. Same draw
/// discipline as [`colt_os_mem::faults::FaultPlan`]: one base draw per
/// decision point regardless of outcome, extra draws only on a hit.
#[derive(Clone, Debug)]
pub struct IoFaultPlan {
    config: FaultConfig,
    rng: SmallRng,
    decisions: u64,
    counts: IoFaultCounts,
}

impl IoFaultPlan {
    /// A plan drawing from a stream decorrelated from the memory-pressure
    /// and network-chaos plans built from the same seed.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x10FA_017D_5EED_D15C),
            decisions: 0,
            counts: IoFaultCounts::default(),
        }
    }

    /// The parameters this plan was built from.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Decision points consumed so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Per-kind injection counters so far.
    pub fn counts(&self) -> IoFaultCounts {
        self.counts
    }

    /// Faults injected so far, of any kind.
    pub fn injected(&self) -> u64 {
        self.counts.total()
    }

    fn fire(&mut self) -> bool {
        let armed = self.config.window == 0
            || (self.decisions / self.config.window) % 2 == 0;
        self.decisions += 1;
        let hit = self.rng.gen_bool(self.config.rate.clamp(0.0, 1.0));
        armed && hit
    }

    /// The fate of one write.
    pub fn write_fault(&mut self) -> Option<IoFaultKind> {
        if !self.fire() {
            return None;
        }
        let kind = if self.rng.next_u64() & 1 == 0 {
            IoFaultKind::Enospc
        } else {
            IoFaultKind::ShortWrite
        };
        self.counts.bump(kind);
        Some(kind)
    }

    /// The fate of one read of `len` bytes. Zero-length reads cannot
    /// carry a flipped bit, so a hit there downgrades to EIO.
    pub fn read_fault(&mut self, len: usize) -> Option<IoFaultKind> {
        if !self.fire() {
            return None;
        }
        let kind = if len > 0 && self.rng.next_u64() & 1 == 0 {
            IoFaultKind::BitFlip
        } else {
            IoFaultKind::ReadEio
        };
        self.counts.bump(kind);
        Some(kind)
    }

    /// The fate of one fsync (file or directory).
    pub fn sync_fault(&mut self) -> Option<IoFaultKind> {
        if !self.fire() {
            return None;
        }
        let kind = if self.rng.next_u64() & 1 == 0 {
            IoFaultKind::SyncFail
        } else {
            IoFaultKind::SyncLie
        };
        self.counts.bump(kind);
        Some(kind)
    }

    /// Does this rename fail before taking effect?
    pub fn rename_fault(&mut self) -> bool {
        if !self.fire() {
            return false;
        }
        self.counts.bump(IoFaultKind::RenameFail);
        true
    }

    /// An extra draw for fault shaping (flip position, torn-write
    /// length). Only call after a hit, so the base stream stays aligned.
    pub fn extra(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Records a dead-disk refusal (not a draw: every post-cut operation
    /// fails unconditionally).
    pub fn note_post_cut(&mut self) {
        self.counts.bump(IoFaultKind::PostCut);
    }
}

/// The global fault ledger: what the degradation sites accounted, per
/// layer, plus the per-path registry of injected-but-not-yet-detected
/// read flips.
#[derive(Default)]
struct LedgerState {
    accounted: IoFaultCounts,
    by_layer: BTreeMap<&'static str, u64>,
    pending_flips: BTreeMap<PathBuf, u64>,
    flips_detected: u64,
}

static LEDGER: Mutex<Option<LedgerState>> = Mutex::new(None);

fn with_ledger<T>(f: impl FnOnce(&mut LedgerState) -> T) -> T {
    let mut guard = LEDGER.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(LedgerState::default))
}

/// Immutable view of the ledger for reports and verdicts.
#[derive(Clone, Default, Debug)]
pub struct LedgerSnapshot {
    /// Errors accounted at degradation sites, per kind.
    pub accounted: IoFaultCounts,
    /// Errors accounted per owning layer (`"journal"`, `"artifact"`,
    /// `"snapshot"`, `"serve-cache"`).
    pub by_layer: Vec<(String, u64)>,
    /// Flipped reads whose corruption a consumer noticed.
    pub flips_detected: u64,
    /// Flipped reads still unnoticed — must be zero for the torture
    /// no-corrupt-accepted verdict.
    pub flips_pending: u64,
}

/// Clears the ledger (torture does this per cycle).
pub fn reset_ledger() {
    with_ledger(|l| *l = LedgerState::default());
}

/// Accounts one storage error handled by `layer`. Only injected errors
/// (recognised by their marker) are counted; real errors return `false`
/// untouched. Call this exactly once per error, at the `Vfs` call site
/// that first observes it — propagated errors are already accounted by
/// the module that made the call.
pub fn account(layer: &'static str, e: &io::Error) -> bool {
    let Some(kind) = classify(e) else { return false };
    with_ledger(|l| {
        l.accounted.bump(kind);
        *l.by_layer.entry(layer).or_insert(0) += 1;
    });
    true
}

/// Registers a read that returned flipped bytes for `path` (called by
/// `FaultyVfs` at injection time).
pub fn record_flip(path: &Path) {
    with_ledger(|l| *l.pending_flips.entry(path.to_path_buf()).or_insert(0) += 1);
}

/// A consumer noticed that bytes read from `path` are corrupt (CRC
/// mismatch, invalid framing, read-back inequality). Drains any pending
/// flips recorded against the path into the detected counter; returns
/// whether the corruption was an injected flip. A no-op (false) when the
/// path has no pending flip — genuine torn-tail corruption is not
/// double-counted.
pub fn confirm_flip(path: &Path) -> bool {
    with_ledger(|l| match l.pending_flips.remove(path) {
        Some(n) => {
            l.flips_detected += n;
            true
        }
        None => false,
    })
}

/// Serialises tests that touch the process-global ledger (or install a
/// process-global `Vfs`); `cargo test` runs modules concurrently.
#[cfg(test)]
pub(crate) fn ledger_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Current ledger contents.
pub fn ledger() -> LedgerSnapshot {
    with_ledger(|l| LedgerSnapshot {
        accounted: l.accounted,
        by_layer: l.by_layer.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        flips_detected: l.flips_detected,
        flips_pending: l.pending_flips.values().sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, window: u64, seed: u64) -> FaultConfig {
        FaultConfig { rate, window, seed }
    }

    #[test]
    fn plan_replays_identically() {
        let mut a = IoFaultPlan::new(cfg(0.3, 4, 11));
        let mut b = IoFaultPlan::new(cfg(0.3, 4, 11));
        for i in 0..200 {
            match i % 4 {
                0 => assert_eq!(a.write_fault(), b.write_fault()),
                1 => assert_eq!(a.read_fault(64), b.read_fault(64)),
                2 => assert_eq!(a.sync_fault(), b.sync_fault()),
                _ => assert_eq!(a.rename_fault(), b.rename_fault()),
            }
        }
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.decisions(), 200);
    }

    #[test]
    fn zero_rate_never_fires_full_rate_always_fires() {
        let mut quiet = IoFaultPlan::new(cfg(0.0, 0, 5));
        let mut loud = IoFaultPlan::new(cfg(1.0, 0, 5));
        for _ in 0..50 {
            assert_eq!(quiet.write_fault(), None);
            assert!(loud.write_fault().is_some());
        }
        assert_eq!(quiet.injected(), 0);
        assert_eq!(loud.injected(), 50);
    }

    #[test]
    fn window_alternates_armed_and_quiet() {
        let mut plan = IoFaultPlan::new(cfg(1.0, 3, 9));
        let fired: Vec<bool> =
            (0..12).map(|_| plan.write_fault().is_some()).collect();
        assert_eq!(
            fired,
            vec![
                true, true, true, false, false, false, true, true, true, false,
                false, false
            ]
        );
    }

    #[test]
    fn counts_sum_to_injected() {
        let mut plan = IoFaultPlan::new(cfg(0.5, 0, 77));
        for _ in 0..100 {
            let _ = plan.write_fault();
            let _ = plan.read_fault(32);
            let _ = plan.sync_fault();
            let _ = plan.rename_fault();
        }
        let c = plan.counts();
        assert!(plan.injected() > 0);
        assert_eq!(
            c.total(),
            c.enospc
                + c.short_writes
                + c.read_eio
                + c.bit_flips
                + c.sync_fails
                + c.sync_lies
                + c.rename_fails
                + c.post_cut
        );
    }

    #[test]
    fn empty_reads_never_draw_bit_flips() {
        let mut plan = IoFaultPlan::new(cfg(1.0, 0, 3));
        for _ in 0..40 {
            assert_eq!(plan.read_fault(0), Some(IoFaultKind::ReadEio));
        }
        assert_eq!(plan.counts().bit_flips, 0);
    }

    #[test]
    fn classify_round_trips_every_kind() {
        for kind in [
            IoFaultKind::Enospc,
            IoFaultKind::ShortWrite,
            IoFaultKind::ReadEio,
            IoFaultKind::BitFlip,
            IoFaultKind::SyncFail,
            IoFaultKind::SyncLie,
            IoFaultKind::RenameFail,
            IoFaultKind::PostCut,
        ] {
            let e = injected_error(kind, Path::new("/x/y"));
            assert_eq!(classify(&e), Some(kind), "{e}");
        }
        let real = io::Error::new(io::ErrorKind::NotFound, "no such file");
        assert_eq!(classify(&real), None);
    }

    #[test]
    fn ledger_accounts_only_injected_errors() {
        let _guard = ledger_test_guard();
        reset_ledger();
        let injected = injected_error(IoFaultKind::Enospc, Path::new("/a"));
        let real = io::Error::new(io::ErrorKind::PermissionDenied, "denied");
        assert!(account("artifact", &injected));
        assert!(!account("artifact", &real));
        let snap = ledger();
        assert_eq!(snap.accounted.enospc, 1);
        assert_eq!(snap.accounted.errors(), 1);
        assert_eq!(snap.by_layer, vec![("artifact".to_string(), 1)]);
        reset_ledger();
    }

    #[test]
    fn flip_ledger_drains_on_confirmation() {
        let _guard = ledger_test_guard();
        reset_ledger();
        let p = Path::new("/results/BENCH_x.json");
        record_flip(p);
        assert_eq!(ledger().flips_pending, 1);
        assert!(confirm_flip(p));
        assert!(!confirm_flip(p), "second confirmation is a no-op");
        let snap = ledger();
        assert_eq!(snap.flips_pending, 0);
        assert_eq!(snap.flips_detected, 1);
        reset_ledger();
    }
}
