//! Plain-text table rendering for experiment output (the `repro` binary
//! prints the same rows the paper's tables and figures report).

use std::fmt::Write as _;

/// A simple fixed-width text table with an optional title.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified already).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.headers.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}", h, width = widths[i] + 2);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}", cell, width = widths[i] + 2);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Extracts `(first-column label, value)` pairs from a numeric
    /// column, skipping non-numeric cells — the input for
    /// [`bar_chart`].
    pub fn numeric_column(&self, col: usize) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .filter_map(|row| {
                let v: f64 = row.get(col)?.parse().ok()?;
                Some((row[0].clone(), v))
            })
            .collect()
    }

    /// Renders the table as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart from `(label, value)` pairs.
/// Negative values render to the left of the axis. Used by the `repro`
/// binary's `--bars` mode.
///
/// # Panics
/// Panics if `width` is zero.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let max_abs = items
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = ((value.abs() / max_abs) * width as f64).round() as usize;
        let bar: String = std::iter::repeat_n('#', bar_len).collect();
        let _ = writeln!(
            out,
            "{label:<label_w$}  {}{bar} {value:.1}",
            if *value < 0.0 { "-" } else { "" },
        );
    }
    out
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float as an integer-rounded count.
pub fn f0(x: f64) -> String {
    format!("{x:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["longer-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, two rows");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.add_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn numeric_column_extracts_parsable_cells() {
        let mut t = Table::new("", &["name", "x", "y"]);
        t.add_row(vec!["a".into(), "1.5".into(), "2".into()]);
        t.add_row(vec!["b".into(), "-".into(), "3".into()]);
        assert_eq!(t.numeric_column(1), vec![("a".to_string(), 1.5)]);
        assert_eq!(t.numeric_column(2).len(), 2);
        assert_eq!(t.width(), 3);
    }

    #[test]
    fn bar_chart_scales_and_signs() {
        let items = vec![("up".to_string(), 40.0), ("down".to_string(), -20.0)];
        let chart = bar_chart(&items, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 10, "max value fills the width");
        assert!(lines[1].contains('-') && lines[1].matches('#').count() == 5);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_chart_panics() {
        bar_chart(&[("a".into(), 1.0)], 0);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f1(4.8359), "4.8");
        assert_eq!(f2(4.8359), "4.84");
        assert_eq!(f0(3.6), "4");
    }
}
