//! Performance interpolation model (paper §5.2.1).
//!
//! The paper cannot run its detailed CMP$im microarchitectural model over
//! full OS-visible workloads, so it *interpolates*: TLB miss penalties
//! (page walks) are serialized on the execution's critical path, so the
//! walk cycles saved by CoLT convert directly into runtime saved. We
//! reproduce that arithmetic: a run's cycle count is
//!
//! ```text
//! cycles = instructions × base_cpi
//!        + data_stall_cycles × data_overlap
//!        + l2_tlb_cycles
//!        + walk_cycles                  (fully serialized)
//! ```
//!
//! and a design's improvement is the baseline-to-variant cycle ratio.
//! "Perfect TLB" zeroes both TLB terms — Figure 21's upper bound.

use crate::sim::SimResult;

/// Cycle composition model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PerfModel {
    /// Cycles per instruction of non-memory work on the 4-wide
    /// out-of-order core (§5.2.1 models a 4-way OoO, 128-entry ROB).
    pub base_cpi: f64,
    /// Fraction of data-cache stall cycles the out-of-order window
    /// cannot hide.
    pub data_overlap: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self { base_cpi: 0.4, data_overlap: 0.35 }
    }
}

impl PerfModel {
    /// Total cycles for one simulation result.
    pub fn cycles(&self, r: &SimResult) -> f64 {
        r.instructions as f64 * self.base_cpi
            + r.data_stall_cycles as f64 * self.data_overlap
            + r.l2_tlb_cycles as f64
            + r.walk_cycles as f64
    }

    /// Cycles the same run would take with perfect (100% hit) TLBs: both
    /// TLB-related terms vanish.
    pub fn perfect_tlb_cycles(&self, r: &SimResult) -> f64 {
        r.instructions as f64 * self.base_cpi + r.data_stall_cycles as f64 * self.data_overlap
    }

    /// Percent performance improvement of `variant` over `baseline`
    /// (positive = faster), as plotted in Figure 21.
    pub fn improvement_pct(&self, baseline: &SimResult, variant: &SimResult) -> f64 {
        let b = self.cycles(baseline);
        let v = self.cycles(variant);
        if v <= 0.0 {
            return 0.0;
        }
        (b / v - 1.0) * 100.0
    }

    /// Percent improvement of a perfect TLB over `baseline` (Figure 21's
    /// "Perfect" bars).
    pub fn perfect_improvement_pct(&self, baseline: &SimResult) -> f64 {
        let b = self.cycles(baseline);
        let p = self.perfect_tlb_cycles(baseline);
        if p <= 0.0 {
            return 0.0;
        }
        (b / p - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_memsim::walker::WalkerStats;
    use colt_tlb::stats::HierarchyStats;

    fn result(instructions: u64, walk_cycles: u64, data_stall: u64) -> SimResult {
        SimResult {
            tlb: HierarchyStats::default(),
            walker: WalkerStats::default(),
            instructions,
            walk_cycles,
            data_stall_cycles: data_stall,
            l2_tlb_cycles: 0,
            oracle_mismatches: 0,
        }
    }

    #[test]
    fn l2_tlb_lookup_cycles_are_charged() {
        let m = PerfModel { base_cpi: 1.0, data_overlap: 0.0 };
        let mut r = result(1000, 0, 0);
        r.l2_tlb_cycles = 70;
        assert!((m.cycles(&r) - 1070.0).abs() < 1e-9);
        // Perfect TLBs also drop the L2-TLB lookup cycles.
        assert!((m.perfect_tlb_cycles(&r) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_compose_linearly() {
        let m = PerfModel { base_cpi: 1.0, data_overlap: 0.5 };
        let r = result(1000, 300, 200);
        assert!((m.cycles(&r) - (1000.0 + 100.0 + 300.0)).abs() < 1e-9);
        assert!((m.perfect_tlb_cycles(&r) - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_is_ratio_based() {
        let m = PerfModel { base_cpi: 1.0, data_overlap: 0.0 };
        let base = result(1000, 500, 0); // 1500 cycles
        let colt = result(1000, 200, 0); // 1200 cycles
        assert!((m.improvement_pct(&base, &colt) - 25.0).abs() < 1e-9);
        // Perfect removes all 500 walk cycles: 1500/1000 - 1 = 50%.
        assert!((m.perfect_improvement_pct(&base) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn no_walks_means_no_headroom() {
        let m = PerfModel::default();
        let r = result(1000, 0, 0);
        assert_eq!(m.perfect_improvement_pct(&r), 0.0);
    }

    #[test]
    fn variant_can_regress() {
        let m = PerfModel { base_cpi: 1.0, data_overlap: 0.0 };
        let base = result(1000, 100, 0);
        let worse = result(1000, 300, 0);
        assert!(m.improvement_pct(&base, &worse) < 0.0);
    }
}
