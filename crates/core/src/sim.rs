//! The simulation engine: drives a prepared workload's reference stream
//! through a TLB hierarchy, the page-table walker, and the cache
//! hierarchy, collecting the counters every experiment consumes.
//!
//! This is the counterpart of the paper's "highly-detailed custom memory
//! simulator" (§5.2.1): trace-driven, with 32/128-entry L1/L2 TLBs by
//! default, a 16-entry superpage TLB, 22-entry MMU caches, and a
//! three-level cache hierarchy.

use colt_memsim::hierarchy::CacheHierarchy;
use colt_memsim::walker::{PageWalker, WalkedLeaf, WalkerStats};
use colt_os_mem::addr::PhysAddr;
use colt_tlb::config::TlbConfig;
use colt_tlb::hierarchy::{TlbHierarchy, TlbLevel, WalkFill};
use colt_tlb::stats::HierarchyStats;
use colt_workloads::scenario::PreparedWorkload;

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// TLB hierarchy configuration (mode, sizes, shift, policies).
    pub tlb: TlbConfig,
    /// Memory references to simulate.
    pub accesses: u64,
    /// References used to warm structures before counters reset.
    pub warmup: u64,
    /// Seed for the benchmark's access-pattern generator.
    pub pattern_seed: u64,
    /// Every N accesses, invalidate a recently used translation —
    /// TLB-shootdown churn from unrelated OS activity (migration, COW,
    /// unmap). Exercises the §4.1.5 invalidation policies.
    pub invalidate_period: Option<u64>,
    /// Run walks under nested paging (virtualization) — the environment
    /// the paper's introduction motivates, where walk penalties triple
    /// and coalescing pays the most.
    pub nested_paging: bool,
    /// Every N accesses, flush the whole hierarchy and the walker's MMU
    /// caches — a context switch on a machine without ASID/PCID tagging.
    pub flush_period: Option<u64>,
    /// Differential checking: verify every TLB hit's PFN against the live
    /// page table and count mismatches in
    /// [`SimResult::oracle_mismatches`]. Default off — the perf path pays
    /// exactly one predictable branch per hit.
    pub check: bool,
    /// References translated per batched hot-path call: the reference
    /// stream is generated and looked up in slices of this size (clamped
    /// to warmup/invalidate/flush boundaries), with runs of TLB hits
    /// translated ahead of their data accesses. Results are
    /// byte-identical for every batch size — `1` degenerates to the
    /// per-reference loop.
    pub batch: usize,
}

impl SimConfig {
    /// A config for `tlb` with the default reference budget.
    pub fn new(tlb: TlbConfig) -> Self {
        Self {
            tlb,
            accesses: 400_000,
            warmup: 40_000,
            pattern_seed: 0x5EED,
            invalidate_period: None,
            nested_paging: false,
            flush_period: None,
            check: false,
            batch: 256,
        }
    }

    /// Enables the differential translation oracle on every hit.
    #[must_use]
    pub fn with_check(mut self) -> Self {
        self.check = true;
        self
    }

    /// Flushes all translation state every `period` accesses (context
    /// switches without PCID).
    #[must_use]
    pub fn with_context_switches(mut self, period: u64) -> Self {
        self.flush_period = Some(period);
        self
    }

    /// Switches walks to two-dimensional nested paging.
    #[must_use]
    pub fn virtualized(mut self) -> Self {
        self.nested_paging = true;
        self
    }

    /// Enables shootdown churn every `period` accesses.
    #[must_use]
    pub fn with_invalidations(mut self, period: u64) -> Self {
        self.invalidate_period = Some(period);
        self
    }

    /// Overrides the access budget (warmup scales to 10%).
    #[must_use]
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self.warmup = accesses / 10;
        self
    }

    /// Overrides the hot-path batch size (clamped to at least 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// Everything one simulation run measured.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// TLB hierarchy counters (post-warmup).
    pub tlb: HierarchyStats,
    /// Page-walker counters (post-warmup).
    pub walker: WalkerStats,
    /// Instructions represented by the measured references.
    pub instructions: u64,
    /// Cycles spent in page walks (serialized, on the critical path —
    /// the paper's interpolation assumption, §5.2.1).
    pub walk_cycles: u64,
    /// Data-access stall cycles beyond an L1 hit.
    pub data_stall_cycles: u64,
    /// Cycles spent on L2-TLB lookups after L1 misses.
    pub l2_tlb_cycles: u64,
    /// TLB hits whose PFN disagreed with the live page table — only
    /// counted when [`SimConfig::check`] is on; any nonzero value is a
    /// coalescing-consistency bug.
    pub oracle_mismatches: u64,
}

impl SimResult {
    /// L1 TLB misses per million instructions (Table 1's metric; the
    /// set-associative L1 and superpage TLB count together, §7.1.1).
    pub fn l1_mpmi(&self) -> f64 {
        mpmi(self.tlb.l1_misses, self.instructions)
    }

    /// L2 TLB misses (page walks) per million instructions.
    pub fn l2_mpmi(&self) -> f64 {
        mpmi(self.tlb.l2_misses, self.instructions)
    }
}

fn mpmi(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        return 0.0;
    }
    misses as f64 * 1.0e6 / instructions as f64
}

/// Runs one simulation of `workload` under `config`.
///
/// The workload's kernel state (page tables, memory layout) is treated
/// as read-only: all four TLB modes can be compared against the *same*
/// allocation, exactly as the paper replays one trace through each
/// configuration.
pub fn run(workload: &PreparedWorkload, config: &SimConfig) -> SimResult {
    let mut pattern = workload.pattern(config.pattern_seed);
    run_stream(workload, config, || pattern.next_ref())
}

/// Replays an explicit reference trace (e.g. loaded with
/// [`colt_workloads::trace::read_trace`]) instead of the benchmark's
/// generated pattern; the trace wraps around if shorter than the access
/// budget.
///
/// # Panics
/// Panics if `refs` is empty or touches pages outside the workload's
/// mapped footprint.
pub fn run_trace(
    workload: &PreparedWorkload,
    config: &SimConfig,
    refs: &[colt_workloads::MemRef],
) -> SimResult {
    assert!(!refs.is_empty(), "trace must contain at least one reference");
    let mut i = 0usize;
    run_stream(workload, config, move || {
        let r = refs[i % refs.len()];
        i += 1;
        r
    })
}

fn run_stream(
    workload: &PreparedWorkload,
    config: &SimConfig,
    mut next_ref: impl FnMut() -> colt_workloads::MemRef,
) -> SimResult {
    let mut tlb = TlbHierarchy::new(config.tlb);
    let mut walker = if config.nested_paging {
        PageWalker::paper_default().nested()
    } else {
        PageWalker::paper_default()
    };
    // Background walker for prefetch requests (off the critical path but
    // still polluting the caches); kept separate so the demand walker's
    // accounting stays exactly walks == TLB misses.
    let mut prefetch_walker = if config.nested_paging {
        PageWalker::paper_default().nested()
    } else {
        PageWalker::paper_default()
    };
    let mut caches = CacheHierarchy::core_i7();
    let page_table = workload
        .kernel
        .process(workload.asid)
        .expect("workload process is live")
        .page_table();
    let latency = *caches.latency_model();

    let mut walk_cycles = 0u64;
    let mut data_stall_cycles = 0u64;
    let mut l2_tlb_cycles = 0u64;
    let mut measured = 0u64;
    let mut oracle_mismatches = 0u64;
    let mut warmup_walker_snapshot = walker.stats();
    let mut warmup_tlb_snapshot = tlb.stats();
    // Ring of recent vpns for shootdown churn.
    let mut recent = [colt_os_mem::addr::Vpn::new(0); 64];
    let mut recent_len = 0usize;

    // Batched hot path. The stream is consumed in chunks whose ends are
    // clamped to every event boundary (warmup snapshot, shootdown churn,
    // context-switch flush), so each event still fires after exactly the
    // reference it followed in the per-reference loop. Within a chunk the
    // hierarchy translates the leading run of hits in one call; since
    // lookups never touch the data caches, those translations can run
    // ahead of their data accesses without changing any state the miss
    // path (page walks through the caches) observes. Results are
    // byte-identical for every batch size.
    let batch = config.batch.max(1) as u64;
    let mut chunk: Vec<colt_workloads::MemRef> = Vec::with_capacity(batch as usize);
    let mut vpns: Vec<colt_os_mem::addr::Vpn> = Vec::with_capacity(batch as usize);
    let mut hits: Vec<colt_tlb::hierarchy::TlbHit> = Vec::with_capacity(batch as usize);

    let total = config.warmup + config.accesses;
    let mut i = 0u64;
    while i < total {
        if i == config.warmup {
            // Reset measurement at the warmup boundary by snapshotting.
            warmup_walker_snapshot = walker.stats();
            warmup_tlb_snapshot = tlb.stats();
            walk_cycles = 0;
            data_stall_cycles = 0;
            l2_tlb_cycles = 0;
            measured = 0;
            oracle_mismatches = 0;
        }
        let mut end = (i + batch).min(total);
        if i < config.warmup {
            end = end.min(config.warmup);
        }
        if let Some(p) = config.invalidate_period {
            end = end.min(i - i % p + p);
        }
        if let Some(p) = config.flush_period {
            end = end.min(i - i % p + p);
        }
        let n = (end - i) as usize;
        chunk.clear();
        vpns.clear();
        for _ in 0..n {
            let r = next_ref();
            vpns.push(r.vpn);
            chunk.push(r);
        }

        let mut k = 0usize;
        while k < n {
            hits.clear();
            let hit_run = tlb.lookup_batch(&vpns[k..], &mut hits);
            for (j, hit) in hits.iter().enumerate() {
                let r = chunk[k + j];
                if hit.level == TlbLevel::L2 {
                    l2_tlb_cycles += latency.l2_tlb;
                }
                if config.check
                    && page_table.translate(r.vpn).map(|t| t.pfn) != Some(hit.pfn)
                {
                    oracle_mismatches += 1;
                }
                let phys = PhysAddr::new(hit.pfn.raw() * 4096 + r.line as u64 * 64);
                let lat = caches.access_data(phys);
                data_stall_cycles += lat.saturating_sub(latency.l1);
                let gi = i + (k + j) as u64;
                recent[(gi % 64) as usize] = r.vpn;
                recent_len = recent_len.max((gi + 1).min(64) as usize);
            }
            k += hit_run;
            if k < n {
                // chunk[k]'s lookup was performed inside the batch and
                // missed: walk, fill, and serve prefetches exactly as the
                // per-reference loop's miss arm.
                let r = chunk[k];
                l2_tlb_cycles += latency.l2_tlb;
                let outcome = walker
                    .walk(page_table, r.vpn, &mut caches)
                    .expect("footprint pages are always mapped");
                walk_cycles += outcome.latency;
                let fill = match outcome.leaf {
                    WalkedLeaf::Base { line } => WalkFill::Base { line },
                    WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
                        WalkFill::Super { base_vpn, base_pfn, flags }
                    }
                };
                tlb.fill(r.vpn, &fill);
                // Serve any queued prefetches in the background.
                for target in tlb.take_prefetch_requests() {
                    if let Some(po) = prefetch_walker.walk(page_table, target, &mut caches) {
                        tlb.fill_prefetch(target, po.translation.pfn, po.translation.flags);
                    }
                }
                let phys =
                    PhysAddr::new(outcome.translation.pfn.raw() * 4096 + r.line as u64 * 64);
                let lat = caches.access_data(phys);
                data_stall_cycles += lat.saturating_sub(latency.l1);
                let gi = i + k as u64;
                recent[(gi % 64) as usize] = r.vpn;
                recent_len = recent_len.max((gi + 1).min(64) as usize);
                k += 1;
            }
        }
        measured += n as u64;

        // Events fire after the reference that triggered them — chunk
        // ends are clamped so that reference is always the chunk's last.
        let last = end - 1;
        if let Some(period) = config.invalidate_period {
            if last % period == period - 1 && recent_len > 32 {
                // Shoot down the translation used ~32 accesses ago — and
                // reach the walker's MMU cache too: a real shootdown is
                // an `invlpg`, which drops paging-structure entries for
                // the page, not just the TLB entry.
                let victim = recent[((last + 64 - 32) % 64) as usize];
                tlb.invalidate(victim);
                walker.invalidate(page_table, victim);
            }
        }
        if let Some(period) = config.flush_period {
            if last % period == period - 1 {
                tlb.flush();
                walker.flush();
            }
        }
        i = end;
    }

    let tlb_stats = diff_tlb(tlb.stats(), warmup_tlb_snapshot);
    let walker_stats = diff_walker(walker.stats(), warmup_walker_snapshot);
    SimResult {
        tlb: tlb_stats,
        walker: walker_stats,
        instructions: workload.instructions(measured),
        walk_cycles,
        data_stall_cycles,
        l2_tlb_cycles,
        oracle_mismatches,
    }
}

/// Runs a multiprogrammed simulation: the workloads of `multi` share the
/// TLB hierarchy, caches, and walker, scheduled round-robin with
/// `quantum` accesses per turn and a full translation flush at every
/// switch (no PCID). Returns the combined result.
///
/// # Panics
/// Panics if `multi` has no parts or `quantum` is zero.
pub fn run_multiprogrammed(
    multi: &colt_workloads::scenario::MultiWorkload,
    config: &SimConfig,
    quantum: u64,
) -> SimResult {
    assert!(!multi.parts.is_empty(), "multiprogramming needs workloads");
    assert!(quantum > 0, "quantum must be positive");
    let mut tlb = TlbHierarchy::new(config.tlb);
    let mut walker = if config.nested_paging {
        PageWalker::paper_default().nested()
    } else {
        PageWalker::paper_default()
    };
    let mut caches = CacheHierarchy::core_i7();
    let n = multi.parts.len();
    let mut patterns: Vec<_> = (0..n)
        .map(|i| multi.pattern(i, config.pattern_seed.wrapping_add(i as u64)))
        .collect();
    let page_tables: Vec<_> = multi
        .parts
        .iter()
        .map(|(_, asid, _)| multi.kernel.process(*asid).expect("live").page_table())
        .collect();
    let latency = *caches.latency_model();

    let mut walk_cycles = 0u64;
    let mut data_stall_cycles = 0u64;
    let mut l2_tlb_cycles = 0u64;
    let mut measured = 0u64;
    let mut instructions = 0u64;
    let mut warmup_walker = walker.stats();
    let mut warmup_tlb = tlb.stats();
    let total = config.warmup + config.accesses;
    let mut current = 0usize;
    for i in 0..total {
        if i == config.warmup {
            warmup_walker = walker.stats();
            warmup_tlb = tlb.stats();
            walk_cycles = 0;
            data_stall_cycles = 0;
            l2_tlb_cycles = 0;
            measured = 0;
            instructions = 0;
        }
        if i > 0 && i % quantum == 0 {
            current = (current + 1) % n;
            // Context switch: all translation state flushes.
            tlb.flush();
            walker.flush();
        }
        let r = patterns[current].next_ref();
        let pfn = match tlb.lookup(r.vpn) {
            Some(hit) => {
                if hit.level == TlbLevel::L2 {
                    l2_tlb_cycles += latency.l2_tlb;
                }
                hit.pfn
            }
            None => {
                l2_tlb_cycles += latency.l2_tlb;
                let outcome = walker
                    .walk(page_tables[current], r.vpn, &mut caches)
                    .expect("footprints are always mapped");
                walk_cycles += outcome.latency;
                let fill = match outcome.leaf {
                    WalkedLeaf::Base { line } => WalkFill::Base { line },
                    WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
                        WalkFill::Super { base_vpn, base_pfn, flags }
                    }
                };
                tlb.fill(r.vpn, &fill);
                outcome.translation.pfn
            }
        };
        let phys = PhysAddr::new(pfn.raw() * 4096 + r.line as u64 * 64);
        let lat = caches.access_data(phys);
        data_stall_cycles += lat.saturating_sub(latency.l1);
        instructions += multi.parts[current].0.instructions_per_access;
        measured += 1;
    }
    let _ = measured;
    SimResult {
        tlb: diff_tlb(tlb.stats(), warmup_tlb),
        walker: diff_walker(walker.stats(), warmup_walker),
        instructions,
        walk_cycles,
        data_stall_cycles,
        l2_tlb_cycles,
        oracle_mismatches: 0,
    }
}

fn diff_tlb(after: HierarchyStats, before: HierarchyStats) -> HierarchyStats {
    after.since(&before)
}

fn diff_walker(after: WalkerStats, before: WalkerStats) -> WalkerStats {
    after.since(&before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_workloads::scenario::Scenario;
    use colt_workloads::spec::benchmark;

    fn small_sim(tlb: TlbConfig) -> SimResult {
        let spec = benchmark("Gobmk").unwrap();
        let workload = Scenario::default_linux().prepare(&spec).unwrap();
        run(&workload, &SimConfig::new(tlb).with_accesses(30_000))
    }

    #[test]
    fn accounting_identities_hold() {
        let r = small_sim(TlbConfig::baseline());
        assert_eq!(r.tlb.accesses, 30_000);
        assert_eq!(r.tlb.l1_hits + r.tlb.l1_misses, r.tlb.accesses);
        assert_eq!(r.tlb.l2_hits + r.tlb.l2_misses, r.tlb.l1_misses);
        assert_eq!(r.walker.walks, r.tlb.l2_misses);
        assert_eq!(r.walker.faults, 0, "footprint is fully mapped");
        assert!(r.instructions >= r.tlb.accesses);
    }

    #[test]
    fn walk_cycles_match_walker_latency() {
        let r = small_sim(TlbConfig::baseline());
        assert_eq!(r.walk_cycles, r.walker.total_latency);
        assert!(r.walk_cycles > 0, "some walks must happen");
    }

    #[test]
    fn colt_reduces_misses_on_a_contiguous_workload() {
        // CactusADM has high contiguity under the default scenario; every
        // CoLT design must cut its walks. (Low-contiguity workloads can
        // legitimately see small CoLT-SA regressions from the shifted
        // indexing — Figure 19 shows the same.)
        let spec = benchmark("CactusADM").unwrap();
        let workload = Scenario::default_linux().prepare(&spec).unwrap();
        let run_one = |tlb: TlbConfig| {
            run(&workload, &SimConfig::new(tlb).with_accesses(30_000))
        };
        let base = run_one(TlbConfig::baseline());
        for config in [TlbConfig::colt_sa(), TlbConfig::colt_fa(), TlbConfig::colt_all()] {
            let r = run_one(config);
            assert!(
                r.tlb.l2_misses < base.tlb.l2_misses,
                "{:?} ({}) must beat baseline ({}) walks",
                config.mode,
                r.tlb.l2_misses,
                base.tlb.l2_misses
            );
        }
    }

    #[test]
    fn mpmi_reflects_instruction_scaling() {
        let spec = benchmark("Gobmk").unwrap();
        let r = small_sim(TlbConfig::baseline());
        let per_access_misses = r.tlb.l1_misses as f64 / r.tlb.accesses as f64;
        let expected = per_access_misses * 1e6 / spec.instructions_per_access as f64;
        assert!((r.l1_mpmi() - expected).abs() < 1e-6);
    }

    #[test]
    fn run_trace_wraps_short_traces() {
        let spec = benchmark("FastaProt").unwrap();
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let refs = w.pattern(5).take_refs(100);
        let cfg = SimConfig {
            warmup: 0,
            ..SimConfig::new(TlbConfig::baseline()).with_accesses(1_000)
        };
        let r = run_trace(&w, &cfg, &refs);
        assert_eq!(r.tlb.accesses, 1_000, "trace wraps to fill the budget");
        assert_eq!(r.walker.faults, 0);
    }

    #[test]
    fn multiprogrammed_accounting_identities_hold() {
        let specs = [benchmark("Gobmk").unwrap(), benchmark("FastaProt").unwrap()];
        let multi = Scenario::default_linux().prepare_many(&specs).unwrap();
        let r = run_multiprogrammed(
            &multi,
            &SimConfig::new(TlbConfig::colt_all()).with_accesses(20_000),
            1_000,
        );
        assert_eq!(r.tlb.accesses, 20_000);
        assert_eq!(r.tlb.l1_hits + r.tlb.l1_misses, r.tlb.accesses);
        assert_eq!(r.tlb.l2_hits + r.tlb.l2_misses, r.tlb.l1_misses);
        assert_eq!(r.walker.walks, r.tlb.l2_misses);
        assert_eq!(r.walker.faults, 0);
        // Mixed instruction rates: between the two benchmarks' IPAs.
        let ipa = r.instructions as f64 / r.tlb.accesses as f64;
        assert!((3.0..=9.0).contains(&ipa), "blended ipa {ipa}");
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let spec = benchmark("FastaProt").unwrap();
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let cfg = SimConfig::new(TlbConfig::colt_all()).with_accesses(20_000);
        let a = run(&w, &cfg);
        let b = run(&w, &cfg);
        assert_eq!(a.tlb, b.tlb);
        assert_eq!(a.walk_cycles, b.walk_cycles);
    }

    #[test]
    fn batch_size_never_changes_results() {
        // The batched hot path must be byte-identical to the
        // per-reference loop (batch 1) for every batch size, including
        // sizes that straddle warmup/invalidate/flush boundaries and
        // with the oracle checking every hit.
        let spec = benchmark("Gobmk").unwrap();
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let configs = [
            SimConfig::new(TlbConfig::colt_all()).with_accesses(20_000).with_check(),
            SimConfig::new(TlbConfig::colt_sa())
                .with_accesses(20_000)
                .with_invalidations(37)
                .with_context_switches(4_999),
            SimConfig::new(TlbConfig::baseline()).with_accesses(10_000).with_invalidations(64),
        ];
        for cfg in configs {
            let per_ref = run(&w, &cfg.with_batch(1));
            for batch in [7, 256, 100_000] {
                let batched = run(&w, &cfg.with_batch(batch));
                assert_eq!(batched.tlb, per_ref.tlb, "batch {batch}");
                assert_eq!(batched.walker, per_ref.walker, "batch {batch}");
                assert_eq!(batched.walk_cycles, per_ref.walk_cycles, "batch {batch}");
                assert_eq!(
                    batched.data_stall_cycles, per_ref.data_stall_cycles,
                    "batch {batch}"
                );
                assert_eq!(batched.l2_tlb_cycles, per_ref.l2_tlb_cycles, "batch {batch}");
                assert_eq!(batched.instructions, per_ref.instructions, "batch {batch}");
                assert_eq!(
                    batched.oracle_mismatches, per_ref.oracle_mismatches,
                    "batch {batch}"
                );
            }
        }
    }

    #[test]
    fn shootdown_churn_raises_misses() {
        // The §4.1.5 invalidation path: shooting down a recently used
        // translation every few accesses must force re-walks. Gobmk
        // revisits a small hot set, so each victim is translated again
        // soon after the shootdown.
        let spec = benchmark("Gobmk").unwrap();
        let w = Scenario::default_linux().prepare(&spec).unwrap();
        let quiet = run(&w, &SimConfig::new(TlbConfig::colt_all()).with_accesses(30_000));
        let churny = run(
            &w,
            &SimConfig::new(TlbConfig::colt_all())
                .with_accesses(30_000)
                .with_invalidations(64),
        );
        assert_eq!(quiet.tlb.accesses, churny.tlb.accesses);
        assert!(
            churny.tlb.l2_misses > quiet.tlb.l2_misses,
            "shootdowns every 64 accesses must add L2 misses ({} vs quiet {})",
            churny.tlb.l2_misses,
            quiet.tlb.l2_misses
        );
        assert_eq!(churny.walker.walks, churny.tlb.l2_misses);
    }
}
