//! Result-file plumbing: building and *safely* writing the
//! machine-readable `results/BENCH_*.json` artifacts.
//!
//! Three guarantees the `repro` binary used to lack:
//!
//! 1. **Atomic writes** — [`atomic_write_json`] writes a temp file,
//!    fsyncs it, renames it over the destination, and fsyncs the
//!    directory, so a crash at any instant leaves either the old file
//!    or the new file, never a truncated hybrid.
//! 2. **Verified writes** — after the rename the file is read back and
//!    parsed; an unparseable read-back (disk lying, torn write) is an
//!    error, and every write error is a *nonzero exit* in `repro`, not
//!    a swallowed warning.
//! 3. **Corruption quarantine** — [`quarantine_if_corrupt`] checks an
//!    existing artifact before a run would overwrite it; invalid JSON
//!    is moved aside to `<file>.corrupt-<n>` and reported, never
//!    silently clobbered.
//!
//! The JSON builders (`sweep_json`, `smp_json`, `pressure_json`,
//! `policy_json`) live
//! here rather than in the binary so the resume-equivalence tests can
//! assert byte-identical artifacts without shelling out.

use crate::experiments::policy::PolicyReport;
use crate::experiments::pressure::PressureReport;
use crate::experiments::smp::SmpRow;
use crate::runner::CellMetric;
use colt_os_mem::faults::FaultConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic per-process counter distinguishing concurrent tmp files.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A tmp-file name unique across processes (PID) *and* across threads
/// and repeated calls within one process (counter). A fixed
/// `.tmp-<pid>` suffix would let two server shards — same PID, same
/// target — clobber each other's tmp mid-write.
pub(crate) fn unique_tmp(path: &Path) -> PathBuf {
    PathBuf::from(format!(
        "{}.tmp-{}-{}",
        path.display(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t")
}

// ---------------------------------------------------------------------
// Minimal JSON well-formedness scanner (the offline build has no
// serde). Validates structure only — enough to catch truncation,
// torn writes, and garbage, which is what crash safety needs.
// ---------------------------------------------------------------------

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit()
                || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(|_| ())
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    self.pos += 1; // escaped char (good enough for \uXXXX too)
                }
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

/// Checks that `text` is one well-formed JSON value (plus trailing
/// whitespace). Structure only; no data model is built.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut s = Scanner { bytes: text.as_bytes(), pos: 0 };
    s.value()?;
    s.skip_ws();
    if s.pos != s.bytes.len() {
        return Err(format!("trailing bytes after JSON value at byte {}", s.pos));
    }
    Ok(())
}

/// First free `<path>.corrupt-<n>` sibling.
pub(crate) fn quarantine_path(path: &Path) -> PathBuf {
    let mut n = 1;
    loop {
        let candidate = PathBuf::from(format!("{}.corrupt-{n}", path.display()));
        if !candidate.exists() {
            return candidate;
        }
        n += 1;
    }
}

/// If `path` exists but does not parse as JSON, moves it to
/// `<path>.corrupt-<n>` and returns the quarantine path. A healthy or
/// absent file returns `Ok(None)`.
pub fn quarantine_if_corrupt(path: &Path) -> io::Result<Option<PathBuf>> {
    if !path.exists() {
        return Ok(None);
    }
    let fs = crate::vfs::active();
    let text = match fs.read(path) {
        Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
        Err(e) => {
            let _ = crate::io_faults::account("artifact", &e);
            String::new() // unreadable == corrupt
        }
    };
    if validate_json(&text).is_ok() {
        return Ok(None);
    }
    let _ = crate::io_faults::confirm_flip(path);
    let dest = quarantine_path(path);
    crate::vfs::acct("artifact", fs.rename(path, &dest))?;
    Ok(Some(dest))
}

/// Every `*.corrupt-<n>` quarantine file under `dir`, recursively, in
/// sorted order. These are the artifacts [`quarantine_if_corrupt`] set
/// aside after a crash; `repro` reports them loudly at startup so the
/// evidence is noticed instead of silently accumulating.
pub fn find_quarantined(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".corrupt-"))
            {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// Every leaked `*.tmp-*` scratch file under `dir`, recursively, in
/// sorted order — orphans of a crash between create and rename. The
/// atomic-write protocol removes its tmp on every failure it survives,
/// so anything matching [`unique_tmp`]'s pattern at startup is litter.
pub fn find_tmp_litter(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp-") && !n.contains(".corrupt-"))
            {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// Removes every leaked tmp file under `dir`, returning the paths
/// removed so startup can report what it cleaned.
pub fn sweep_tmp_litter(dir: &Path) -> Vec<PathBuf> {
    find_tmp_litter(dir)
        .into_iter()
        .filter(|p| std::fs::remove_file(p).is_ok())
        .collect()
}

/// How many times [`atomic_write_json`] attempts the write before
/// giving up: disk-full and torn-write faults are retried with a short
/// backoff, and only a persistently failing disk surfaces as the error
/// the caller turns into a nonzero exit.
const WRITE_ATTEMPTS: u32 = 3;

/// Atomically writes `json` to `path` (temp file + fsync + rename +
/// directory fsync), then reads it back and re-validates. Transient
/// failures (ENOSPC, torn writes) are retried with backoff; the temp
/// file is removed after every failed attempt, so a torn `BENCH_*` is
/// never left behind under any interleaving — the target either keeps
/// its previous durable content or carries the complete new value.
/// Returns the display path. A persistent failure — including an
/// unparseable read-back — is an error the caller must surface as a
/// nonzero exit.
pub fn atomic_write_json(path: &Path, json: &str) -> io::Result<String> {
    validate_json(json).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("refusing to write invalid JSON: {e}"))
    })?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut last = None;
    for attempt in 0..WRITE_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
        }
        match atomic_write_attempt(path, dir, json) {
            Ok(()) => return Ok(path.display().to_string()),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// One attempt of the atomic-write protocol. Every `Vfs` error is
/// accounted here, at the site that first observes it (see
/// `io_faults::account`).
fn atomic_write_attempt(path: &Path, dir: &Path, json: &str) -> io::Result<()> {
    use crate::vfs::acct;
    let fs = crate::vfs::active();
    acct("artifact", fs.create_dir_all(dir))?;
    let tmp = unique_tmp(path);
    let written = (|| {
        let mut f = acct("artifact", fs.create(&tmp))?;
        acct("artifact", f.write_all(json.as_bytes()))?;
        acct("artifact", f.flush())?;
        acct("artifact", f.sync_data())?;
        acct("artifact", fs.rename(&tmp, path))
    })();
    if let Err(e) = written {
        // Clean up the torn tmp. A dead (post-cut) disk can refuse even
        // this, which is exactly how startup tmp litter is born; the
        // refusal is still accounted.
        if let Err(re) = fs.remove_file(&tmp) {
            let _ = crate::io_faults::account("artifact", &re);
        }
        return Err(e);
    }
    if let Err(e) = fs.sync_dir(dir) {
        // Deliberately ignored (rename durability is best-effort beyond
        // the file fsync) but still accounted.
        let _ = crate::io_faults::account("artifact", &e);
    }
    // Read-back verification: the bytes on disk must parse. With a
    // single writer they are this call's own bytes; with concurrent
    // writers racing one target the read-back may legitimately be
    // another writer's *complete* rename — still atomic, still valid —
    // so differing bytes are only an error when they fail to parse or
    // when the mismatch turns out to be read-time corruption (a torn
    // write, a lying disk, a flipped bit).
    let back_bytes = acct("artifact", fs.read(path))?;
    let back = String::from_utf8_lossy(&back_bytes);
    if back != json && crate::io_faults::confirm_flip(path) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("read-back of {} differs from the bytes written", path.display()),
        ));
    }
    validate_json(&back).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("read-back of {} is not valid JSON: {e}", path.display()),
        )
    })?;
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_*.json builders (hand-rolled: the offline build has no serde).
// ---------------------------------------------------------------------

/// Sum of every cell's preparation and simulation wall-clock — what one
/// worker thread would have spent *with the same snapshot-cache state*,
/// since results are identical at any width, prep sharing happens at
/// every width, and cache-hit cells record the (near-zero) time the hit
/// actually cost rather than the build it avoided.
pub fn serial_seconds_estimate(metrics: &[CellMetric]) -> f64 {
    metrics.iter().map(|m| m.prep_seconds + m.sim_seconds).sum()
}

/// Aggregate simulation-only throughput: refs per second once
/// preparation is amortized away (i.e. the steady-state rate a warm
/// cache converges to). Zero-ref cells — contiguity probes that prepare
/// a kernel but simulate nothing — are excluded from both numerator and
/// denominator so they cannot drag the figure toward zero.
pub fn prep_amortized_refs_per_sec(metrics: &[CellMetric]) -> f64 {
    let (refs, sim): (u64, f64) = metrics
        .iter()
        .filter(|m| m.refs > 0)
        .fold((0, 0.0), |(r, s), m| (r + m.refs, s + m.sim_seconds));
    refs as f64 / sim.max(1e-9)
}

/// Machine-readable sweep throughput report (`BENCH_sweep.json`). The
/// timing fields are wall-clock measurements: on a resumed run,
/// replayed cells carry their original (journaled, bit-exact) timings
/// while re-run cells time anew, so everything except timing is
/// reproducible byte-for-byte.
///
/// `speedup_vs_1_thread_estimate` compares the sum of per-cell
/// (prep + sim) wall-clock against the sweep's wall time — an honest
/// estimate because cache-hit cells contribute the prep they actually
/// paid, not the build they skipped. The separately labeled
/// `prep_amortized_refs_per_sec` reports sim-only throughput over the
/// cells that simulate anything (refs > 0).
pub fn sweep_json(
    metrics: &[CellMetric],
    jobs: usize,
    wall_seconds: f64,
    cache: &crate::snapshot_cache::CacheStats,
) -> String {
    let total_refs: u64 = metrics.iter().map(|m| m.refs).sum();
    let serial = serial_seconds_estimate(metrics);
    let prep_total: f64 = metrics.iter().map(|m| m.prep_seconds).sum();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"wall_seconds\": {wall_seconds:.6},\n"));
    out.push_str(&format!("  \"total_refs\": {total_refs},\n"));
    out.push_str(&format!(
        "  \"aggregate_refs_per_sec\": {:.1},\n",
        total_refs as f64 / wall_seconds.max(1e-9)
    ));
    out.push_str(&format!(
        "  \"prep_amortized_refs_per_sec\": {:.1},\n",
        prep_amortized_refs_per_sec(metrics)
    ));
    out.push_str(&format!("  \"prep_seconds_total\": {prep_total:.6},\n"));
    out.push_str(&format!("  \"prep_cache_hits\": {},\n", cache.hits()));
    out.push_str(&format!("  \"prep_cache_misses\": {},\n", cache.misses));
    out.push_str(&format!(
        "  \"prep_cache_evictions\": {},\n",
        cache.mem_evictions
    ));
    out.push_str(&format!(
        "  \"snapshot_seconds\": {:.6},\n",
        cache.snapshot_seconds
    ));
    out.push_str(&format!("  \"serial_seconds_estimate\": {serial:.6},\n"));
    out.push_str(&format!(
        "  \"speedup_vs_1_thread_estimate\": {:.3},\n",
        serial / wall_seconds.max(1e-9)
    ));
    out.push_str("  \"cells\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"benchmark\": \"{}\", \"scenario\": \"{}\", \
             \"refs\": {}, \"prep_seconds\": {:.6}, \"sim_seconds\": {:.6}, \
             \"refs_per_sec\": {:.1}}}{}\n",
            json_escape(&m.label),
            json_escape(&m.benchmark),
            json_escape(&m.scenario),
            m.refs,
            m.prep_seconds,
            m.sim_seconds,
            m.refs as f64 / (m.prep_seconds + m.sim_seconds).max(1e-9),
            if i + 1 == metrics.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Machine-readable SMP report (`BENCH_smp.json`): one record per
/// (mix, mode, cores) row of the `smp_*` experiments. Fully
/// deterministic — a resumed run reproduces it byte-for-byte.
pub fn smp_json(rows: &[SmpRow], cores_flag: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cores_flag\": {cores_flag},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"mix\": \"{}\", \"mode\": \"{}\", \
             \"cores\": {}, \"accesses\": {}, \"l1_misses\": {}, \"walks\": {}, \
             \"full_flushes\": {}, \"flushes_avoided\": {}, \"ipis_sent\": {}, \
             \"ipis_received\": {}, \"remote_invalidations\": {}, \
             \"ipi_cycles\": {}}}{}\n",
            json_escape(r.experiment),
            json_escape(&r.mix),
            json_escape(r.mode),
            r.cores,
            r.accesses,
            r.l1_misses,
            r.walks,
            r.full_flushes,
            r.flushes_avoided,
            r.ipis_sent,
            r.ipis_received,
            r.remote_invalidations,
            r.ipi_cycles,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Machine-readable pressure report (`BENCH_pressure.json`): every cell
/// row, the SMP leg, and the failure list (partial results survive
/// failed cells). Fully deterministic — the crash-recovery smoke stage
/// diffs it byte-for-byte against an uninterrupted reference run.
pub fn pressure_json(
    report: &PressureReport,
    cfg: FaultConfig,
    cores_flag: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"fault_rate\": {}, \"fault_window\": {}, \"fault_seed\": {},\n",
        cfg.rate, cfg.window, cfg.seed
    ));
    out.push_str(&format!("  \"cores_flag\": {cores_flag},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"config\": \"{}\", \"rate\": {}, \
             \"accesses\": {}, \"l1_misses\": {}, \"walks\": {}, \"walk_cycles\": {}, \
             \"faults_injected\": {}, \"thp_fallbacks\": {}, \
             \"thp_deferred_retries\": {}, \"compact_deferred\": {}, \
             \"oom_kills\": {}}}{}\n",
            json_escape(&r.benchmark),
            json_escape(&r.config),
            r.rate,
            r.accesses,
            r.l1_misses,
            r.walks,
            r.walk_cycles,
            r.kernel.faults_injected,
            r.kernel.thp_fallbacks,
            r.kernel.thp_deferred_retries,
            r.kernel.compact_deferred,
            r.kernel.oom_kills,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"smp_rows\": [\n");
    for (i, r) in report.smp_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rate\": {}, \"cores\": {}, \"accesses\": {}, \"walks\": {}, \
             \"ipis_sent\": {}, \"faults_injected\": {}, \"thp_fallbacks\": {}, \
             \"oom_kills\": {}}}{}\n",
            r.rate,
            r.cores,
            r.accesses,
            r.walks,
            r.ipis_sent,
            r.kernel.faults_injected,
            r.kernel.thp_fallbacks,
            r.kernel.oom_kills,
            if i + 1 == report.smp_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    push_failures(&mut out, &report.failures);
    out
}

/// Appends the shared `"failures"` tail (inline `[]` on a clean run —
/// verify.sh greps for exactly that) and closes the object.
fn push_failures(out: &mut String, failures: &[crate::experiments::pressure::FailedCell]) {
    if failures.is_empty() {
        out.push_str("  \"failures\": []\n}\n");
        return;
    }
    out.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"cause\": \"{}\", \"attempts\": {}}}{}\n",
            json_escape(&f.label),
            json_escape(&f.payload),
            f.attempts,
            if i + 1 == failures.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
}

/// Machine-readable policy report (`BENCH_policy.json`): per-policy
/// summaries first (the verify.sh gate greps these), then every cell
/// row, then the failure list. Fully deterministic.
pub fn policy_json(report: &PolicyReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"summaries\": [\n");
    for (i, s) in report.summaries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"avg_contiguity\": {}, \"colt_all_elim\": {}, \
             \"decisions\": {}, \"huge_grants\": {}, \"huge_denies\": {}, \
             \"collapses\": {}, \"compactions\": {}}}{}\n",
            json_escape(&s.policy),
            s.avg_contiguity,
            s.colt_all_elim,
            s.decisions,
            s.huge_grants,
            s.huge_denies,
            s.collapses,
            s.compactions,
            if i + 1 == report.summaries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"benchmark\": \"{}\", \"config\": \"{}\", \
             \"accesses\": {}, \"l1_misses\": {}, \"walks\": {}, \"walk_cycles\": {}, \
             \"avg_contiguity\": {}, \"policy_decisions\": {}, \
             \"policy_huge_grants\": {}, \"policy_huge_denies\": {}, \
             \"policy_collapses_triggered\": {}, \"policy_compactions_requested\": {}, \
             \"thp_allocs\": {}, \"thp_fallbacks\": {}}}{}\n",
            json_escape(&r.policy),
            json_escape(&r.benchmark),
            json_escape(&r.config),
            r.accesses,
            r.l1_misses,
            r.walks,
            r.walk_cycles,
            r.avg_contiguity,
            r.kernel.policy_decisions,
            r.kernel.policy_huge_grants,
            r.kernel.policy_huge_denies,
            r.kernel.policy_collapses_triggered,
            r.kernel.policy_compactions_requested,
            r.kernel.thp_allocs,
            r.kernel.thp_fallbacks,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    push_failures(&mut out, &report.failures);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_json_reports_cache_stats_and_amortizes_prep_over_sim_cells() {
        let metrics = vec![
            CellMetric {
                label: "fig18/colt_all".into(),
                benchmark: "Gobmk".into(),
                scenario: "default".into(),
                refs: 1000,
                prep_seconds: 0.5,
                sim_seconds: 0.25,
            },
            // A contiguity probe: prepares a kernel, simulates nothing.
            // Its sim time must not dilute the amortized throughput.
            CellMetric {
                label: "contiguity/default".into(),
                benchmark: "Gobmk".into(),
                scenario: "default".into(),
                refs: 0,
                prep_seconds: 0.1,
                sim_seconds: 42.0,
            },
        ];
        let cache = crate::snapshot_cache::CacheStats {
            mem_hits: 3,
            disk_hits: 1,
            misses: 2,
            mem_evictions: 1,
            snapshot_seconds: 0.125,
        };
        let json = sweep_json(&metrics, 8, 0.5, &cache);
        validate_json(&json).expect("sweep report is valid JSON");
        assert!(json.contains("\"prep_cache_hits\": 4"), "{json}");
        assert!(json.contains("\"prep_cache_misses\": 2"), "{json}");
        assert!(json.contains("\"prep_cache_evictions\": 1"), "{json}");
        assert!(json.contains("\"snapshot_seconds\": 0.125000"), "{json}");
        assert!(json.contains("\"prep_seconds_total\": 0.600000"), "{json}");
        // 1000 refs / 0.25 sim seconds; the zero-ref cell is excluded.
        assert!(json.contains("\"prep_amortized_refs_per_sec\": 4000.0"), "{json}");
        // (0.5 + 0.25 + 0.1 + 42.0) / 0.5 wall.
        assert!(json.contains("\"speedup_vs_1_thread_estimate\": 85.700"), "{json}");
    }

    #[test]
    fn validator_accepts_real_shapes_and_rejects_corruption() {
        assert!(validate_json("{}").is_ok());
        assert!(validate_json("{\"a\": [1, -2.5e3, \"x\\\"y\"], \"b\": null}\n").is_ok());
        assert!(validate_json("").is_err());
        assert!(validate_json("{\"a\": 1").is_err(), "truncated object");
        assert!(validate_json("{\"a\": 1}garbage").is_err(), "trailing bytes");
        assert!(validate_json("{\"a\": 01x}").is_err(), "bad number");
        assert!(validate_json("{\"a\": \"unterminated}").is_err());
    }

    #[test]
    fn find_quarantined_scans_recursively_and_sorts() {
        let dir = std::env::temp_dir().join(format!(
            "colt-artifact-quarantine-scan-{}",
            std::process::id()
        ));
        let nested = dir.join("journal").join("deep");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(dir.join("b.json.corrupt-2"), "x").unwrap();
        std::fs::write(nested.join("a.jsonl.corrupt-1"), "x").unwrap();
        std::fs::write(dir.join("healthy.json"), "{}").unwrap();
        let found = find_quarantined(&dir);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].ends_with("b.json.corrupt-2"), "sorted: {found:?}");
        assert!(found[1].ends_with("journal/deep/a.jsonl.corrupt-1"), "{found:?}");
        assert!(find_quarantined(&dir.join("missing")).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_roundtrips_and_quarantine_moves_corruption_aside() {
        let dir = std::env::temp_dir()
            .join(format!("colt-artifact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");

        atomic_write_json(&path, "{\"ok\": true}\n").unwrap();
        assert_eq!(quarantine_if_corrupt(&path).unwrap(), None);

        std::fs::write(&path, "{\"truncated\": ").unwrap();
        let q = quarantine_if_corrupt(&path).unwrap().expect("must quarantine");
        assert!(q.display().to_string().contains("corrupt-1"));
        assert!(!path.exists(), "corrupt file moved aside, not clobbered");
        assert!(q.exists());

        // No temp litter after a successful write.
        atomic_write_json(&path, "{}\n").unwrap();
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(litter.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_clobber_each_other_or_litter_tmp_files() {
        let dir = std::env::temp_dir()
            .join(format!("colt-artifact-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_race.json");

        // Eight writers × twenty rounds hammering one target, each with
        // a distinct payload. With the old fixed `.tmp-<pid>` name, two
        // same-process writers shared a tmp file and one renamed the
        // other's half-written bytes into place.
        let payloads: Vec<String> =
            (0..8).map(|i| format!("{{\"writer\": {i}, \"padding\": \"{}\"}}\n", "x".repeat(512 * i))).collect();
        std::thread::scope(|s| {
            for payload in &payloads {
                s.spawn(|| {
                    for _ in 0..20 {
                        atomic_write_json(&path, payload).unwrap();
                    }
                });
            }
        });

        // The survivor is exactly one writer's complete payload.
        let final_text = std::fs::read_to_string(&path).unwrap();
        assert!(
            payloads.iter().any(|p| *p == final_text),
            "final file must be one complete payload, got: {final_text:?}"
        );
        validate_json(&final_text).unwrap();
        // And every tmp file was renamed or cleaned up.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(litter.is_empty(), "tmp litter: {litter:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unique_tmp_names_differ_across_calls() {
        let p = Path::new("results/BENCH_x.json");
        let a = unique_tmp(p);
        let b = unique_tmp(p);
        assert_ne!(a, b, "same path, same process — the counter must differ");
        assert!(a.display().to_string().starts_with("results/BENCH_x.json.tmp-"));
    }

    #[test]
    fn invalid_payload_is_refused_before_touching_the_file() {
        let dir = std::env::temp_dir()
            .join(format!("colt-artifact-refuse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_refuse.json");
        atomic_write_json(&path, "{\"good\": 1}").unwrap();
        assert!(atomic_write_json(&path, "{\"bad\": ").is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"good\": 1}", "failed write must not damage the old file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: a simulated power cut mid-write strands a `*.tmp-*`
    /// staging file (the post-cut disk refuses the cleanup `remove`),
    /// and the startup sweep removes it — no permanent litter.
    #[test]
    fn a_cut_mid_write_leaves_no_permanent_litter() {
        use colt_os_mem::faults::FaultConfig;
        let _guard = crate::io_faults::ledger_test_guard();
        crate::io_faults::reset_ledger();
        let dir = std::env::temp_dir()
            .join(format!("colt-artifact-cutlitter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // No random faults — the only event is the disk dying right
        // after the first fsync, i.e. between fsync and rename.
        let plan = FaultConfig { rate: 0.0, window: 0, seed: 1 };
        let faulty = crate::vfs::FaultyVfs::new(plan).cut_after_syncs(1);
        crate::vfs::install(std::sync::Arc::new(faulty.clone()));
        let result = atomic_write_json(&dir.join("BENCH_cut.json"), "{\"cell\": 1}");
        let _ = faulty.power_cut();
        crate::vfs::reset();

        assert!(result.is_err(), "the write died at the cut");
        assert!(
            !dir.join("BENCH_cut.json").exists(),
            "no torn destination file may exist"
        );
        let litter = find_tmp_litter(&dir);
        assert!(!litter.is_empty(), "the cut strands the staging tmp file");
        let swept = sweep_tmp_litter(&dir);
        assert_eq!(swept, litter, "the sweep removes exactly the litter");
        assert!(find_tmp_litter(&dir).is_empty(), "no permanent litter remains");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
