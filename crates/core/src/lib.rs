//! # colt-core — the CoLT reproduction's simulation engine
//!
//! Ties the substrates together into the paper's experiments:
//! [`colt_os_mem`] (buddy allocator, compaction, THS, page tables)
//! generates the contiguity; [`colt_tlb`] implements the Baseline /
//! CoLT-SA / CoLT-FA / CoLT-All hierarchies; [`colt_memsim`] walks page
//! tables through the cache hierarchy; [`colt_workloads`] models the 14
//! Table-1 benchmarks. This crate adds:
//!
//! * [`sim`] — the trace-driven simulation loop (§5.2.1),
//! * [`perf`] — the paper's performance-interpolation model,
//! * [`experiments`] — one driver per table/figure (Table 1, Figures
//!   7–21, plus the §7.1.3 ablation and extras),
//! * [`runner`] — the parallel sweep runner the drivers fan out on
//!   (deterministic results, shared workload preparation, retry +
//!   quarantine supervision),
//! * [`journal`] — the durable, checksummed cell journal behind
//!   `repro --resume` crash recovery,
//! * [`snapshot_cache`] — the process-global preparation cache whose
//!   durable snapshots let a warm `repro` invocation skip workload
//!   preparation entirely,
//! * [`artifact`] — atomic, verified result-file writes and the
//!   `BENCH_*.json` builders,
//! * [`serve`] / [`serve_bench`] — the resident `repro serve`
//!   translation/sweep server (sharded prepared-instance pools, batched
//!   dispatch, LRU result cache, backpressure and quotas) and its load
//!   generator, [`lru`] the bounded map they and the snapshot cache
//!   share,
//! * [`report`] / [`metrics`] — output formatting and comparisons.
//!
//! The `repro` binary regenerates any experiment:
//! `cargo run --release -p colt-core --bin repro -- fig18`.
//!
//! ## Quick example
//!
//! ```
//! use colt_core::sim::{self, SimConfig};
//! use colt_tlb::config::TlbConfig;
//! use colt_workloads::{scenario::Scenario, spec::benchmark};
//!
//! # fn main() -> colt_os_mem::error::MemResult<()> {
//! let spec = benchmark("Gobmk").expect("a Table-1 benchmark");
//! let workload = Scenario::default_linux().prepare(&spec)?;
//! let baseline = sim::run(&workload, &SimConfig::new(TlbConfig::baseline()).with_accesses(20_000));
//! let colt = sim::run(&workload, &SimConfig::new(TlbConfig::colt_all()).with_accesses(20_000));
//! assert!(colt.tlb.l2_misses <= baseline.tlb.l2_misses);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod chaos_serve;
pub mod check;
pub mod experiments;
pub mod io_faults;
pub mod journal;
pub mod lru;
pub mod metrics;
pub mod perf;
pub mod report;
pub mod runner;
pub mod serve;
pub mod serve_bench;
pub mod sim;
pub mod snapshot_cache;
pub mod vfs;

pub use experiments::{ExperimentOptions, ExperimentOutput};
pub use perf::PerfModel;
pub use report::Table;
pub use sim::{SimConfig, SimResult};
