//! Small statistics helpers shared by the experiment drivers and the
//! `repro` binary.

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean of positive values (0 for empty input).
///
/// # Panics
/// Panics if any value is non-positive.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A measured number next to the paper's published value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PaperComparison {
    /// What this reproduction measured.
    pub measured: f64,
    /// What the paper reports.
    pub paper: f64,
}

impl PaperComparison {
    /// Creates a comparison.
    pub fn new(measured: f64, paper: f64) -> Self {
        Self { measured, paper }
    }

    /// measured / paper, or `None` when the paper value is zero.
    pub fn ratio(&self) -> Option<f64> {
        (self.paper != 0.0).then(|| self.measured / self.paper)
    }

    /// True when measured and paper agree in sign and within a
    /// multiplicative `factor` (shape reproduction, not absolute-number
    /// matching).
    pub fn same_shape(&self, factor: f64) -> bool {
        match self.ratio() {
            Some(r) => r > 0.0 && r <= factor && r >= 1.0 / factor,
            None => self.measured == 0.0,
        }
    }
}

/// Spearman rank correlation between two equally long slices — used to
/// check that measured per-benchmark orderings match the paper's.
///
/// # Panics
/// Panics if lengths differ or fewer than two points are given.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired data");
    assert!(a.len() >= 2, "rank correlation needs at least two points");
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("no NaN"));
        let mut ranks = vec![0.0; xs.len()];
        for (r, &i) in idx.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let ra = rank(a);
    let rb = rank(b);
    let n = a.len() as f64;
    let d2: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_nonpositive() {
        geo_mean(&[1.0, 0.0]);
    }

    #[test]
    fn paper_comparison_shape() {
        let c = PaperComparison::new(30.0, 40.0);
        assert!((c.ratio().unwrap() - 0.75).abs() < 1e-12);
        assert!(c.same_shape(2.0));
        assert!(!c.same_shape(1.1));
        let z = PaperComparison::new(0.0, 0.0);
        assert!(z.ratio().is_none());
        assert!(z.same_shape(2.0));
    }

    #[test]
    fn rank_correlation_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [9.0, 7.0, 5.0, 3.0];
        assert!((rank_correlation(&a, &up) - 1.0).abs() < 1e-12);
        assert!((rank_correlation(&a, &down) + 1.0).abs() < 1e-12);
    }
}
