//! `repro chaos-serve` — the deterministic network-fault soak harness.
//!
//! Boots an in-process [`crate::serve`] server with a seeded
//! [`crate::serve::chaos::ChaosPlan`] armed, drives a mixed
//! translate/sweep workload through `serve_bench`'s retrying clients,
//! and then audits both sides of the wire against each other:
//!
//! * **zero panics** — the server caught nothing and quarantined no
//!   cells; chaos broke connections, never the service.
//! * **faults accounted** — every *disruptive* injected fault (torn
//!   frame, reset, accept hiccup) shows up as exactly one client
//!   transport error, and every one of those was retried to success.
//!   Stalls are latency, not errors, and are audited as injected-only.
//! * **no leaked slots** — after graceful drain the dispatch queue is
//!   empty and no sweep leader is still in flight.
//! * **byte identity** — the sweep served under chaos (through retries
//!   and idempotency keys) is byte-identical to a direct in-process
//!   [`serve::sweep_csv`] run.
//! * **warm-restart identity** — a second server booted from the
//!   drained cache directory serves the same sweep from its warmed
//!   cache, byte-identical again.
//!
//! The verdicts land in `results/BENCH_chaos.json`; any false verdict
//! is a nonzero exit. The whole soak is seeded (`--chaos
//! rate=R,window=W,seed=S` plus the client jitter seed), so a failure
//! replays. See DESIGN.md §15 and EXPERIMENTS.md.

use crate::artifact;
use crate::serve::{self, chaos::ChaosConfig, json, ServeConfig};
use crate::serve_bench::{self, BenchConfig, RobustClient, Tally};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Soak parameters (one flag each; see `repro chaos-serve --help`).
#[derive(Clone, Debug)]
pub struct ChaosServeConfig {
    /// The fault plan the server draws from.
    pub chaos: ChaosConfig,
    /// Client connections, one thread each.
    pub conns: usize,
    /// Translate requests per connection.
    pub requests: u64,
    /// Access budget per translate request.
    pub accesses: u64,
    /// Experiment for the sweep requests.
    pub sweep: String,
    /// Issue a sweep every N translates per connection.
    pub sweep_every: u64,
    /// Access budget for sweep requests.
    pub sweep_accesses: u64,
    /// Benchmark rotation.
    pub bench: String,
    /// Server worker threads.
    pub jobs: usize,
    /// Artifact path.
    pub out: PathBuf,
    /// Suppress progress lines.
    pub quiet: bool,
}

impl Default for ChaosServeConfig {
    fn default() -> Self {
        Self {
            chaos: ChaosConfig { rate: 0.15, ..ChaosConfig::default() },
            conns: 4,
            requests: 24,
            accesses: 2_000,
            sweep: "fig18".to_string(),
            sweep_every: 8,
            sweep_accesses: 5_000,
            bench: "Gobmk".to_string(),
            jobs: crate::experiments::default_jobs(),
            out: PathBuf::from("results/BENCH_chaos.json"),
            quiet: false,
        }
    }
}

/// One soak verdict: a name, a pass/fail, and the evidence line that
/// explains the call either way.
struct Verdict {
    name: &'static str,
    pass: bool,
    evidence: String,
}

/// Numbers parsed back out of the `serve_bench` payload (the client's
/// side of the ledger).
#[derive(Default)]
struct ClientLedger {
    ok: u64,
    transport_errors: u64,
    retries: u64,
    recovered: u64,
    breaker_opens: u64,
    idem_replays: u64,
    rejections: u64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    requests_per_sec: f64,
}

fn ledger_from_payload(payload: &str) -> Result<ClientLedger, String> {
    let doc = json::parse(payload)
        .map_err(|e| format!("serve-bench payload did not parse: {e}"))?;
    let num = |key: &str| doc.get(key).and_then(json::Json::as_u64).unwrap_or(0);
    let float = |key: &str| {
        doc.get(key)
            .and_then(json::Json::as_f64)
            .unwrap_or(0.0)
    };
    Ok(ClientLedger {
        ok: num("ok"),
        transport_errors: num("transport_errors"),
        retries: num("retries"),
        recovered: num("recovered"),
        breaker_opens: num("breaker_opens"),
        idem_replays: num("idem_replays"),
        rejections: num("rejected_quota")
            + num("rejected_busy")
            + num("rejected_shed")
            + num("rejected_too_large")
            + num("rejected_deadline")
            + num("rejected_malformed"),
        p50_latency_ms: float("p50_latency_ms"),
        p99_latency_ms: float("p99_latency_ms"),
        requests_per_sec: float("requests_per_sec"),
    })
}

/// Asks a freshly restarted server (warmed from `cache_dir`, chaos
/// unarmed) for the soak's sweep and checks the answer came from the
/// warmed cache, byte-identical to `direct`. Returns the evidence line.
fn warm_restart_check(
    cfg: &ChaosServeConfig,
    cache_dir: &std::path::Path,
    direct: &str,
) -> Result<String, String> {
    let server = serve::start(ServeConfig {
        port: 0,
        jobs: cfg.jobs,
        cache_dir: Some(cache_dir.to_path_buf()),
        quiet: true,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("warm-restart server failed to start: {e}"))?;
    let port = server.port;
    let tally = Tally::default();
    let mut client = RobustClient::new(
        "127.0.0.1",
        port,
        serve_bench::RetryPolicy::default(),
        cfg.chaos.seed ^ 0x3A57_FA57,
        &tally,
    );
    let line = format!(
        "{{\"op\": \"sweep\", \"experiment\": \"{}\", \"accesses\": {}, \
         \"bench\": \"{}\"}}",
        artifact::json_escape(&cfg.sweep),
        cfg.sweep_accesses,
        artifact::json_escape(&cfg.bench)
    );
    let response = client.request(&line)?;
    if client.request("{\"op\": \"shutdown\"}").is_err() {
        // No chaos on this server, so only an infra failure lands
        // here; the direct trigger keeps wait() from hanging on it.
        server.trigger_shutdown();
    }
    let summary = server.wait();
    if response.get("ok").and_then(json::Json::as_bool) != Some(true) {
        return Err(format!(
            "restarted server rejected the sweep: {}",
            response
                .get("error")
                .and_then(json::Json::as_str)
                .unwrap_or("unknown error")
        ));
    }
    if response.get("cached").and_then(json::Json::as_bool) != Some(true) {
        return Err("restarted server recomputed instead of serving the \
                    persisted cache"
            .to_string());
    }
    let bytes = response
        .get("bytes")
        .and_then(json::Json::as_str)
        .ok_or("restarted sweep response carried no bytes")?;
    if bytes != direct {
        return Err(format!(
            "restarted sweep differs from the direct run ({} vs {} bytes)",
            bytes.len(),
            direct.len()
        ));
    }
    if !summary.drained_clean {
        return Err("restarted server's drain timed out".to_string());
    }
    Ok(format!(
        "restart warmed the cache and served {} byte(s) from it, identical \
         to the direct run",
        bytes.len()
    ))
}

/// The `BENCH_chaos.json` payload.
fn chaos_json(
    cfg: &ChaosServeConfig,
    summary: &serve::ServeSummary,
    ledger: &ClientLedger,
    extra_transport_errors: u64,
    wall_seconds: f64,
    verdicts: &[Verdict],
) -> String {
    let mut out = String::from("{\n  \"schema\": \"colt-bench-chaos/v1\",\n");
    out.push_str(&format!(
        "  \"chaos_rate\": {},\n  \"chaos_window\": {},\n  \"chaos_seed\": {},\n",
        cfg.chaos.rate, cfg.chaos.window, cfg.chaos.seed
    ));
    out.push_str(&format!(
        "  \"conns\": {},\n  \"requests_per_conn\": {},\n  \
         \"wall_seconds\": {wall_seconds:.6},\n",
        cfg.conns, cfg.requests
    ));
    out.push_str(&format!(
        "  \"faults_injected\": {},\n  \"torn_frames\": {},\n  \
         \"resets\": {},\n  \"stalls\": {},\n  \"accept_hiccups\": {},\n",
        summary.chaos.total(),
        summary.chaos.torn_frames,
        summary.chaos.resets,
        summary.chaos.stalls,
        summary.chaos.accept_hiccups
    ));
    out.push_str(&format!(
        "  \"transport_errors\": {},\n  \"retries\": {},\n  \
         \"recovered\": {},\n  \"breaker_opens\": {},\n  \
         \"idem_replays\": {},\n  \"ok_requests\": {},\n  \
         \"rejections\": {},\n",
        ledger.transport_errors + extra_transport_errors,
        ledger.retries,
        ledger.recovered,
        ledger.breaker_opens,
        ledger.idem_replays,
        ledger.ok,
        ledger.rejections
    ));
    out.push_str(&format!(
        "  \"rejected_shed\": {},\n  \"rejected_deadline\": {},\n  \
         \"server_idem_hits\": {},\n  \"panics\": {},\n  \
         \"failed_cells\": {},\n  \"persisted_sweeps\": {},\n",
        summary.rejected_shed,
        summary.rejected_deadline,
        summary.idem_hits,
        summary.panics,
        summary.failed_cells,
        summary.persisted
    ));
    out.push_str(&format!(
        "  \"p50_latency_ms\": {:.3},\n  \"p99_latency_ms\": {:.3},\n  \
         \"requests_per_sec\": {:.3},\n",
        ledger.p50_latency_ms, ledger.p99_latency_ms, ledger.requests_per_sec
    ));
    let mut all_ok = true;
    for v in verdicts {
        all_ok &= v.pass;
        out.push_str(&format!(
            "  \"{}\": {},\n  \"{}_evidence\": \"{}\",\n",
            v.name,
            v.pass,
            v.name,
            artifact::json_escape(&v.evidence)
        ));
    }
    out.push_str(&format!("  \"all_ok\": {all_ok}\n}}"));
    out
}

/// Runs the soak end to end and writes the artifact. Returns the
/// payload plus whether every verdict passed.
///
/// # Errors
/// Infrastructure failures (server would not start, a client ran out of
/// retries, the artifact would not write) — distinct from a *failed
/// verdict*, which still produces the artifact and `Ok((_, false))`.
pub fn run(cfg: &ChaosServeConfig) -> Result<(String, bool), String> {
    let scratch = std::env::temp_dir().join(format!(
        "colt-chaos-serve-{}",
        std::process::id()
    ));
    let cache_dir = scratch.join("cache");
    // A previous crashed soak may have left artifacts; start clean so
    // the warm-restart leg proves *this* run's drain persisted.
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&cache_dir)
        .map_err(|e| format!("create {}: {e}", cache_dir.display()))?;

    let wall_start = Instant::now();
    let server = serve::start(ServeConfig {
        port: 0,
        jobs: cfg.jobs,
        cache_dir: Some(cache_dir.clone()),
        chaos: Some(cfg.chaos),
        quiet: true,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("chaos server failed to start: {e}"))?;
    let port = server.port;
    if !cfg.quiet {
        println!(
            "chaos-serve: server up on 127.0.0.1:{port} — chaos rate {}, \
             window {}, seed {}; {} conn(s) x {} request(s), sweep '{}' \
             every {}",
            cfg.chaos.rate,
            cfg.chaos.window,
            cfg.chaos.seed,
            cfg.conns,
            cfg.requests,
            cfg.sweep,
            cfg.sweep_every
        );
    }

    let bench_cfg = BenchConfig {
        port,
        conns: cfg.conns,
        requests: cfg.requests,
        accesses: cfg.accesses,
        sweep: cfg.sweep.clone(),
        sweep_every: cfg.sweep_every,
        sweep_accesses: cfg.sweep_accesses,
        bench: cfg.bench.clone(),
        verify_sweep: true,
        shutdown: false,
        out: scratch.join("bench.json"),
        seed: cfg.chaos.seed,
        quiet: true,
        ..BenchConfig::default()
    };
    // An exhausted retry budget surfaces here; shut the server down
    // before propagating so nothing is left listening.
    let bench_result = serve_bench::run(&bench_cfg);
    let byte_identity = bench_result.is_ok();
    let bench_note = match &bench_result {
        Ok(_) => "retried+idempotent sweep matched cache and direct run \
                  byte-for-byte"
            .to_string(),
        Err(e) => e.clone(),
    };

    // Graceful drain: the shutdown ack is chaos-exempt, but the
    // *connection* can still hit an accept hiccup, so ride the same
    // retrying client and fold its transport errors into the ledger.
    let shutdown_tally = Tally::default();
    let mut shutdown_client = RobustClient::new(
        "127.0.0.1",
        port,
        serve_bench::RetryPolicy::default(),
        cfg.chaos.seed ^ 0xD0_5EED,
        &shutdown_tally,
    );
    let shutdown_ack = shutdown_client.request("{\"op\": \"shutdown\"}");
    if shutdown_ack.is_err() {
        // The plan ate every polite attempt (possible at extreme
        // rates: an accept hiccup drops the connection before the
        // chaos-exempt ack can be written). Pull the plug directly so
        // the drain still runs; the failed attempts stay accounted.
        server.trigger_shutdown();
    }
    let summary = server.wait();
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let extra_transport_errors =
        shutdown_tally.transport_errors.load(Ordering::Relaxed);

    let payload_text = bench_result.unwrap_or_default();
    let ledger = if byte_identity {
        ledger_from_payload(&payload_text)?
    } else {
        ClientLedger::default()
    };
    if !cfg.quiet {
        println!(
            "chaos-serve: drain {} — {} fault(s) injected ({} torn, {} \
             reset, {} stalled, {} accept), {} transport error(s) retried",
            if summary.drained_clean { "clean" } else { "TIMED OUT" },
            summary.chaos.total(),
            summary.chaos.torn_frames,
            summary.chaos.resets,
            summary.chaos.stalls,
            summary.chaos.accept_hiccups,
            ledger.transport_errors + extra_transport_errors,
        );
    }

    // The warm-restart leg needs the direct bytes to compare against;
    // this is the same in-process run `verify_sweep` used.
    let direct = serve::sweep_csv(
        &cfg.sweep,
        &serve::sweep_options(
            Some(cfg.sweep_accesses),
            Some(&cfg.bench),
            None,
            colt_os_mem::policy::PolicyKind::Default,
            1,
            ServeConfig::default().max_accesses,
        ),
    )?;
    let warm = warm_restart_check(cfg, &cache_dir, &direct);

    let disruptive = summary.chaos.torn_frames
        + summary.chaos.resets
        + summary.chaos.accept_hiccups;
    let seen = ledger.transport_errors + extra_transport_errors;
    let verdicts = vec![
        Verdict {
            name: "zero_panics",
            pass: summary.panics == 0 && summary.failed_cells == 0,
            evidence: format!(
                "{} panic(s) caught, {} quarantined cell(s)",
                summary.panics, summary.failed_cells
            ),
        },
        Verdict {
            name: "faults_accounted",
            pass: seen == disruptive && summary.chaos.total() > 0,
            evidence: format!(
                "{} disruptive fault(s) injected ({} torn + {} reset + {} \
                 accept), {} transport error(s) observed client-side; {} \
                 stall(s) injected latency only",
                disruptive,
                summary.chaos.torn_frames,
                summary.chaos.resets,
                summary.chaos.accept_hiccups,
                seen,
                summary.chaos.stalls
            ),
        },
        Verdict {
            name: "no_leaked_slots",
            pass: summary.drained_clean,
            evidence: if summary.drained_clean {
                "queue empty and no in-flight sweep leaders at drain".to_string()
            } else {
                "drain budget expired with work still in flight".to_string()
            },
        },
        Verdict {
            name: "byte_identity",
            pass: byte_identity,
            evidence: bench_note,
        },
        Verdict {
            name: "warm_restart_identity",
            pass: warm.is_ok(),
            evidence: warm.unwrap_or_else(|e| e),
        },
    ];

    let payload =
        chaos_json(cfg, &summary, &ledger, extra_transport_errors, wall_seconds, &verdicts);
    if let Some(moved) = artifact::quarantine_if_corrupt(&cfg.out)
        .map_err(|e| format!("inspect {}: {e}", cfg.out.display()))?
    {
        eprintln!(
            "chaos-serve: WARNING: corrupt {} quarantined to {}",
            cfg.out.display(),
            moved.display()
        );
    }
    if let Some(parent) = cfg.out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    artifact::atomic_write_json(&cfg.out, &payload)
        .map_err(|e| format!("write {}: {e}", cfg.out.display()))?;
    let _ = std::fs::remove_dir_all(&scratch);

    let all_ok = verdicts.iter().all(|v| v.pass);
    if !cfg.quiet {
        for v in &verdicts {
            println!(
                "chaos-serve: {} {} — {}",
                if v.pass { "PASS" } else { "FAIL" },
                v.name,
                v.evidence
            );
        }
    }
    Ok((payload, all_ok))
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

fn chaos_usage() -> String {
    "usage: repro chaos-serve [--chaos rate=R,window=W,seed=S] [--conns N]\n\
     \u{20}                        [--requests N] [--accesses N] [--sweep EXP]\n\
     \u{20}                        [--sweep-every N] [--sweep-accesses N]\n\
     \u{20}                        [--bench A,B] [--jobs N] [--out PATH] [--quiet]\n\
     Runs the seeded network-fault soak: an in-process server with the\n\
     chaos plan armed, retrying clients, and five audited verdicts\n\
     (zero panics, all faults accounted, no leaked slots, byte identity\n\
     under retries, warm-restart identity). Writes results/BENCH_chaos.json\n\
     and exits nonzero when any verdict fails."
        .to_string()
}

/// `repro chaos-serve` entry point.
pub fn cli(args: &[String]) -> ExitCode {
    let mut cfg = ChaosServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = args.get(i + 1);
        let mut took_value = true;
        let parse_u64 = |flag: &str, v: Option<&String>| -> Result<u64, String> {
            v.ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs a number"))
        };
        let result: Result<(), String> = match arg {
            "--chaos" => value
                .ok_or_else(|| "--chaos needs a spec".to_string())
                .and_then(|v| ChaosConfig::parse(v))
                .map(|c| cfg.chaos = c),
            "--conns" => parse_u64(arg, value).map(|n| cfg.conns = n.max(1) as usize),
            "--requests" => parse_u64(arg, value).map(|n| cfg.requests = n.max(1)),
            "--accesses" => parse_u64(arg, value).map(|n| cfg.accesses = n.max(1)),
            "--sweep" => value
                .ok_or_else(|| "--sweep needs an experiment".to_string())
                .map(|v| cfg.sweep = v.clone()),
            "--sweep-every" => parse_u64(arg, value).map(|n| cfg.sweep_every = n),
            "--sweep-accesses" => {
                parse_u64(arg, value).map(|n| cfg.sweep_accesses = n.max(1))
            }
            "--bench" => value
                .ok_or_else(|| "--bench needs a list".to_string())
                .map(|v| cfg.bench = v.clone()),
            "--jobs" => parse_u64(arg, value).map(|n| cfg.jobs = n.max(1) as usize),
            "--out" => value
                .ok_or_else(|| "--out needs a path".to_string())
                .map(|v| cfg.out = PathBuf::from(v)),
            "--quiet" => {
                took_value = false;
                cfg.quiet = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{}", chaos_usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = result {
            eprintln!("{e}\n{}", chaos_usage());
            return ExitCode::from(2);
        }
        i += if took_value { 2 } else { 1 };
    }
    match run(&cfg) {
        Ok((payload, all_ok)) => {
            if !cfg.quiet {
                println!("chaos details written to {}", cfg.out.display());
            }
            if all_ok {
                if !cfg.quiet {
                    println!(
                        "CHAOS PASS: every verdict held (see {})",
                        cfg.out.display()
                    );
                }
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "CHAOS FAIL: one or more verdicts failed; payload:\n{payload}"
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("chaos-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
