//! Differential translation oracle + coalescing invariant checker.
//!
//! Coalesced TLBs fail in ways miss-ratio curves never show: a stale
//! entry that survives a page migration still *hits*, it just returns
//! the old frame. This module makes such bugs loud. It has three layers:
//!
//! 1. **Translation oracle** — every entry resident in any TLB structure
//!    is compared, translation by translation, against the live page
//!    table ([`check_hierarchy`]); the per-hit variant lives on the hot
//!    path behind [`crate::sim::SimConfig::check`].
//! 2. **Structural invariants** — coalesced runs must respect the
//!    hardware encodings of Figures 4/5: set-associative runs confined
//!    to one `2^shift` index group (the valid bitmap has `2^shift`
//!    bits), fully-associative ranges within the 5-bit
//!    [`MAX_RANGE_LEN`] length field, superpage entries exactly 512
//!    aligned pages, no two entries of one structure answering the same
//!    VPN with different frames, and base-PFN arithmetic consistent.
//! 3. **A fuzz driver** ([`replay`]/[`run_check`]) — interleaves kernel
//!    events (compaction, THP split + puncture, munmap, reclaim,
//!    context switches) with translation streams across every TLB
//!    configuration, delivering each recorded
//!    [`colt_os_mem::shootdown::ShootdownEvent`] as a per-VPN TLB +
//!    walker invalidation and cross-checking the walker's MMU cache
//!    afterwards. Failing event lists are minimised with
//!    [`colt_quickprop::shrink_list`] before being reported.
//!
//! Everything here is diagnostic-only: nothing in this module runs
//! unless the checker is explicitly invoked (`repro --check`), and the
//! simulation loop's oracle costs one predictable branch per hit when
//! disabled.

use crate::experiments::smp::MIX_LIGHT;
use crate::runner::{self, SweepTask};
use colt_memsim::hierarchy::CacheHierarchy;
use colt_memsim::walker::{PageWalker, WalkedLeaf};
use colt_os_mem::addr::{Asid, Pfn, PhysAddr, Vpn, SUPERPAGE_PAGES};
use colt_os_mem::faults::{DeliveryFault, FaultConfig, FaultPlan};
use colt_os_mem::kernel::{Kernel, KernelConfig};
use colt_os_mem::page_table::{PageTable, PteFlags};
use colt_os_mem::policy::PolicyKind;
use colt_prng::rngs::SmallRng;
use colt_prng::{Rng, SeedableRng};
use colt_quickprop::{fnv1a, shrink_list};
use colt_smp::{SmpConfig, SmpMachine};
use colt_tlb::config::TlbConfig;
use colt_tlb::entry::{CoalescedRun, RangeKind, MAX_RANGE_LEN};
use colt_tlb::hierarchy::{TlbHierarchy, WalkFill};
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;
use std::fmt;

/// One detected inconsistency between TLB state and ground truth, or a
/// broken structural invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A translation request hit in the TLB but the live page table
    /// disagrees with the returned frame (or no longer maps the page).
    StaleHit {
        /// Requested virtual page.
        vpn: Vpn,
        /// Frame the TLB returned.
        cached: Pfn,
        /// What the page table says (`None` = unmapped).
        live: Option<Pfn>,
    },
    /// A resident entry's cached translation disagrees with the page
    /// table (found by the full oracle scan, not a lookup).
    OracleMismatch {
        /// Structure holding the entry ("L1", "L2", "SP").
        structure: &'static str,
        /// Covered virtual page that disagrees.
        vpn: Vpn,
        /// Frame the entry would return.
        cached: Pfn,
        /// What the page table says (`None` = unmapped).
        live: Option<Pfn>,
    },
    /// Cached attribute bits disagree with the page table beyond the
    /// DIRTY/ACCESSED tolerance (hardware sets those through the TLB).
    FlagMismatch {
        /// Structure holding the entry.
        structure: &'static str,
        /// Covered virtual page.
        vpn: Vpn,
        /// Attributes the entry carries.
        cached: PteFlags,
        /// Attributes the page table holds.
        live: PteFlags,
    },
    /// Two entries of one structure cover the same VPN with conflicting
    /// translations (ambiguous lookup), or are exact duplicates.
    ConflictingOverlap {
        /// Structure with the overlap.
        structure: &'static str,
        /// First virtual page both entries cover.
        vpn: Vpn,
    },
    /// A run longer than its structure's length field can encode.
    RunTooLong {
        /// Structure holding the entry.
        structure: &'static str,
        /// First covered virtual page.
        start: Vpn,
        /// Offending length.
        len: u64,
        /// The encodable maximum.
        bound: u64,
    },
    /// A set-associative run crossing its `2^shift` index group — the
    /// valid bitmap of Figure 4 cannot represent it.
    GroupCrossing {
        /// Structure holding the entry.
        structure: &'static str,
        /// First covered virtual page.
        start: Vpn,
        /// Run length.
        len: u64,
        /// The index left-shift in force.
        shift: u32,
    },
    /// A superpage entry that is not exactly 512 aligned pages.
    SuperpageShape {
        /// First covered virtual page.
        start: Vpn,
        /// Recorded length.
        len: u64,
    },
    /// A page-walk-cache entry survived the per-VPN shootdown that
    /// should have removed it.
    StaleWalkEntry {
        /// Physical address of the surviving paging-structure entry.
        addr: PhysAddr,
    },
    /// Fills outside the possible 1..=8 PTE-line lengths were recorded
    /// ([`colt_tlb::stats::HierarchyStats::coalesce_overflow`]).
    OverflowedFills {
        /// Number of impossible-length fills.
        count: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::StaleHit { vpn, cached, live } => {
                write!(f, "stale hit at {vpn}: TLB returned {cached}, page table has {live:?}")
            }
            Violation::OracleMismatch { structure, vpn, cached, live } => write!(
                f,
                "{structure} entry covers {vpn} as {cached} but page table has {live:?}"
            ),
            Violation::FlagMismatch { structure, vpn, cached, live } => write!(
                f,
                "{structure} entry at {vpn} carries flags {cached:?}, page table has {live:?}"
            ),
            Violation::ConflictingOverlap { structure, vpn } => {
                write!(f, "{structure} holds conflicting entries covering {vpn}")
            }
            Violation::RunTooLong { structure, start, len, bound } => write!(
                f,
                "{structure} run at {start} has length {len} > encodable bound {bound}"
            ),
            Violation::GroupCrossing { structure, start, len, shift } => write!(
                f,
                "{structure} run at {start} (len {len}) crosses its 2^{shift} index group"
            ),
            Violation::SuperpageShape { start, len } => {
                write!(f, "superpage entry at {start} has impossible shape (len {len})")
            }
            Violation::StaleWalkEntry { addr } => {
                write!(f, "MMU cache still holds {addr} after its per-VPN shootdown")
            }
            Violation::OverflowedFills { count } => {
                write!(f, "{count} fill(s) outside the 1..=8 PTE-line length range")
            }
        }
    }
}

/// Attribute agreement modulo the bits hardware mutates through the TLB
/// (DIRTY/ACCESSED) and the bits the configuration deliberately ignores
/// when coalescing.
fn flags_agree(cached: PteFlags, live: PteFlags, ignore: PteFlags) -> bool {
    let mask = PteFlags::DIRTY.with(PteFlags::ACCESSED).with(ignore);
    cached.without(mask).bits() == live.without(mask).bits()
}

/// Scans one resident run against the live page table, reporting at
/// most one violation per run (one is enough to fail a case, and a
/// fully stale 512-page superpage entry would otherwise report 512).
fn oracle_scan(
    structure: &'static str,
    run: &CoalescedRun,
    pt: &PageTable,
    ignore: PteFlags,
    out: &mut Vec<Violation>,
) {
    for i in 0..run.len {
        let vpn = run.start_vpn.offset(i);
        let cached = run.base_pfn.offset(i);
        match pt.translate(vpn) {
            None => {
                out.push(Violation::OracleMismatch { structure, vpn, cached, live: None });
                return;
            }
            Some(t) if t.pfn != cached => {
                out.push(Violation::OracleMismatch {
                    structure,
                    vpn,
                    cached,
                    live: Some(t.pfn),
                });
                return;
            }
            Some(t) if !flags_agree(run.flags, t.flags, ignore) => {
                out.push(Violation::FlagMismatch {
                    structure,
                    vpn,
                    cached: run.flags,
                    live: t.flags,
                });
                return;
            }
            Some(_) => {}
        }
    }
}

/// The Figure 4/5 PPN-generation identity: every covered page must
/// translate to `base_pfn + (vpn - start_vpn)`. Checking the endpoints
/// covers the whole run since the encoding is a base plus an offset.
fn check_arithmetic(structure: &'static str, run: &CoalescedRun, out: &mut Vec<Violation>) {
    let last_vpn = Vpn::new(run.end_vpn().raw() - 1);
    let ok = run.translate(run.start_vpn) == Some(run.base_pfn)
        && run.translate(last_vpn) == Some(run.base_pfn.offset(run.len - 1));
    if !ok {
        out.push(Violation::RunTooLong { structure, start: run.start_vpn, len: run.len, bound: 0 });
    }
}

/// Set-associative encoding limits: length within the `2^shift`-bit
/// valid bitmap and no index-group crossing.
fn check_sa_shape(structure: &'static str, run: &CoalescedRun, shift: u32, out: &mut Vec<Violation>) {
    let bound = 1u64 << shift;
    if run.len > bound {
        out.push(Violation::RunTooLong { structure, start: run.start_vpn, len: run.len, bound });
    }
    if !run.fits_group(shift) {
        out.push(Violation::GroupCrossing { structure, start: run.start_vpn, len: run.len, shift });
    }
}

/// Fully-associative encoding limits: superpage entries are exactly 512
/// aligned pages; coalesced ranges fit the 5-bit length field — and,
/// without resident merging, never exceed the 8-PTE line a single fill
/// can coalesce.
fn check_fa_shape(run: &CoalescedRun, kind: RangeKind, config: &TlbConfig, out: &mut Vec<Violation>) {
    match kind {
        RangeKind::Superpage => {
            if run.len != SUPERPAGE_PAGES
                || !run.start_vpn.is_aligned(9)
                || !run.base_pfn.is_aligned(9)
            {
                out.push(Violation::SuperpageShape { start: run.start_vpn, len: run.len });
            }
        }
        RangeKind::Coalesced => {
            let bound = if config.fa_resident_merge { MAX_RANGE_LEN } else { 8 };
            if run.len > bound {
                out.push(Violation::RunTooLong {
                    structure: "SP",
                    start: run.start_vpn,
                    len: run.len,
                    bound,
                });
            }
        }
    }
}

/// Flags pairs of runs in one structure that cover a common VPN with
/// conflicting translations (ambiguous lookup) or are exact duplicates.
/// Overlapping runs that agree on every shared translation are benign
/// shadows (e.g. an L2-refill racing a partial invalidation) and pass.
fn coverage_conflicts(structure: &'static str, runs: &[CoalescedRun], out: &mut Vec<Violation>) {
    let mut sorted: Vec<&CoalescedRun> = runs.iter().collect();
    sorted.sort_by_key(|r| (r.start_vpn.raw(), r.end_vpn().raw()));
    let mut active: Vec<&CoalescedRun> = Vec::new();
    for r in sorted {
        active.retain(|p| p.end_vpn() > r.start_vpn);
        for p in &active {
            // Same anchor ⇒ every shared vpn translates identically.
            let anchor_p = p.base_pfn.raw() as i128 - p.start_vpn.raw() as i128;
            let anchor_r = r.base_pfn.raw() as i128 - r.start_vpn.raw() as i128;
            if anchor_p != anchor_r || **p == *r {
                out.push(Violation::ConflictingOverlap {
                    structure,
                    vpn: Vpn::new(p.start_vpn.raw().max(r.start_vpn.raw())),
                });
            }
        }
        active.push(r);
    }
}

/// Runs the full oracle + structural sweep of `tlb` against `pt`.
pub fn check_hierarchy(tlb: &TlbHierarchy, pt: &PageTable) -> Vec<Violation> {
    let mut out = Vec::new();
    check_hierarchy_into(tlb, pt, &mut out);
    out
}

fn check_hierarchy_into(tlb: &TlbHierarchy, pt: &PageTable, out: &mut Vec<Violation>) {
    let ignore = tlb.config().coalesce_ignore_flags;
    let shift = tlb.l1().shift();
    let l1: Vec<CoalescedRun> = tlb.l1().iter().map(|e| e.run()).collect();
    let l2: Vec<CoalescedRun> = tlb.l2().iter().map(|e| e.run()).collect();
    let sp: Vec<(CoalescedRun, RangeKind)> = tlb.sp().iter().map(|e| (e.run(), e.kind())).collect();

    for (structure, runs) in [("L1", &l1), ("L2", &l2)] {
        for run in runs.iter() {
            check_sa_shape(structure, run, shift, out);
            check_arithmetic(structure, run, out);
            oracle_scan(structure, run, pt, ignore, out);
        }
        coverage_conflicts(structure, runs, out);
    }
    let sp_runs: Vec<CoalescedRun> = sp.iter().map(|(r, _)| *r).collect();
    for (run, kind) in &sp {
        check_fa_shape(run, *kind, tlb.config(), out);
        check_arithmetic("SP", run, out);
        oracle_scan("SP", run, pt, ignore, out);
    }
    coverage_conflicts("SP", &sp_runs, out);
    let overflow = tlb.stats().coalesce_overflow;
    if overflow != 0 {
        out.push(Violation::OverflowedFills { count: overflow });
    }
}

/// Cross-core oracle: validates every entry resident in one core's TLB
/// hierarchy against the page table of the process that *owns* the
/// entry. In tagged mode the owner is the entry's own ASID tag (one
/// hierarchy legitimately mixes several address spaces); untagged cores
/// flush everything at context switches, so all entries belong to the
/// currently running process. Structural invariants (run shapes, group
/// crossings, arithmetic) are checked either way; coverage conflicts
/// are checked per owner, since entries of different address spaces may
/// legally cover one VPN with different frames — tagged lookups filter
/// by ASID.
pub fn check_core_hierarchy(
    tlb: &TlbHierarchy,
    kernel: &Kernel,
    running: Option<Asid>,
    out: &mut Vec<Violation>,
) {
    let tagged = tlb.config().asid_tagged;
    let ignore = tlb.config().coalesce_ignore_flags;
    let shift = tlb.l1().shift();
    let mut runs: Vec<(&'static str, Asid, CoalescedRun, Option<RangeKind>)> = Vec::new();
    for e in tlb.l1().iter() {
        runs.push(("L1", e.asid(), e.run(), None));
    }
    for e in tlb.l2().iter() {
        runs.push(("L2", e.asid(), e.run(), None));
    }
    for e in tlb.sp().iter() {
        runs.push(("SP", e.asid(), e.run(), Some(e.kind())));
    }
    for (structure, tag, run, kind) in &runs {
        match kind {
            None => check_sa_shape(structure, run, shift, out),
            Some(k) => check_fa_shape(run, *k, tlb.config(), out),
        }
        check_arithmetic(structure, run, out);
        let owner = if tagged { Some(*tag) } else { running };
        let Some(owner) = owner else { continue };
        match kernel.process(owner) {
            Ok(p) => oracle_scan(structure, run, p.page_table(), ignore, out),
            Err(_) => out.push(Violation::OracleMismatch {
                structure,
                vpn: run.start_vpn,
                cached: run.base_pfn,
                live: None,
            }),
        }
    }
    for structure in ["L1", "L2", "SP"] {
        let mut owners: Vec<Asid> = runs
            .iter()
            .filter(|(s, ..)| *s == structure)
            .map(|(_, tag, ..)| *tag)
            .collect();
        owners.sort_unstable();
        owners.dedup();
        for owner in owners {
            let subset: Vec<CoalescedRun> = runs
                .iter()
                .filter(|(s, tag, ..)| *s == structure && *tag == owner)
                .map(|(.., run, _)| *run)
                .collect();
            coverage_conflicts(structure, &subset, out);
        }
    }
    let overflow = tlb.stats().coalesce_overflow;
    if overflow != 0 {
        out.push(Violation::OverflowedFills { count: overflow });
    }
}

/// Cross-core differential check: an eight-benchmark mix co-scheduled
/// over `cores` cores runs under periodic kernel churn with shootdown
/// broadcast; after every chunk of lockstep steps, every core's
/// resident entries are validated against the owning process's live
/// page table via [`check_core_hierarchy`]. Covers untagged CoLT-All
/// (flush-at-switch), tagged CoLT-All, and a tagged baseline TLB.
pub fn run_smp_check(cores: usize, seeds: u64, jobs: usize) -> CheckReport {
    run_smp_check_with_faults(cores, seeds, jobs, None)
}

/// [`run_smp_check_with_faults`] with the shared kernel booted under a
/// memory-management policy. Default-policy case labels (and hence
/// case seeds and event lists) are byte-identical to the historical
/// ones; non-default policies get their own label segment so their
/// cases fuzz independent event lists.
pub fn run_smp_check_with_policy(
    cores: usize,
    seeds: u64,
    jobs: usize,
    faults: Option<FaultConfig>,
    policy: PolicyKind,
) -> CheckReport {
    run_smp_check_inner(cores, seeds, jobs, faults, policy)
}

/// [`run_smp_check`] with the shared kernel running under an injected
/// fault plan (installed after workload preparation, so the aged system
/// state matches the fault-free run and only the checked phase
/// degrades). Shootdown *delivery* stays exact on SMP — the machine
/// models the IPI mesh itself — so this validates that kernel-side
/// degradation (fallbacks, OOM kills, deferred collapses) never leaks a
/// stale translation to any core.
pub fn run_smp_check_with_faults(
    cores: usize,
    seeds: u64,
    jobs: usize,
    faults: Option<FaultConfig>,
) -> CheckReport {
    run_smp_check_inner(cores, seeds, jobs, faults, PolicyKind::Default)
}

fn run_smp_check_inner(
    cores: usize,
    seeds: u64,
    jobs: usize,
    faults: Option<FaultConfig>,
    policy: PolicyKind,
) -> CheckReport {
    let cores = cores.max(2);
    let pseg = policy_label_segment(policy);
    let mut tasks: Vec<SweepTask<CaseReport>> = Vec::new();
    for seed in 0..seeds {
        for (cname, tlb_cfg) in [
            ("untagged-all", TlbConfig::colt_all()),
            ("tagged-all", TlbConfig::colt_all().with_asid_tagging()),
            ("tagged-base", TlbConfig::baseline().with_asid_tagging()),
        ] {
            let label = format!("smpcheck/{cname}/{cores}c{pseg}/seed{seed}");
            let case_seed = fnv1a(&label) ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let task_label = label.clone();
            tasks.push(SweepTask::new(task_label, 0, move || {
                let specs: Vec<_> = MIX_LIGHT
                    .iter()
                    .map(|n| benchmark(n).expect("Table-1 benchmark"))
                    .collect();
                let multi = Scenario::default_linux()
                    .with_policy(policy)
                    .with_seed(case_seed)
                    .prepare_many(&specs)
                    .unwrap_or_else(|e| panic!("prepare_many(smpcheck): {e}"));
                let cfg = SmpConfig::new(cores, tlb_cfg)
                    .with_quantum(400)
                    .with_churn_period(Some(271));
                let mut machine = SmpMachine::new(multi, cfg, case_seed);
                if let Some(fc) = faults {
                    machine.install_fault_plan(fc);
                }
                let mut violations = Vec::new();
                for _ in 0..24 {
                    machine.run(300);
                    for c in 0..machine.cores() {
                        check_core_hierarchy(
                            machine.core_tlb(c),
                            machine.kernel(),
                            machine.running_asid(c),
                            &mut violations,
                        );
                    }
                    if !violations.is_empty() {
                        break;
                    }
                }
                let translations =
                    machine.result().aggregate().counters.accesses;
                CaseReport {
                    label: label.clone(),
                    seed: case_seed,
                    violations,
                    minimized: Vec::new(),
                    translations,
                }
            }));
        }
    }
    let cases = runner::run_tasks(tasks, jobs);
    let translations = cases.iter().map(|c| c.translations).sum();
    CheckReport { cases, translations }
}

/// One step of the fuzzed interleaving. Every variant carries its own
/// payload (salts, counts, slots) so a shrunk sub-list replays exactly
/// the same operations — the precondition for ddmin minimisation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuzzEvent {
    /// A burst of `count` translations over the current process's
    /// regions, picked by a generator seeded with `salt`.
    Translate {
        /// Seed for the per-burst VPN picker.
        salt: u64,
        /// Number of translations.
        count: u32,
    },
    /// Anonymous allocation in the current process (superpage-sized
    /// requests exercise THS promotion when enabled).
    Malloc {
        /// Pages to allocate.
        pages: u64,
    },
    /// `munmap` of one of the current process's regions.
    Free {
        /// Region index, taken modulo the live region count.
        slot: usize,
    },
    /// Dirties one page (attribute-only page-table mutation — must NOT
    /// require a shootdown; the oracle tolerates D/A divergence).
    MarkDirty {
        /// Seed for the VPN picker.
        salt: u64,
    },
    /// Direct compaction pass (page migrations).
    Compact,
    /// Kernel background tick (watermark-driven compaction slices).
    Tick,
    /// THP pressure splits (+ puncture reclaim when configured).
    SplitSupers {
        /// Superpages to split.
        n: usize,
    },
    /// Page-cache reclaim of clean file pages.
    Reclaim {
        /// Eviction target in pages.
        target: u64,
    },
    /// Switch to the other process: full TLB + walker flush (no ASID
    /// tagging), like the paper's multiprogrammed runs.
    ContextSwitch,
}

/// Everything one replayed case observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseOutcome {
    /// Violations, in detection order (the case stops at the first
    /// failing event).
    pub violations: Vec<Violation>,
    /// Translations performed.
    pub translations: u64,
    /// Events applied before stopping.
    pub events_applied: usize,
}

/// Generates a deterministic event list for `seed`.
pub fn gen_events(seed: u64, len: usize) -> Vec<FuzzEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0u32..100) {
            0..=39 => FuzzEvent::Translate {
                salt: rng.next_u64(),
                count: rng.gen_range(8u32..=64),
            },
            40..=49 => FuzzEvent::Malloc { pages: rng.gen_range(1u64..=700) },
            50..=57 => FuzzEvent::Free { slot: rng.gen_range(0usize..8) },
            58..=64 => FuzzEvent::MarkDirty { salt: rng.next_u64() },
            65..=74 => FuzzEvent::Compact,
            75..=80 => FuzzEvent::Tick,
            81..=88 => FuzzEvent::SplitSupers { n: rng.gen_range(1usize..=2) },
            89..=93 => FuzzEvent::Reclaim { target: rng.gen_range(8u64..=64) },
            _ => FuzzEvent::ContextSwitch,
        })
        .collect()
}

/// The small physical memory the fuzz kernel runs in: big enough for
/// two processes with superpages, small enough that reclaim, puncture,
/// and compaction all actually trigger.
fn fuzz_kernel(ths: bool) -> KernelConfig {
    let base = if ths { KernelConfig::ths_on() } else { KernelConfig::ths_off() };
    KernelConfig { nr_frames: 1 << 14, ..base }
}

/// Uniformly picks a mapped-region page of the current process.
fn pick_vpn(regions: &[(Vpn, u64)], rng: &mut SmallRng) -> Option<Vpn> {
    let total: u64 = regions.iter().map(|(_, pages)| *pages).sum();
    if total == 0 {
        return None;
    }
    let mut idx = rng.gen_range(0..total);
    for (start, pages) in regions {
        if idx < *pages {
            return Some(start.offset(idx));
        }
        idx -= pages;
    }
    None
}

/// Delivers every pending shootdown for the running address space as a
/// per-VPN TLB invalidation plus a per-entry walker (MMU cache)
/// invalidation, then cross-checks that no shot paging-structure entry
/// survived. Events for the other address space need no delivery: that
/// process's TLB state is rebuilt from scratch after the context-switch
/// flush (and page-table node addresses alias across processes, so its
/// entry addresses must not be applied to this walker).
///
/// With a `delivery` fault plan, each IPI may be duplicated (delivered
/// twice — invalidation must be idempotent) or dropped. A dropped IPI
/// is recovered the way a real kernel recovers a lost shootdown ack: a
/// conservative full TLB + walker flush, which keeps the oracle sound
/// while still exercising the flush path at adversarial moments.
fn apply_shootdowns(
    kernel: &mut Kernel,
    running: Asid,
    tlb: &mut TlbHierarchy,
    walker: &mut PageWalker,
    delivery: &mut Option<FaultPlan>,
    out: &mut Vec<Violation>,
) {
    for ev in kernel.take_shootdowns() {
        if ev.asid != running {
            continue;
        }
        let fate = delivery
            .as_mut()
            .map_or(DeliveryFault::Deliver, FaultPlan::delivery_fault);
        let rounds = match fate {
            DeliveryFault::Drop => {
                tlb.flush();
                walker.flush();
                continue;
            }
            DeliveryFault::Deliver => 1,
            DeliveryFault::Duplicate => 2,
        };
        for _ in 0..rounds {
            tlb.invalidate(ev.vpn);
            walker.invalidate_addrs(&ev.entry_addrs);
        }
        for &addr in &ev.entry_addrs {
            if walker.mmu_contains(addr) {
                out.push(Violation::StaleWalkEntry { addr });
            }
        }
    }
}

/// Replays one event list against a fresh kernel + TLB + walker,
/// running the full oracle and invariant sweep after every event.
/// Deterministic: identical inputs produce identical outcomes.
pub fn replay(tlb_config: TlbConfig, kernel_config: KernelConfig, events: &[FuzzEvent]) -> CaseOutcome {
    replay_with_faults(tlb_config, kernel_config, events, None)
}

/// [`replay`] under deterministic fault injection: the kernel runs with
/// an allocation/compaction/reclaim fault plan seeded from `faults`,
/// and shootdown IPIs pass through a decorrelated delivery plan that
/// drops or duplicates them. Still fully deterministic.
pub fn replay_with_faults(
    tlb_config: TlbConfig,
    kernel_config: KernelConfig,
    events: &[FuzzEvent],
    faults: Option<FaultConfig>,
) -> CaseOutcome {
    let kernel_config = KernelConfig { faults, ..kernel_config };
    let mut delivery = faults.map(FaultPlan::delivery);
    let mut kernel = Kernel::new(kernel_config);
    kernel.enable_shootdown_log();
    let asids = [kernel.spawn(), kernel.spawn()];
    let mut regions: [Vec<(Vpn, u64)>; 2] = [Vec::new(), Vec::new()];
    for (p, asid) in asids.iter().enumerate() {
        // Per process: an anonymous heap spanning a superpage (THS
        // candidate), a small buffer, and a file mapping (reclaim prey).
        for pages in [600u64, 64] {
            if let Ok(start) = kernel.malloc(*asid, pages) {
                regions[p].push((start, pages));
            }
        }
        if let Ok(start) = kernel.mmap_file(*asid, 128) {
            regions[p].push((start, 128));
        }
    }
    // Setup allocations may already compact or reclaim; nothing is
    // cached yet, so the pending events are moot.
    let _ = kernel.take_shootdowns();

    let mut tlb = TlbHierarchy::new(tlb_config);
    let mut walker = PageWalker::paper_default();
    let mut caches = CacheHierarchy::core_i7();
    let mut current = 0usize;
    let mut violations = Vec::new();
    let mut translations = 0u64;
    let mut events_applied = 0usize;

    for event in events {
        events_applied += 1;
        let asid = asids[current];
        match event {
            FuzzEvent::Translate { salt, count } => {
                let mut rng = SmallRng::seed_from_u64(*salt);
                for _ in 0..*count {
                    let Some(vpn) = pick_vpn(&regions[current], &mut rng) else {
                        break;
                    };
                    translations += 1;
                    if let Some(hit) = tlb.lookup(vpn) {
                        let live = kernel.process(asid).expect("fuzz process").translate(vpn);
                        if live.map(|t| t.pfn) != Some(hit.pfn) {
                            violations.push(Violation::StaleHit {
                                vpn,
                                cached: hit.pfn,
                                live: live.map(|t| t.pfn),
                            });
                        }
                        continue;
                    }
                    if kernel.process(asid).expect("fuzz process").translate(vpn).is_none() {
                        // Reclaimed/punctured page: fault it back in.
                        // Refault may itself reclaim or compact, so
                        // deliver those shootdowns before walking.
                        if kernel.touch(asid, vpn).is_err() {
                            continue;
                        }
                        apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
                    }
                    let pt = kernel.process(asid).expect("fuzz process").page_table();
                    if let Some(outcome) = walker.walk(pt, vpn, &mut caches) {
                        let fill = match outcome.leaf {
                            WalkedLeaf::Base { line } => WalkFill::Base { line },
                            WalkedLeaf::Super { base_vpn, base_pfn, flags } => {
                                WalkFill::Super { base_vpn, base_pfn, flags }
                            }
                        };
                        tlb.fill(vpn, &fill);
                    }
                }
            }
            FuzzEvent::Malloc { pages } => {
                if let Ok(start) = kernel.malloc(asid, *pages) {
                    regions[current].push((start, *pages));
                }
                apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
            }
            FuzzEvent::Free { slot } => {
                if !regions[current].is_empty() {
                    let idx = slot % regions[current].len();
                    let (start, _) = regions[current].remove(idx);
                    let _ = kernel.free(asid, start);
                    apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
                }
            }
            FuzzEvent::MarkDirty { salt } => {
                let mut rng = SmallRng::seed_from_u64(*salt);
                if let Some(vpn) = pick_vpn(&regions[current], &mut rng) {
                    let _ = kernel.mark_dirty(asid, vpn);
                }
            }
            FuzzEvent::Compact => {
                kernel.compact_now();
                apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
            }
            FuzzEvent::Tick => {
                kernel.tick();
                apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
            }
            FuzzEvent::SplitSupers { n } => {
                kernel.split_superpages(*n);
                apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
            }
            FuzzEvent::Reclaim { target } => {
                kernel.reclaim_file_pages(*target);
                apply_shootdowns(&mut kernel, asid, &mut tlb, &mut walker, &mut delivery, &mut violations);
            }
            FuzzEvent::ContextSwitch => {
                current = 1 - current;
                tlb.flush();
                walker.flush();
            }
        }
        let pt = kernel
            .process(asids[current])
            .expect("fuzz processes stay live")
            .page_table();
        check_hierarchy_into(&tlb, pt, &mut violations);
        if !violations.is_empty() {
            break;
        }
    }
    CaseOutcome { violations, translations, events_applied }
}

/// Result of one fuzz case after optional minimisation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseReport {
    /// "check/<config>/<ths>/seed<N>".
    pub label: String,
    /// The derived event-generation seed.
    pub seed: u64,
    /// Violations found (empty = clean case).
    pub violations: Vec<Violation>,
    /// ddmin-minimised failing event list (empty when clean).
    pub minimized: Vec<FuzzEvent>,
    /// Translations the full case performed.
    pub translations: u64,
}

/// Aggregate over every (config × THS × seed) fuzz case.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckReport {
    /// Per-case results, in submission order.
    pub cases: Vec<CaseReport>,
    /// Total translations checked.
    pub translations: u64,
}

impl CheckReport {
    /// Total violations across all cases.
    pub fn total_violations(&self) -> usize {
        self.cases.iter().map(|c| c.violations.len()).sum()
    }

    /// True when no case found anything.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// The checked configurations: the four paper designs plus their
/// §4.1.5/§4.2.3 future-work variants (graceful invalidation,
/// coalescing-aware replacement, D/A-tolerant coalescing) — the latter
/// is where partial-invalidation bugs live.
pub fn check_configs() -> Vec<(String, TlbConfig)> {
    let base = [
        TlbConfig::baseline(),
        TlbConfig::colt_sa(),
        TlbConfig::colt_fa(),
        TlbConfig::colt_all(),
    ];
    let mut out = Vec::new();
    for cfg in base {
        out.push((cfg.mode.label().to_string(), cfg));
    }
    for cfg in base {
        out.push((format!("{}+fw", cfg.mode.label()), cfg.with_future_work()));
    }
    out
}

/// Fuzzes every configuration with `seeds` independent event lists of
/// `events_per_case` events, fanned out over `jobs` workers through the
/// deterministic sweep runner (results are identical at any width).
/// Failing cases are ddmin-minimised before reporting.
pub fn run_check(seeds: u64, events_per_case: usize, jobs: usize) -> CheckReport {
    run_check_with_faults(seeds, events_per_case, jobs, None)
}

/// The label segment a policy contributes to fuzz-case labels: empty
/// for the default policy (so default case labels, seeds, and event
/// lists stay byte-identical to the pre-policy checker) and
/// "/<name>" otherwise (so each policy fuzzes its own event lists).
fn policy_label_segment(policy: PolicyKind) -> String {
    if policy == PolicyKind::Default {
        String::new()
    } else {
        format!("/{}", policy.name())
    }
}

/// [`run_check_with_faults`] with every fuzz kernel booted under a
/// memory-management policy: the oracle must stay clean however the
/// policy skews THP grants, compaction, reclaim order, or placement.
pub fn run_check_with_policy(
    seeds: u64,
    events_per_case: usize,
    jobs: usize,
    faults: Option<FaultConfig>,
    policy: PolicyKind,
) -> CheckReport {
    run_check_inner(seeds, events_per_case, jobs, faults, policy)
}

/// [`run_check`] with every case running under the given fault plan:
/// the same event lists replay against a kernel that suffers injected
/// allocation failures, compaction aborts, and reclaim spikes, while
/// shootdown IPIs are dropped/duplicated by a decorrelated delivery
/// plan. The oracle must stay clean — degradation may change *which*
/// frames back a page, never the coherence of cached translations.
pub fn run_check_with_faults(
    seeds: u64,
    events_per_case: usize,
    jobs: usize,
    faults: Option<FaultConfig>,
) -> CheckReport {
    run_check_inner(seeds, events_per_case, jobs, faults, PolicyKind::Default)
}

fn run_check_inner(
    seeds: u64,
    events_per_case: usize,
    jobs: usize,
    faults: Option<FaultConfig>,
    policy: PolicyKind,
) -> CheckReport {
    let pseg = policy_label_segment(policy);
    let mut tasks: Vec<SweepTask<CaseReport>> = Vec::new();
    for seed in 0..seeds {
        for (label, tlb_cfg) in check_configs() {
            for (kname, base_cfg) in [("ths-on", fuzz_kernel(true)), ("ths-off", fuzz_kernel(false))] {
                let kernel_cfg = KernelConfig { policy, ..base_cfg };
                let case_label = format!("check/{label}/{kname}{pseg}/seed{seed}");
                let case_seed = fnv1a(&case_label) ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let events = gen_events(case_seed, events_per_case);
                let task_label = case_label.clone();
                tasks.push(SweepTask::new(task_label, 0, move || {
                    let outcome = replay_with_faults(tlb_cfg, kernel_cfg, &events, faults);
                    let minimized = if outcome.violations.is_empty() {
                        Vec::new()
                    } else {
                        shrink_list(&events, |sub| {
                            !replay_with_faults(tlb_cfg, kernel_cfg, sub, faults)
                                .violations
                                .is_empty()
                        })
                    };
                    CaseReport {
                        label: case_label.clone(),
                        seed: case_seed,
                        violations: outcome.violations,
                        minimized,
                        translations: outcome.translations,
                    }
                }));
            }
        }
    }
    let cases = runner::run_tasks(tasks, jobs);
    let translations = cases.iter().map(|c| c.translations).sum();
    CheckReport { cases, translations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_os_mem::page_table::Pte;

    fn flags() -> PteFlags {
        PteFlags::user_data()
    }

    fn run(v: u64, p: u64, len: u64) -> CoalescedRun {
        CoalescedRun::new(Vpn::new(v), Pfn::new(p), len, flags())
    }

    fn contiguous_pt(n: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..n {
            pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(100 + i), flags()));
        }
        pt
    }

    fn filled(config: TlbConfig, pt: &PageTable, vpn: Vpn) -> TlbHierarchy {
        let mut tlb = TlbHierarchy::new(config);
        assert!(tlb.lookup(vpn).is_none(), "expected cold miss");
        tlb.fill(vpn, &WalkFill::Base { line: pt.pte_line(vpn) });
        tlb
    }

    #[test]
    fn clean_hierarchies_pass_in_every_mode() {
        let pt = contiguous_pt(8);
        for config in [
            TlbConfig::baseline(),
            TlbConfig::colt_sa(),
            TlbConfig::colt_fa(),
            TlbConfig::colt_all(),
        ] {
            let tlb = filled(config, &pt, Vpn::new(8));
            assert_eq!(check_hierarchy(&tlb, &pt), vec![], "{:?}", config.mode);
        }
    }

    #[test]
    fn oracle_catches_a_silent_remap() {
        let mut pt = contiguous_pt(8);
        let tlb = filled(TlbConfig::colt_fa(), &pt, Vpn::new(8));
        assert!(check_hierarchy(&tlb, &pt).is_empty());
        // Migrate page 10 behind the TLB's back (no shootdown).
        pt.remap_base(Vpn::new(10), Pfn::new(999));
        let v = check_hierarchy(&tlb, &pt);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::OracleMismatch { vpn, cached, live: Some(l), .. }
                    if *vpn == Vpn::new(10) && *cached == Pfn::new(102) && *l == Pfn::new(999)
            )),
            "silent remap must surface as an oracle mismatch: {v:?}"
        );
    }

    #[test]
    fn oracle_catches_a_silent_unmap() {
        let mut pt = contiguous_pt(8);
        let tlb = filled(TlbConfig::colt_sa(), &pt, Vpn::new(8));
        pt.unmap_base(Vpn::new(9));
        let v = check_hierarchy(&tlb, &pt);
        assert!(
            v.iter().any(|x| matches!(
                x,
                Violation::OracleMismatch { vpn, live: None, .. } if *vpn == Vpn::new(9)
            )),
            "silent unmap must surface: {v:?}"
        );
    }

    #[test]
    fn oracle_tolerates_dirty_and_accessed_divergence() {
        let mut pt = contiguous_pt(8);
        let tlb = filled(TlbConfig::colt_sa(), &pt, Vpn::new(8));
        // Hardware would set these through the TLB; no shootdown occurs.
        pt.add_flags_base(Vpn::new(9), PteFlags::DIRTY.with(PteFlags::ACCESSED));
        assert_eq!(check_hierarchy(&tlb, &pt), vec![]);
    }

    #[test]
    fn oracle_flags_non_ad_attribute_divergence() {
        let mut pt = contiguous_pt(8);
        let tlb = filled(TlbConfig::colt_sa(), &pt, Vpn::new(8));
        pt.add_flags_base(Vpn::new(9), PteFlags::GLOBAL);
        let v = check_hierarchy(&tlb, &pt);
        assert!(
            v.iter().any(|x| matches!(x, Violation::FlagMismatch { vpn, .. } if *vpn == Vpn::new(9))),
            "a GLOBAL-bit divergence is a real inconsistency: {v:?}"
        );
    }

    #[test]
    fn overlap_detector_separates_conflicts_from_shadows() {
        let mut out = Vec::new();
        // Conflicting anchors over vpns 10..12: ambiguous lookup.
        coverage_conflicts("SP", &[run(8, 100, 4), run(10, 300, 4)], &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Violation::ConflictingOverlap { vpn, .. } if vpn == Vpn::new(10)));

        // Exact duplicate: a double-insert bug even though consistent.
        out.clear();
        coverage_conflicts("L2", &[run(8, 100, 4), run(8, 100, 4)], &mut out);
        assert_eq!(out.len(), 1);

        // Same-anchor partial overlap: a benign shadow copy.
        out.clear();
        coverage_conflicts("SP", &[run(8, 100, 4), run(9, 101, 2)], &mut out);
        assert_eq!(out, vec![]);

        // Disjoint: nothing.
        out.clear();
        coverage_conflicts("SP", &[run(8, 100, 4), run(12, 104, 2)], &mut out);
        assert_eq!(out, vec![]);

        // Nested overlap far from the sort-adjacent pair is still found.
        out.clear();
        coverage_conflicts("SP", &[run(8, 100, 20), run(9, 101, 1), run(20, 900, 2)], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn sa_shape_limits_are_enforced() {
        let mut out = Vec::new();
        check_sa_shape("L1", &run(8, 100, 4), 2, &mut out);
        assert_eq!(out, vec![], "a full group is legal");
        check_sa_shape("L1", &run(9, 100, 4), 2, &mut out);
        assert!(
            out.iter().any(|v| matches!(v, Violation::GroupCrossing { .. })),
            "9..13 crosses the 8..12 group: {out:?}"
        );
        out.clear();
        check_sa_shape("L1", &run(8, 100, 5), 2, &mut out);
        assert!(out.iter().any(|v| matches!(v, Violation::RunTooLong { bound: 4, .. })));
    }

    #[test]
    fn fa_shape_limits_are_enforced() {
        let mut out = Vec::new();
        let cfg = TlbConfig::colt_fa();
        check_fa_shape(&run(8, 100, 8), RangeKind::Coalesced, &cfg, &mut out);
        assert_eq!(out, vec![]);
        check_fa_shape(&run(0, 0, MAX_RANGE_LEN + 1), RangeKind::Coalesced, &cfg, &mut out);
        assert!(out.iter().any(|v| matches!(v, Violation::RunTooLong { .. })));
        out.clear();
        check_fa_shape(&run(512, 1024, 511), RangeKind::Superpage, &cfg, &mut out);
        assert!(out.iter().any(|v| matches!(v, Violation::SuperpageShape { .. })));
    }

    #[test]
    fn fuzz_replay_is_deterministic() {
        let events = gen_events(42, 24);
        let a = replay(TlbConfig::colt_all().with_future_work(), fuzz_kernel(true), &events);
        let b = replay(TlbConfig::colt_all().with_future_work(), fuzz_kernel(true), &events);
        assert_eq!(a, b);
        assert!(a.translations > 0, "the case must actually translate");
    }

    #[test]
    fn faulted_fuzz_replay_is_deterministic() {
        let events = gen_events(1337, 24);
        let fc = FaultConfig { rate: 0.2, window: 4, seed: 99 };
        let a = replay_with_faults(TlbConfig::colt_all(), fuzz_kernel(true), &events, Some(fc));
        let b = replay_with_faults(TlbConfig::colt_all(), fuzz_kernel(true), &events, Some(fc));
        assert_eq!(a, b);
        assert!(a.translations > 0);
        // The faulted run must actually diverge from the clean one
        // somewhere (degradation changed frame placement), else the
        // injection never reached the kernel.
        let clean = replay(TlbConfig::colt_all(), fuzz_kernel(true), &events);
        assert!(clean.violations.is_empty() && a.violations.is_empty());
    }

    #[test]
    fn fuzz_smoke_is_clean_under_fault_injection() {
        let report = run_check_with_faults(1, 24, 2, Some(FaultConfig::default()));
        for case in &report.cases {
            assert!(
                case.violations.is_empty(),
                "faulted case {} found: {:?}\nminimised to: {:?}",
                case.label,
                case.violations,
                case.minimized
            );
        }
        assert!(report.translations > 0);
    }

    #[test]
    fn fuzz_smoke_is_clean_across_configs() {
        let report = run_check(1, 24, 2);
        for case in &report.cases {
            assert!(
                case.violations.is_empty(),
                "case {} found: {:?}\nminimised to: {:?}",
                case.label,
                case.violations,
                case.minimized
            );
        }
        assert!(report.translations > 0);
    }

    #[test]
    fn fuzz_smoke_is_clean_under_hostile_policies() {
        // The invariants must hold no matter how the MM policy places
        // or denies pages: Adversarial maximizes fragmentation,
        // GreedyContig maximizes coalescing-candidate runs.
        for policy in [PolicyKind::Adversarial, PolicyKind::GreedyContig] {
            let report = run_check_with_policy(1, 24, 2, None, policy);
            for case in &report.cases {
                assert!(
                    case.violations.is_empty(),
                    "case {} under {policy} found: {:?}\nminimised to: {:?}",
                    case.label,
                    case.violations,
                    case.minimized
                );
                assert!(
                    case.label.contains(&format!("/{}/", policy.name())),
                    "non-default policy must be visible in the label: {}",
                    case.label
                );
            }
            assert!(report.translations > 0);
        }
    }
}
