//! Process-global workload-preparation cache with durable snapshots.
//!
//! Preparing one (scenario, benchmark) pair — booting a kernel, aging
//! it, running memhog and the allocation phase — costs ~100 ms, two
//! orders of magnitude more than simulating a sweep cell against it.
//! The runner already shares preparations *within* one sweep; this
//! module extends the sharing to the whole process and, through disk
//! snapshots, to future invocations:
//!
//! 1. **Memory layer** — one `Arc<PreparedWorkload>` per preparation
//!    key, shared by every sweep the process runs. The map is a
//!    capacity-bounded LRU (`COLT_SNAPSHOT_MEM_CAP`, default
//!    64 entries): one-shot invocations never come near the bound, but
//!    a resident `repro serve` process cycling through configurations
//!    would otherwise grow it forever. Evictions are counted in
//!    [`CacheStats::mem_evictions`], never silent.
//! 2. **Disk layer** — `results/snapshots/<fingerprint>.snap` (override
//!    with `COLT_SNAPSHOT_DIR`), written atomically after each fresh
//!    preparation, so a second `repro` invocation decodes the prepared
//!    kernel instead of rebuilding it.
//!
//! Snapshot files carry a magic, a format version, a CRC32 over the
//! body, and the full preparation key. A corrupt or version-bumped file
//! is quarantined to `<file>.corrupt-<n>` — exactly the journal's
//! policy — and the pair is re-prepared; a file whose stored key
//! differs (a fingerprint collision or stale flags) is simply ignored
//! and overwritten. Decoded workloads are bit-equivalent to freshly
//! prepared ones (see `colt_os_mem::snapshot`), so cache hits cannot
//! change any result table.
//!
//! `repro --no-snapshot-cache` (→ [`set_enabled`]) disables both
//! layers; intra-sweep sharing in the runner is unaffected.

use crate::journal::{crc32, fingerprint_of};
use crate::lru::LruMap;
use colt_os_mem::snapshot::{Dec, Enc};
use colt_workloads::scenario::{PreparedWorkload, Scenario};
use colt_workloads::spec::BenchmarkSpec;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

/// Snapshot file format version. Bump whenever any `Snapshot` impl in
/// the substrate changes shape; old files are then quarantined instead
/// of misread.
pub const SNAPSHOT_VERSION: u32 = 2;

/// File magic: identifies a CoLT preparation snapshot.
const MAGIC: &[u8; 8] = b"COLTSNAP";

/// Default in-memory cache bound: a few dozen multi-megabyte prepared
/// workloads — comfortably more than any one experiment's working set,
/// small enough that a resident server cannot OOM on stale pairs.
pub const DEFAULT_MEM_CAP: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(true);
static DISK: AtomicBool = AtomicBool::new(false);
static MEM: Mutex<LruMap<Arc<PreparedWorkload>>> = Mutex::new(LruMap::unbounded());
static MEM_CAP_RESOLVED: Once = Once::new();
static STATS: Mutex<CacheStats> = Mutex::new(CacheStats::zero());
/// Snapshot directories whose disk layer failed a store and is disabled
/// for the rest of the process (one loud warning per directory).
static DISK_FAILED: Mutex<BTreeSet<PathBuf>> = Mutex::new(BTreeSet::new());

/// Enables or disables the cache (both layers). `repro
/// --no-snapshot-cache` turns it off for operators who suspect a stale
/// snapshot or want to time cold preparation.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Opts this process into the disk layer. Off by default so library
/// consumers — `cargo test` binaries above all — stay hermetic: they
/// share preparations in memory but never read stale snapshots from
/// (or write multi-megabyte files into) whatever directory they happen
/// to run in. The `repro` binary opts in at startup.
pub fn set_disk_persistence(enabled: bool) {
    DISK.store(enabled, Ordering::SeqCst);
}

/// Whether the disk layer is currently opted in — lets a caller that
/// must flip the flag (the torture harness) restore the prior state
/// instead of leaking `true` into the rest of a test process.
pub fn disk_persistence() -> bool {
    DISK.load(Ordering::SeqCst)
}

/// Whether the cache is consulted at all.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Counters for the throughput report (`prep_cache_hits`,
/// `snapshot_seconds` in `BENCH_sweep.json`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheStats {
    /// Preparations served from the in-memory map.
    pub mem_hits: u64,
    /// Preparations decoded from a disk snapshot.
    pub disk_hits: u64,
    /// Preparations actually built with `Scenario::prepare`.
    pub misses: u64,
    /// Prepared workloads evicted from the in-memory LRU layer
    /// (capacity `COLT_SNAPSHOT_MEM_CAP`). An evicted pair re-prepares
    /// (or re-decodes its disk snapshot) on the next request.
    pub mem_evictions: u64,
    /// Wall-clock seconds spent encoding, writing, reading and decoding
    /// disk snapshots.
    pub snapshot_seconds: f64,
}

impl CacheStats {
    const fn zero() -> Self {
        CacheStats {
            mem_hits: 0,
            disk_hits: 0,
            misses: 0,
            mem_evictions: 0,
            snapshot_seconds: 0.0,
        }
    }

    /// Cache hits of either layer.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

impl Default for CacheStats {
    fn default() -> Self {
        Self::zero()
    }
}

fn bump(f: impl FnOnce(&mut CacheStats)) {
    f(&mut relock(&STATS));
}

/// Drains the counters accumulated since the last drain.
pub fn take_stats() -> CacheStats {
    std::mem::take(&mut *relock(&STATS))
}

/// Resolves the memory layer's LRU capacity once per process:
/// `COLT_SNAPSHOT_MEM_CAP` when set (garbage earns a loud warning and
/// the default; 0 would make every preparation a miss and is clamped to
/// 1, loudly), otherwise [`DEFAULT_MEM_CAP`].
fn resolve_mem_cap() {
    MEM_CAP_RESOLVED.call_once(|| {
        let cap = match std::env::var("COLT_SNAPSHOT_MEM_CAP") {
            Err(std::env::VarError::NotPresent) => DEFAULT_MEM_CAP,
            Err(std::env::VarError::NotUnicode(_)) => {
                eprintln!(
                    "warning: COLT_SNAPSHOT_MEM_CAP is not valid UTF-8; using \
                     the default of {DEFAULT_MEM_CAP} entries"
                );
                DEFAULT_MEM_CAP
            }
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) => {
                    eprintln!(
                        "warning: COLT_SNAPSHOT_MEM_CAP=0 would evict every \
                         preparation immediately; clamping to 1"
                    );
                    1
                }
                Ok(n) => n,
                Err(_) => {
                    eprintln!(
                        "warning: COLT_SNAPSHOT_MEM_CAP={raw:?} is not a \
                         number; using the default of {DEFAULT_MEM_CAP} entries"
                    );
                    DEFAULT_MEM_CAP
                }
            },
        };
        let evicted = relock(&MEM).set_cap(Some(cap));
        if evicted > 0 {
            bump(|s| s.mem_evictions += evicted);
        }
    });
}

/// Overrides the memory layer's LRU capacity (normally decided once by
/// `COLT_SNAPSHOT_MEM_CAP` / [`DEFAULT_MEM_CAP`]). Entries past the new
/// bound are evicted immediately and counted. Capacity 0 is clamped to 1.
pub fn set_mem_capacity(cap: usize) {
    // Claim the one-shot resolution so a later `resolve_mem_cap` cannot
    // overwrite an explicit choice with the env default.
    MEM_CAP_RESOLVED.call_once(|| {});
    let evicted = relock(&MEM).set_cap(Some(cap.max(1)));
    if evicted > 0 {
        bump(|s| s.mem_evictions += evicted);
    }
}

/// Drops every in-memory prepared workload; disk snapshots are
/// untouched. Lets tests observe cold-start and disk-warm behavior in
/// one process.
pub fn clear_memory() {
    relock(&MEM).clear();
}

/// Prepared workloads currently resident in the memory layer.
pub fn mem_len() -> usize {
    relock(&MEM).len()
}

fn relock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The canonical preparation key: every field of the scenario and the
/// benchmark spec that can change the prepared state.
pub fn prep_key(scenario: &Scenario, spec: &BenchmarkSpec) -> String {
    format!("{scenario:?}\u{1}{spec:?}")
}

/// How `get_or_prepare` obtained the workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrepSource {
    /// Served from the in-memory map (or the runner's sweep slot).
    Memory,
    /// Decoded from a disk snapshot.
    Disk,
    /// Built fresh with `Scenario::prepare`.
    Built,
}

/// A prepared workload plus how long this call spent obtaining it.
pub struct Prepared {
    /// The shared workload.
    pub workload: Arc<PreparedWorkload>,
    /// Seconds this call spent building or decoding (0 on a memory hit).
    pub prep_seconds: f64,
    /// Where the workload came from.
    pub source: PrepSource,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Fetches (memory, then disk) or builds the prepared workload for one
/// (scenario, spec) pair, persisting fresh builds to disk.
///
/// # Errors
/// A human-readable description when preparation fails or panics (cache
/// failures are never errors — they fall back to preparing).
pub fn get_or_prepare(
    scenario: &Scenario,
    spec: &BenchmarkSpec,
) -> Result<Prepared, String> {
    let key = prep_key(scenario, spec);
    if enabled() {
        resolve_mem_cap();
        if let Some(w) = relock(&MEM).get(&key).map(Arc::clone) {
            bump(|s| s.mem_hits += 1);
            return Ok(Prepared { workload: w, prep_seconds: 0.0, source: PrepSource::Memory });
        }
        if let Some(dir) = disk_layer() {
            let start = Instant::now();
            if let Some(w) = load_from(&dir, &key, spec) {
                let secs = start.elapsed().as_secs_f64();
                let w = Arc::new(w);
                let evicted = relock(&MEM).insert(key, Arc::clone(&w));
                bump(|s| {
                    s.disk_hits += 1;
                    s.mem_evictions += evicted;
                    s.snapshot_seconds += secs;
                });
                return Ok(Prepared {
                    workload: w,
                    prep_seconds: secs,
                    source: PrepSource::Disk,
                });
            }
        }
    }

    let start = Instant::now();
    let workload = match catch_unwind(AssertUnwindSafe(|| scenario.prepare(spec))) {
        Ok(Ok(w)) => Arc::new(w),
        Ok(Err(e)) => {
            return Err(format!("scenario '{}' failed for {}: {e}", scenario.name, spec.name));
        }
        Err(payload) => {
            return Err(format!(
                "scenario '{}' panicked for {}: {}",
                scenario.name,
                spec.name,
                panic_message(payload)
            ));
        }
    };
    let prep_seconds = start.elapsed().as_secs_f64();
    bump(|s| s.misses += 1);

    if enabled() {
        let evicted = relock(&MEM).insert(key.clone(), Arc::clone(&workload));
        bump(|s| s.mem_evictions += evicted);
        if let Some(dir) = disk_layer() {
            let start = Instant::now();
            let failure = match catch_unwind(AssertUnwindSafe(|| {
                store_to(&dir, &key, &workload)
            })) {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(payload) => Some(format!("panicked: {}", panic_message(payload))),
            };
            if let Some(why) = failure {
                // Never abort the sweep over a snapshot write: degrade
                // to mem-cache-only for this directory, one loud
                // warning, and stop retrying a disk that just failed.
                if note_disk_failure(&dir) {
                    eprintln!(
                        "warning: could not persist preparation snapshot for \
                         '{}'/{} under {} ({why}); the sweep continues with the \
                         memory layer only and snapshot persistence under this \
                         directory is disabled for the rest of the process",
                        scenario.name,
                        spec.name,
                        dir.display()
                    );
                }
            }
            bump(|s| s.snapshot_seconds += start.elapsed().as_secs_f64());
        }
    }
    Ok(Prepared { workload, prep_seconds, source: PrepSource::Built })
}

/// The disk layer as seen by `get_or_prepare`: the snapshot directory
/// when this process opted in via [`set_disk_persistence`], else
/// `None`. The binary's cold/warm disk behavior is exercised by
/// `scripts/verify.sh`, and the store/load functions are unit-tested
/// directly against scratch directories.
fn disk_layer() -> Option<PathBuf> {
    if !DISK.load(Ordering::SeqCst) {
        return None;
    }
    let dir = snapshot_dir()?;
    if disk_dir_disabled(&dir) {
        return None;
    }
    Some(dir)
}

/// Records a store failure under `dir`, disabling its disk layer for
/// the rest of the process. Returns true the first time (the caller
/// prints the one loud warning then; repeats stay quiet).
fn note_disk_failure(dir: &Path) -> bool {
    relock(&DISK_FAILED).insert(dir.to_path_buf())
}

fn disk_dir_disabled(dir: &Path) -> bool {
    relock(&DISK_FAILED).contains(dir)
}

static DIR_WARNED: Once = Once::new();

/// Programmatic snapshot-directory override, taking precedence over
/// `COLT_SNAPSHOT_DIR`. The torture harness points each cycle at its
/// own scratch directory this way — mutating the environment of a
/// multi-threaded process mid-run would race every other reader.
static DIR_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Overrides (or, with `None`, restores) the snapshot directory for
/// this process.
pub fn set_dir_override(dir: Option<PathBuf>) {
    *relock(&DIR_OVERRIDE) = dir;
}

/// The snapshot directory: the programmatic override when set, else
/// `COLT_SNAPSHOT_DIR` when set (a garbage or
/// unusable value earns one loud warning, then disk persistence is
/// skipped — never a silent fallback to the default), otherwise
/// `results/snapshots`. `None` when the directory cannot be created.
fn snapshot_dir() -> Option<PathBuf> {
    if let Some(dir) = relock(&DIR_OVERRIDE).clone() {
        return match std::fs::create_dir_all(&dir) {
            Ok(()) => Some(dir),
            Err(_) => None,
        };
    }
    let dir = match std::env::var("COLT_SNAPSHOT_DIR") {
        Ok(raw) if raw.trim().is_empty() => {
            DIR_WARNED.call_once(|| {
                eprintln!(
                    "warning: COLT_SNAPSHOT_DIR is set but empty; snapshot \
                     persistence disabled (unset it to use results/snapshots)"
                );
            });
            return None;
        }
        Ok(raw) => PathBuf::from(raw),
        Err(std::env::VarError::NotUnicode(_)) => {
            DIR_WARNED.call_once(|| {
                eprintln!(
                    "warning: COLT_SNAPSHOT_DIR is not valid UTF-8; snapshot \
                     persistence disabled (unset it to use results/snapshots)"
                );
            });
            return None;
        }
        Err(std::env::VarError::NotPresent) => PathBuf::from("results/snapshots"),
    };
    match std::fs::create_dir_all(&dir) {
        Ok(()) => Some(dir),
        Err(e) => {
            DIR_WARNED.call_once(|| {
                eprintln!(
                    "warning: snapshot directory {} is unusable ({e}); snapshot \
                     persistence disabled for this run",
                    dir.display()
                );
            });
            None
        }
    }
}

fn snapshot_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{}.snap", fingerprint_of(key)))
}

/// Serializes and atomically writes one preparation snapshot, fsynced
/// so a later crash cannot leave a torn file behind the rename.
pub(crate) fn store_to(
    dir: &Path,
    key: &str,
    workload: &PreparedWorkload,
) -> std::io::Result<()> {
    let mut enc = Enc::new();
    enc.str(key);
    workload.encode_snapshot(&mut enc);
    let body = enc.finish();
    let path = snapshot_path(dir, key);
    let tmp = crate::artifact::unique_tmp(&path);
    let fs = crate::vfs::active();
    let written = (|| {
        use crate::vfs::acct;
        let mut f = acct("snapshot", fs.create(&tmp))?;
        acct("snapshot", f.write_all(MAGIC))?;
        acct("snapshot", f.write_all(&SNAPSHOT_VERSION.to_le_bytes()))?;
        acct("snapshot", f.write_all(&crc32(&body).to_le_bytes()))?;
        acct("snapshot", f.write_all(&body))?;
        acct("snapshot", f.sync_data())?;
        acct("snapshot", fs.rename(&tmp, &path))
    })();
    if written.is_err() {
        if let Err(re) = fs.remove_file(&tmp) {
            let _ = crate::io_faults::account("snapshot", &re);
        }
    }
    written
}

/// Loads one preparation snapshot. `None` on: no file, a stored key
/// that differs from `key` (stale or colliding — silently treated as a
/// miss and later overwritten), or corruption (quarantined loudly).
pub(crate) fn load_from(
    dir: &Path,
    key: &str,
    spec: &BenchmarkSpec,
) -> Option<PreparedWorkload> {
    let path = snapshot_path(dir, key);
    let bytes = match crate::vfs::active().read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            // A read fault is a miss, not corruption: the pair simply
            // re-prepares.
            let _ = crate::io_faults::account("snapshot", &e);
            return None;
        }
    };
    match parse_snapshot(&bytes, key, spec) {
        Ok(found) => found,
        Err(why) => {
            let _ = crate::io_faults::confirm_flip(&path);
            quarantine(&path, &why);
            None
        }
    }
}

fn parse_snapshot(
    bytes: &[u8],
    key: &str,
    spec: &BenchmarkSpec,
) -> Result<Option<PreparedWorkload>, String> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(format!("truncated header ({} bytes)", bytes.len()));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err("bad magic — not a CoLT snapshot".to_string());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot format version {version}; this build speaks {SNAPSHOT_VERSION}"
        ));
    }
    let stored = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let body = &bytes[16..];
    let actual = crc32(body);
    if stored != actual {
        return Err(format!("checksum mismatch (stored {stored:08x}, computed {actual:08x})"));
    }
    let mut dec = Dec::new(body);
    let stored_key = dec.str().map_err(|e| e.to_string())?;
    if stored_key != key {
        // A valid snapshot for some other configuration that fingerprints
        // to the same name — not corruption, just a miss.
        return Ok(None);
    }
    let workload =
        PreparedWorkload::decode_snapshot(&mut dec, spec).map_err(|e| e.to_string())?;
    dec.finish().map_err(|e| e.to_string())?;
    Ok(Some(workload))
}

/// Moves an unusable snapshot to the first free `<file>.corrupt-<n>`
/// sibling — evidence is preserved, nothing corrupt is ever trusted or
/// silently deleted.
fn quarantine(path: &Path, why: &str) {
    let mut n = 1;
    let qpath = loop {
        let candidate = PathBuf::from(format!("{}.corrupt-{n}", path.display()));
        if !candidate.exists() {
            break candidate;
        }
        n += 1;
    };
    match crate::vfs::active().rename(path, &qpath) {
        Ok(()) => eprintln!(
            "warning: unusable preparation snapshot {} ({why}); quarantined to {}, \
             the pair re-prepares",
            path.display(),
            qpath.display()
        ),
        Err(e) => {
            let _ = crate::io_faults::account("snapshot", &e);
            eprintln!(
                "warning: unusable preparation snapshot {} ({why}); quarantine rename \
                 failed too ({e}), the pair re-prepares",
                path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_workloads::spec::benchmark;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("colt-snapcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn prepared_pair() -> (Scenario, BenchmarkSpec, PreparedWorkload) {
        let scenario = Scenario::default_linux().with_seed(0x5AFE_CAFE);
        let spec = benchmark("Povray").unwrap();
        let w = scenario.prepare(&spec).unwrap();
        (scenario, spec, w)
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        store_to(&dir, &key, &w).unwrap();
        let back = load_from(&dir, &key, &spec).expect("snapshot loads");
        assert_eq!(back.scenario_name, w.scenario_name);
        assert_eq!(back.footprint, w.footprint);
        assert_eq!(back.kernel.stats(), w.kernel.stats());
        assert_eq!(
            back.contiguity().average_contiguity(),
            w.contiguity().average_contiguity()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_a_silent_miss_not_corruption() {
        let dir = tmpdir("keymiss");
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        store_to(&dir, &key, &w).unwrap();
        // Forge a file under a different key's name holding this body.
        let other_key = "something else entirely";
        std::fs::rename(snapshot_path(&dir, &key), snapshot_path(&dir, other_key))
            .unwrap();
        assert!(load_from(&dir, other_key, &spec).is_none());
        // The mismatched file is left in place (a miss, not quarantined).
        assert!(snapshot_path(&dir, other_key).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_snapshots_round_trip_and_never_answer_another_policys_key() {
        use colt_os_mem::policy::PolicyKind;
        let dir = tmpdir("policy");
        let spec = benchmark("Povray").unwrap();
        let base = Scenario::default_linux().with_seed(0x5AFE_CAFE);
        let greedy = base.clone().with_policy(PolicyKind::GreedyContig);

        // Every policy keys its own preparation snapshot.
        let mut keys: Vec<String> = PolicyKind::all()
            .iter()
            .map(|&p| prep_key(&base.clone().with_policy(p), &spec))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), PolicyKind::all().len(), "one prep key per policy");

        // A policy-built instance survives the codec with its policy
        // counters (and everything else) intact.
        let w = greedy.prepare(&spec).unwrap();
        let key = prep_key(&greedy, &spec);
        store_to(&dir, &key, &w).unwrap();
        let back = load_from(&dir, &key, &spec).expect("policy snapshot loads");
        assert_eq!(back.scenario_name, w.scenario_name);
        assert_eq!(back.kernel.stats(), w.kernel.stats());
        assert!(back.kernel.stats().policy_decisions > 0, "counters survive");
        assert_eq!(
            back.contiguity().average_contiguity(),
            w.contiguity().average_contiguity()
        );

        // The greedy snapshot filed under the default-policy key is a
        // key mismatch: a silent miss, never served, never quarantined.
        let default_key = prep_key(&base, &spec);
        std::fs::rename(snapshot_path(&dir, &key), snapshot_path(&dir, &default_key))
            .unwrap();
        assert!(load_from(&dir, &default_key, &spec).is_none());
        assert!(snapshot_path(&dir, &default_key).exists(), "miss, not quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_version_bumps_are_quarantined() {
        let dir = tmpdir("corrupt");
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        store_to(&dir, &key, &w).unwrap();
        let path = snapshot_path(&dir, &key);

        // Flip one body byte: checksum fails, file is quarantined.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_from(&dir, &key, &spec).is_none());
        assert!(!path.exists(), "corrupt file must be moved away");
        assert!(PathBuf::from(format!("{}.corrupt-1", path.display())).exists());

        // A version-bumped file (checksum valid) is quarantined too.
        store_to(&dir, &key, &w).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_from(&dir, &key, &spec).is_none());
        assert!(PathBuf::from(format!("{}.corrupt-2", path.display())).exists());

        // Truncation and garbage never parse.
        std::fs::write(&path, b"COLT").unwrap();
        assert!(load_from(&dir, &key, &spec).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_overwrites_atomically() {
        let dir = tmpdir("overwrite");
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        store_to(&dir, &key, &w).unwrap();
        store_to(&dir, &key, &w).unwrap();
        assert!(load_from(&dir, &key, &spec).is_some());
        // No stray temp files left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(strays.is_empty(), "temp files must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failure_leaves_no_tmp_and_disables_the_directory_once() {
        // A regular file posing as the snapshot directory: every
        // File::create under it fails with NotADirectory — even for
        // root, unlike permission bits.
        let parent = tmpdir("storefail");
        let dir = parent.join("not-a-dir");
        std::fs::write(&dir, b"plain file").unwrap();
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        assert!(store_to(&dir, &key, &w).is_err(), "store into a file must fail");
        // The failed store is an io::Result, never a panic, and the
        // degrade path marks the directory so disk_layer() skips it.
        assert!(note_disk_failure(&dir), "first failure earns the warning");
        assert!(!note_disk_failure(&dir), "repeat failures stay quiet");
        assert!(disk_dir_disabled(&dir));
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn mem_cache_evicts_lru_and_counts_it() {
        // Exercise the LRU bound through a private map, not the global
        // one: shrinking the process-wide cache here would race the
        // warm-path expectations of concurrently running tests.
        let mut map: LruMap<u32> = LruMap::bounded(2);
        assert_eq!(map.insert("a".into(), 1), 0);
        assert_eq!(map.insert("b".into(), 2), 0);
        assert_eq!(map.insert("c".into(), 3), 1, "third insert evicts the LRU entry");
        assert!(map.peek("a").is_none());
        // The stats struct carries evictions alongside hits and misses.
        let stats = CacheStats { mem_evictions: 1, ..CacheStats::zero() };
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.mem_evictions, 1);
    }

    #[test]
    fn prep_keys_separate_scenarios_and_benchmarks() {
        let a = Scenario::default_linux();
        let b = Scenario::no_ths();
        let gob = benchmark("Gobmk").unwrap();
        let bzip = benchmark("Bzip2").unwrap();
        assert_ne!(prep_key(&a, &gob), prep_key(&b, &gob));
        assert_ne!(prep_key(&a, &gob), prep_key(&a, &bzip));
        assert_ne!(
            prep_key(&a, &gob),
            prep_key(&a.clone().with_seed(1), &gob),
            "the seed is part of the key"
        );
        assert_ne!(
            prep_key(&a, &gob),
            prep_key(&a.clone().with_faults(Default::default()), &gob),
            "fault injection is part of the key"
        );
    }

    /// Codec torture for the `COLTSNAP` format: every byte of the file
    /// is covered (magic and version by direct comparison, the body by
    /// the CRC, the stored CRC by the mismatch it creates), so a bit
    /// flip anywhere must make `parse_snapshot` return an error — never
    /// panic, never hand back a workload. Every header bit is flipped
    /// exhaustively; body bits at a prime stride (the body is large and
    /// each parse costs a full CRC pass).
    #[test]
    fn snapshot_parse_never_accepts_a_flipped_bit() {
        let dir = tmpdir("flip-torture");
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        store_to(&dir, &key, &w).unwrap();
        let bytes = std::fs::read(snapshot_path(&dir, &key)).unwrap();
        let header_bits = 16 * 8;
        // Bound the body samples: each parse pays a full CRC pass over
        // the (multi-megabyte) body, so a fine stride is quadratic.
        let stride = ((bytes.len() * 8 - header_bits) / 150).max(1) | 1;
        let flips = (0..header_bits)
            .chain((header_bits..bytes.len() * 8).step_by(stride))
            .chain(bytes.len() * 8 - 64..bytes.len() * 8);
        for bit in flips {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                parse_snapshot(&corrupt, &key, &spec).is_err(),
                "bit {bit} flipped without the parser noticing"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncation at every header prefix (exhaustive) and at strided
    /// body prefixes is rejected — a torn snapshot never loads.
    #[test]
    fn snapshot_parse_rejects_every_truncation() {
        let dir = tmpdir("trunc-torture");
        let (scenario, spec, w) = prepared_pair();
        let key = prep_key(&scenario, &spec);
        store_to(&dir, &key, &w).unwrap();
        let bytes = std::fs::read(snapshot_path(&dir, &key)).unwrap();
        let stride = ((bytes.len() - 64) / 100).max(1) | 1;
        let lens = (0..64.min(bytes.len()))
            .chain((64..bytes.len()).step_by(stride))
            .chain(bytes.len().saturating_sub(8)..bytes.len());
        for len in lens {
            assert!(
                parse_snapshot(&bytes[..len], &key, &spec).is_err(),
                "a {len}-byte prefix parsed as a whole snapshot"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
