//! Multiprogramming extension: two benchmarks share one machine (one
//! kernel, one TLB hierarchy, one cache hierarchy), scheduled
//! round-robin with full translation flushes at context switches.
//!
//! This is the setting the paper's real-system §6 measurements implicitly
//! include (their machine ran background processes) and the one its §8
//! outlook cares about; here it stresses CoLT two ways at once: the
//! *allocation* interleaving of two active processes shortens contiguity
//! runs, and the *flushes* keep discarding warmed state.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepTask};
use crate::sim::{self, SimConfig};
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

/// The benchmark pairs simulated together.
pub const PAIRS: [(&str, &str); 3] =
    [("Mcf", "Gobmk"), ("CactusADM", "Omnetpp"), ("Bzip2", "Xalancbmk")];

/// Results for one pair.
#[derive(Clone, Debug)]
pub struct MultiprogRow {
    /// "A + B" label.
    pub pair: String,
    /// Combined baseline walks.
    pub baseline_walks: u64,
    /// Combined CoLT-All walks.
    pub colt_walks: u64,
    /// % of combined baseline walks eliminated.
    pub elim: f64,
}

impl crate::journal::JournalPayload for MultiprogRow {
    fn encode(&self) -> String {
        crate::journal::Enc::new("mprog1")
            .s(&self.pair)
            .u(self.baseline_walks)
            .u(self.colt_walks)
            .f(self.elim)
            .done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = crate::journal::Dec::new(s, "mprog1")?;
        let row = MultiprogRow {
            pair: d.s()?,
            baseline_walks: d.u()?,
            colt_walks: d.u()?,
            elim: d.f()?,
        };
        d.exhausted().then_some(row)
    }
}

/// Runs the multiprogramming study.
pub fn run(opts: &ExperimentOptions) -> (Vec<MultiprogRow>, ExperimentOutput) {
    let quantum = 10_000;
    let policy = opts.policy;
    // Each pair's preparation (prepare_many) is itself per-cell state,
    // so these run as self-contained tasks rather than shared-prep cells.
    let tasks: Vec<SweepTask<MultiprogRow>> = PAIRS
        .iter()
        .map(|&(a, b)| {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(TlbConfig::baseline()).with_accesses(opts.accesses)
            };
            let refs = 2 * (cfg.warmup + cfg.accesses);
            SweepTask::new(format!("multiprog/{a}+{b}"), refs, move || {
                let scenario = Scenario::default_linux().with_policy(policy);
                let specs = [
                    benchmark(a).expect("Table-1 benchmark"),
                    benchmark(b).expect("Table-1 benchmark"),
                ];
                let multi = scenario
                    .prepare_many(&specs)
                    .unwrap_or_else(|e| panic!("prepare_many({a}, {b}): {e}"));
                let run_one = |tlb: TlbConfig| {
                    sim::run_multiprogrammed(
                        &multi,
                        &SimConfig { tlb, ..cfg },
                        quantum,
                    )
                };
                let base = run_one(TlbConfig::baseline());
                let colt = run_one(TlbConfig::colt_all());
                MultiprogRow {
                    pair: format!("{a} + {b}"),
                    baseline_walks: base.tlb.l2_misses,
                    colt_walks: colt.tlb.l2_misses,
                    elim: pct_misses_eliminated(base.tlb.l2_misses, colt.tlb.l2_misses),
                }
            })
        })
        .collect();
    let rows = runner::expect_all(runner::run_tasks_sweep(tasks, &opts.sweep()));

    let mut table = Table::new(
        "Multiprogramming (extension): two benchmarks sharing one machine, 10k-access quanta",
        &["pair", "baseline walks", "CoLT-All walks", "L2 elim %"],
    );
    for r in &rows {
        table.add_row(vec![
            r.pair.clone(),
            r.baseline_walks.to_string(),
            r.colt_walks.to_string(),
            f1(r.elim),
        ]);
    }
    (rows, ExperimentOutput { id: "multiprog", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colt_survives_multiprogramming() {
        let scenario = Scenario::default_linux();
        let specs = [benchmark("Gobmk").unwrap(), benchmark("Povray").unwrap()];
        let multi = scenario.prepare_many(&specs).unwrap();
        let run_one = |tlb: TlbConfig| {
            sim::run_multiprogrammed(
                &multi,
                &SimConfig::new(tlb).with_accesses(30_000),
                2_000,
            )
        };
        let base = run_one(TlbConfig::baseline());
        let colt = run_one(TlbConfig::colt_all());
        assert_eq!(base.tlb.accesses, 30_000);
        assert_eq!(base.walker.faults, 0);
        assert!(
            colt.tlb.l2_misses < base.tlb.l2_misses,
            "CoLT must still win multiprogrammed ({} vs {})",
            colt.tlb.l2_misses,
            base.tlb.l2_misses
        );
    }
}
