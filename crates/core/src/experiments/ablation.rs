//! Design-choice ablations.
//!
//! * **fill-to-L2** (§7.1.3): CoLT-FA/CoLT-All also filling the L2 TLB
//!   when a coalesced entry goes to the superpage TLB — the paper
//!   credits this policy with 10–20% additional miss elimination.
//! * **FA size**: the paper conservatively halves the superpage TLB to
//!   8 entries for CoLT-FA/All (§4.2.4); how much would 16 entries buy?
//! * **CoLT-All threshold**: where runs are routed between the
//!   set-associative TLBs and the superpage TLB (§4.3.1).
//! * **FA resident merging** (§4.2.1 step 5): merging freshly coalesced
//!   entries with residents.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::SimConfig;
use colt_tlb::config::{ColtMode, TlbConfig};
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// One ablation variant's average eliminations across benchmarks.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Average % of baseline L1 misses eliminated.
    pub l1_elim: f64,
    /// Average % of baseline L2 misses eliminated.
    pub l2_elim: f64,
}

/// Fans one ablation block out across the sweep runner: every selected
/// benchmark × (baseline + each variant) is one cell; `make_cfg` maps a
/// TLB config onto the block's simulation settings (e.g. shootdown
/// churn). Returns per-variant averages of % misses eliminated.
fn average_elimination_with(
    opts: &ExperimentOptions,
    scenario: &Scenario,
    make_cfg: impl Fn(TlbConfig) -> SimConfig,
    variants: &[(String, TlbConfig)],
) -> Vec<AblationRow> {
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (i, tlb) in std::iter::once(TlbConfig::baseline())
            .chain(variants.iter().map(|(_, t)| *t))
            .enumerate()
        {
            cells.push(SweepCell::sim(
                format!("ablation/{}/v{i}", spec.name),
                scenario,
                spec,
                make_cfg(tlb),
            ));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let mut sums = vec![(0.0f64, 0.0f64); variants.len()];
    for chunk in results.chunks_exact(variants.len() + 1) {
        let baseline = &chunk[0];
        for (i, r) in chunk[1..].iter().enumerate() {
            sums[i].0 += pct_misses_eliminated(baseline.tlb.l1_misses, r.tlb.l1_misses);
            sums[i].1 += pct_misses_eliminated(baseline.tlb.l2_misses, r.tlb.l2_misses);
        }
    }
    let n = specs.len().max(1) as f64;
    variants
        .iter()
        .zip(sums)
        .map(|((label, _), (l1, l2))| AblationRow {
            label: label.clone(),
            l1_elim: l1 / n,
            l2_elim: l2 / n,
        })
        .collect()
}

fn average_elimination(
    opts: &ExperimentOptions,
    variants: &[(String, TlbConfig)],
) -> Vec<AblationRow> {
    average_elimination_with(
        opts,
        &opts.scenario(Scenario::default_linux()),
        |tlb| SimConfig {
            pattern_seed: opts.seed,
            ..SimConfig::new(tlb).with_accesses(opts.accesses)
        },
        variants,
    )
}

/// §7.1.3: the fill-to-L2 policy for CoLT-FA and CoLT-All.
pub fn l2_fill_policy(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let variants = vec![
        ("CoLT-FA, fill L2 (paper)".to_string(), TlbConfig::colt_fa()),
        ("CoLT-FA, no L2 fill".to_string(), TlbConfig { fill_l2_on_fa: false, ..TlbConfig::colt_fa() }),
        ("CoLT-All, fill L2 (paper)".to_string(), TlbConfig::colt_all()),
        ("CoLT-All, no L2 fill".to_string(), TlbConfig { fill_l2_on_fa: false, ..TlbConfig::colt_all() }),
    ];
    average_elimination(opts, &variants)
}

/// §4.2.4: the superpage-TLB size halving.
pub fn fa_size(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let variants = vec![
        ("CoLT-FA, 8-entry SP (paper)".to_string(), TlbConfig::colt_fa()),
        ("CoLT-FA, 16-entry SP".to_string(), TlbConfig { sp_entries: 16, ..TlbConfig::colt_fa() }),
        ("CoLT-All, 8-entry SP (paper)".to_string(), TlbConfig::colt_all()),
        ("CoLT-All, 16-entry SP".to_string(), TlbConfig { sp_entries: 16, ..TlbConfig::colt_all() }),
    ];
    average_elimination(opts, &variants)
}

/// §4.3.1: CoLT-All's routing threshold.
pub fn all_threshold(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let variants: Vec<(String, TlbConfig)> = [1u64, 2, 4, 8]
        .iter()
        .map(|&t| {
            (
                format!("CoLT-All, threshold {t}"),
                TlbConfig { all_threshold: t, ..TlbConfig::colt_all() },
            )
        })
        .collect();
    average_elimination(opts, &variants)
}

/// §4.2.1 step 5: resident-entry merging in the superpage TLB.
pub fn fa_merge(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let variants = vec![
        ("CoLT-FA, resident merge (paper)".to_string(), TlbConfig::colt_fa()),
        (
            "CoLT-FA, no resident merge".to_string(),
            TlbConfig { fa_resident_merge: false, ..TlbConfig::colt_fa() },
        ),
    ];
    average_elimination(opts, &variants)
}

/// The §4.1.5/§4.2.3 future-work refinements, each measured against the
/// stock CoLT-All design in the regime it targets:
///
/// * coalescing-aware replacement — plain workload;
/// * graceful invalidation — under TLB-shootdown churn;
/// * attribute-tolerant coalescing — with a share of pages dirtied.
pub fn future_work(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let mut rows = Vec::new();

    // (a) Replacement policy, plain conditions.
    rows.extend(average_elimination(
        opts,
        &[
            ("CoLT-All, LRU (paper)".to_string(), TlbConfig::colt_all()),
            (
                "CoLT-All, coalesced-first replacement".to_string(),
                TlbConfig {
                    replacement: colt_tlb::replacement::ReplacementPolicy::SmallestCoalescedFirst,
                    ..TlbConfig::colt_all()
                },
            ),
        ],
    ));

    // (b) Graceful invalidation, under shootdown churn.
    rows.extend(average_elimination_with(
        opts,
        &opts.scenario(Scenario::default_linux()),
        |tlb| SimConfig {
            pattern_seed: opts.seed,
            ..SimConfig::new(tlb).with_accesses(opts.accesses).with_invalidations(64)
        },
        &[
            (
                "CoLT-All + shootdowns, flush whole entries (paper)".to_string(),
                TlbConfig::colt_all(),
            ),
            (
                "CoLT-All + shootdowns, graceful uncoalescing".to_string(),
                TlbConfig { graceful_invalidation: true, ..TlbConfig::colt_all() },
            ),
        ],
    ));

    // (c) Attribute tolerance, with dirty pages breaking runs.
    rows.extend(average_elimination_with(
        opts,
        &opts.scenario(Scenario::default_linux().with_dirty_fraction(0.3)),
        |tlb| SimConfig {
            pattern_seed: opts.seed,
            ..SimConfig::new(tlb).with_accesses(opts.accesses)
        },
        &[
            (
                "CoLT-All + 30% dirty, strict attributes (paper)".to_string(),
                TlbConfig::colt_all(),
            ),
            (
                "CoLT-All + 30% dirty, DIRTY/ACCESSED tolerated".to_string(),
                TlbConfig {
                    coalesce_ignore_flags: colt_os_mem::page_table::PteFlags::DIRTY
                        .with(colt_os_mem::page_table::PteFlags::ACCESSED),
                    ..TlbConfig::colt_all()
                },
            ),
        ],
    ));
    rows
}

/// Runs all ablations and renders them.
pub fn run(opts: &ExperimentOptions) -> (Vec<(String, Vec<AblationRow>)>, ExperimentOutput) {
    let groups = vec![
        ("Fill-to-L2 policy (sec 7.1.3)".to_string(), l2_fill_policy(opts)),
        ("Superpage-TLB size (sec 4.2.4)".to_string(), fa_size(opts)),
        ("CoLT-All threshold (sec 4.3.1)".to_string(), all_threshold(opts)),
        ("FA resident merging (sec 4.2.1)".to_string(), fa_merge(opts)),
        ("Future work (sec 4.1.5 / 4.2.3)".to_string(), future_work(opts)),
    ];
    let mut tables = Vec::new();
    for (title, rows) in &groups {
        let mut table = Table::new(
            format!("Ablation: {title}"),
            &["Variant", "avg L1 elim %", "avg L2 elim %"],
        );
        for r in rows {
            table.add_row(vec![r.label.clone(), f1(r.l1_elim), f1(r.l2_elim)]);
        }
        tables.push(table);
    }
    (groups, ExperimentOutput { id: "ablation", tables })
}

/// Mode sanity helper used by tests and docs.
pub fn paper_modes() -> [ColtMode; 3] {
    [ColtMode::ColtSa, ColtMode::ColtFa, ColtMode::ColtAll]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_fill_policy_helps_colt_fa() {
        // §7.1.3 claims 10-15% additional elimination from the policy.
        let opts = ExperimentOptions::quick().with_benchmarks(&["Astar", "Povray"]);
        let rows = l2_fill_policy(&opts);
        let with = rows.iter().find(|r| r.label.contains("FA, fill")).unwrap();
        let without = rows.iter().find(|r| r.label.contains("FA, no")).unwrap();
        assert!(
            with.l2_elim >= without.l2_elim,
            "filling L2 ({:.1}%) must not hurt vs not filling ({:.1}%)",
            with.l2_elim,
            without.l2_elim
        );
    }

    #[test]
    fn bigger_fa_tlb_does_not_hurt() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Mummer"]);
        let rows = fa_size(&opts);
        let small = rows.iter().find(|r| r.label.contains("FA, 8-entry")).unwrap();
        let big = rows.iter().find(|r| r.label.contains("FA, 16-entry")).unwrap();
        assert!(big.l2_elim + 8.0 >= small.l2_elim);
    }

    #[test]
    fn run_renders_all_five_groups() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Gobmk"]);
        let (groups, out) = run(&opts);
        assert_eq!(groups.len(), 5);
        let text = out.render();
        assert!(text.contains("Fill-to-L2"));
        assert!(text.contains("threshold"));
        assert!(text.contains("Future work"));
    }

    #[test]
    fn attribute_tolerance_recovers_dirty_contiguity() {
        // §5.1.1: "contiguity would be even higher if this constraint
        // were relaxed" — with 30% of pages dirtied, tolerating DIRTY in
        // the coalescing comparison must recover eliminations.
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM"]);
        let rows = future_work(&opts);
        let strict = rows.iter().find(|r| r.label.contains("strict attributes")).unwrap();
        let tolerant = rows.iter().find(|r| r.label.contains("tolerated")).unwrap();
        assert!(
            tolerant.l2_elim > strict.l2_elim,
            "tolerant ({:.1}%) must beat strict ({:.1}%) when pages are dirty",
            tolerant.l2_elim,
            strict.l2_elim
        );
    }
}
