//! `repro torture` — crash-consistency torture for the durability
//! substrate (`results/BENCH_torture.json`).
//!
//! The harness sweeps seeded storage-fault schedules × simulated
//! power-cut points over the full durable stack at once: the pressure
//! sweep journaling through [`crate::journal`], preparation snapshots
//! through [`crate::snapshot_cache`], the `BENCH_pressure.json`
//! artifact through [`crate::artifact`], and a serve-cache persist leg
//! through [`crate::serve`]'s entry codec. Every cycle:
//!
//! 1. **Doomed run** — a [`FaultyVfs`](crate::vfs::FaultyVfs) with the
//!    cycle's fault plan armed and a dead-disk point `k` fsyncs in is
//!    installed; the pressure sweep runs to completion under ENOSPC,
//!    EIO, short writes, failed and lying fsyncs, dropped renames, and
//!    read-back bit flips, then the artifact and serve-cache writes
//!    land (or degrade) on the dying disk.
//! 2. **Power cut** — [`power_cut`](crate::vfs::FaultyVfs::power_cut)
//!    reconciles the disk to its durable contents: unsynced renames are
//!    undone (clobbered destinations restored), lying-fsync bytes
//!    truncated away.
//! 3. **Faulted audit** — the journal and serve cache re-open *cold,
//!    still under faults*, exercising the read-side detection paths
//!    (CRC quarantine, checksum verdicts, flip confirmation).
//! 4. **Verdicts** — the seam is uninstalled and five gates are
//!    checked with evidence: zero panics; no corrupt bytes ever
//!    accepted (every detected corruption quarantined, no pending
//!    undetected flips, no torn `BENCH_*` or permanent tmp litter);
//!    `--resume` byte-identity against an unfaulted reference run; warm
//!    serve-cache restart identity (every surviving entry
//!    byte-identical to what was persisted); and an exact
//!    faults-injected == faults-accounted ledger.
//!
//! Everything is deterministic under `--io-faults seed=S`: the same
//! schedule injects the same faults at the same decision points.

use crate::artifact;
use crate::experiments::{pressure, ExperimentOptions};
use crate::io_faults::{self, IoFaultCounts, LedgerSnapshot};
use crate::journal::Journal;
use crate::snapshot_cache;
use crate::vfs::{self, FaultyVfs};
use colt_os_mem::faults::FaultConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Torture parameters (one flag each; see `repro torture --help`).
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Distinct fault schedules (seeds) to sweep.
    pub seeds: u64,
    /// Base of the seed sweep: cycle `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Simulated power-cut points per seed (the disk dies after the
    /// `2 + 5*j`-th fsync attempt for cut index `j`).
    pub cuts: u64,
    /// Per-decision fault probability of the injected plan.
    pub rate: f64,
    /// Fault window (0 = always armed), as in `--faults`.
    pub window: u64,
    /// Access budget per simulated cell (small: the payload sweep runs
    /// twice per cycle).
    pub accesses: u64,
    /// Benchmark for the payload pressure sweep.
    pub bench: String,
    /// Artifact path.
    pub out: PathBuf,
    /// Suppress per-cycle progress lines.
    pub quiet: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        Self {
            seeds: 3,
            base_seed: 0xC017,
            cuts: 2,
            rate: 0.25,
            window: 0,
            accesses: 2_000,
            bench: "Gobmk".to_string(),
            out: PathBuf::from("results/BENCH_torture.json"),
            quiet: false,
        }
    }
}

/// One torture verdict: a name, a pass/fail, and the evidence line
/// that explains the call either way.
struct Verdict {
    name: &'static str,
    pass: bool,
    evidence: String,
}

/// Everything a single seed × cut cycle observed.
#[derive(Default)]
struct CycleOutcome {
    panicked: bool,
    injected: IoFaultCounts,
    ledger: LedgerSnapshot,
    renames_dropped: u64,
    /// Keys whose serve-cache persist returned Ok before the cut.
    persisted_keys: Vec<String>,
    /// Entries the clean warm reload produced.
    warm_entries: Vec<(String, String)>,
    warm_quarantined: u64,
    tmp_swept: u64,
    tmp_remaining: u64,
    quarantined_files: u64,
    /// `Some(json)` when `BENCH_pressure.json` survived the cut intact.
    bench_artifact: Option<String>,
    bench_artifact_quarantined: bool,
    resume_json: String,
}

/// The payload entries the serve-cache leg persists each cycle. Fixed
/// and deterministic so byte-identity is checkable after the cut.
fn cache_payload() -> Vec<(String, String)> {
    (0..4)
        .map(|i| {
            (
                format!("torture-key-{i}"),
                format!(
                    "{{\"cell\": {i}, \"payload\": \"{}\"}}",
                    "colt".repeat(i + 1)
                ),
            )
        })
        .collect()
}

/// The experiment options both the reference and every cycle use. One
/// benchmark, one core, one worker: the fault stream stays aligned with
/// the schedule and the sweep itself is deterministic either way.
fn payload_opts(cfg: &TortureConfig) -> ExperimentOptions {
    ExperimentOptions {
        accesses: cfg.accesses.max(1),
        benchmarks: Some(vec![cfg.bench.clone()]),
        jobs: 1,
        cores: 1,
        retries: 1,
        ..ExperimentOptions::default()
    }
}

/// The deterministic pressure artifact for a finished report.
fn payload_json(report: &pressure::PressureReport) -> String {
    artifact::pressure_json(report, FaultConfig::default(), 1)
}

/// Runs one doomed + audited + recovered cycle under `plan`, entirely
/// inside `cyc`.
fn run_cycle(
    cfg: &TortureConfig,
    cyc: &Path,
    plan: FaultConfig,
    cut_after: u64,
) -> CycleOutcome {
    let mut out = CycleOutcome::default();
    let journal_dir = cyc.join("journal");
    let cache_dir = cyc.join("cache");
    let bench_path = cyc.join("BENCH_pressure.json");
    let _ = std::fs::create_dir_all(&cache_dir);

    // Phase 1: the doomed run, everything through the faulty seam.
    io_faults::reset_ledger();
    snapshot_cache::set_dir_override(Some(cyc.join("snapshots")));
    snapshot_cache::clear_memory();
    let faulty = FaultyVfs::new(plan).cut_after_syncs(cut_after);
    vfs::install(Arc::new(faulty.clone()));
    let opts = payload_opts(cfg);
    let doomed = catch_unwind(AssertUnwindSafe(|| {
        let mut opts = opts.clone();
        // A journal-open failure is a degraded (journal-less) run, not
        // a dead one — exactly what `repro` does.
        if let Ok(j) =
            Journal::open(&journal_dir, "pressure", opts.fingerprint("pressure"), false)
        {
            opts.journal = Some(Arc::new(j));
        }
        let (report, _) = pressure::run(&opts);
        let _ = artifact::atomic_write_json(&bench_path, &payload_json(&report));
        let mut persisted = Vec::new();
        for (key, bytes) in cache_payload() {
            if crate::serve::persist_cache_entry(&cache_dir, &key, &bytes).is_ok() {
                persisted.push(key);
            }
        }
        persisted
    }));
    match doomed {
        Ok(persisted) => out.persisted_keys = persisted,
        Err(_) => out.panicked = true,
    }

    // Phase 2: the power cut. The disk is reconciled to durable bytes
    // and revived (still faulty) for the audit.
    let _ = faulty.power_cut();

    // Phase 3: faulted audit — cold re-opens exercise the read-side
    // detection paths (CRC quarantine, checksum verdicts, flip
    // confirmation) while injection is still live.
    let audit = catch_unwind(AssertUnwindSafe(|| {
        let _ = Journal::open(
            &journal_dir,
            "pressure",
            opts.fingerprint("pressure"),
            true,
        );
        let _ = crate::serve::load_cache_entries(&cache_dir, true);
    }));
    out.panicked |= audit.is_err();

    // The ledger is judged against what THIS cycle's seam injected.
    out.injected = faulty.counts();
    out.ledger = io_faults::ledger();
    out.renames_dropped = faulty.renames_dropped();
    vfs::reset();

    // Phase 4 (clean disk from here): startup hygiene — litter swept,
    // quarantines counted as detection evidence.
    out.tmp_swept = artifact::sweep_tmp_litter(cyc).len() as u64;
    out.tmp_remaining = artifact::find_tmp_litter(cyc).len() as u64;
    out.quarantined_files = artifact::find_quarantined(cyc).len() as u64;

    // Warm serve-cache reload: whatever survived must be byte-exact.
    let (entries, q) = crate::serve::load_cache_entries(&cache_dir, true);
    out.warm_entries = entries;
    out.warm_quarantined = q;

    // A surviving BENCH artifact must be whole; a torn one must have
    // been quarantined, never left in place.
    match artifact::quarantine_if_corrupt(&bench_path) {
        Ok(Some(_)) => out.bench_artifact_quarantined = true,
        Ok(None) => {
            out.bench_artifact = std::fs::read_to_string(&bench_path).ok();
        }
        Err(_) => {}
    }

    // Phase 5: recovery — `--resume` semantics on a healthy disk must
    // reproduce the unfaulted reference byte-for-byte.
    snapshot_cache::clear_memory();
    let mut rec_opts = payload_opts(cfg);
    if let Ok(j) = Journal::open(
        &journal_dir,
        "pressure",
        rec_opts.fingerprint("pressure"),
        true,
    ) {
        rec_opts.journal = Some(Arc::new(j));
    }
    let (report, _) = pressure::run(&rec_opts);
    out.resume_json = payload_json(&report);
    out
}

/// Folds every cycle into the five gated verdicts.
fn judge(cycles: &[(String, CycleOutcome)], ref_json: &str) -> Vec<Verdict> {
    let payload: std::collections::BTreeMap<String, String> =
        cache_payload().into_iter().collect();

    let panics: Vec<&str> =
        cycles.iter().filter(|(_, c)| c.panicked).map(|(l, _)| l.as_str()).collect();

    // No corrupt bytes accepted: no undetected (pending) flips, no torn
    // BENCH artifact in place, no permanent tmp litter after the sweep.
    let mut corrupt_bad = Vec::new();
    let (mut flips_detected, mut quarantined, mut swept) = (0, 0, 0);
    for (label, c) in cycles {
        flips_detected += c.ledger.flips_detected;
        quarantined += c.quarantined_files + c.warm_quarantined;
        swept += c.tmp_swept;
        if c.ledger.flips_pending > 0 {
            corrupt_bad.push(format!("{label}: {} undetected flip(s)", c.ledger.flips_pending));
        }
        if c.tmp_remaining > 0 {
            corrupt_bad.push(format!("{label}: {} tmp file(s) survived the sweep", c.tmp_remaining));
        }
        if let Some(json) = &c.bench_artifact {
            if json != ref_json {
                corrupt_bad.push(format!("{label}: surviving BENCH_pressure.json is not the reference"));
            }
        }
    }

    let resume_bad: Vec<&str> = cycles
        .iter()
        .filter(|(_, c)| c.resume_json != ref_json)
        .map(|(l, _)| l.as_str())
        .collect();

    let mut warm_bad = Vec::new();
    let (mut warm_loaded, mut warm_persisted) = (0usize, 0usize);
    for (label, c) in cycles {
        warm_loaded += c.warm_entries.len();
        warm_persisted += c.persisted_keys.len();
        for (key, bytes) in &c.warm_entries {
            if payload.get(key) != Some(bytes) {
                warm_bad.push(format!("{label}: entry '{key}' reloaded with different bytes"));
            }
        }
    }

    let mut ledger_bad = Vec::new();
    let (mut injected_total, mut accounted_total) = (0, 0);
    for (label, c) in cycles {
        injected_total += c.injected.total();
        accounted_total += c.ledger.accounted.errors();
        for (kind, injected, accounted) in c.injected.rows(&c.ledger.accounted) {
            if injected != accounted {
                ledger_bad.push(format!(
                    "{label}: {kind} injected {injected} != accounted {accounted}"
                ));
            }
        }
        if c.injected.bit_flips != c.ledger.flips_detected + c.ledger.flips_pending {
            ledger_bad.push(format!(
                "{label}: {} flip(s) injected, {} recorded",
                c.injected.bit_flips,
                c.ledger.flips_detected + c.ledger.flips_pending
            ));
        }
    }

    vec![
        Verdict {
            name: "zero_panics",
            pass: panics.is_empty(),
            evidence: if panics.is_empty() {
                format!("{} doomed + audit cycle(s), none panicked", cycles.len())
            } else {
                format!("panicked in: {}", panics.join(", "))
            },
        },
        Verdict {
            name: "no_corrupt_accepted",
            pass: corrupt_bad.is_empty(),
            evidence: if corrupt_bad.is_empty() {
                format!(
                    "{flips_detected} flip(s) detected, {quarantined} corrupt file(s) \
                     quarantined, {swept} tmp file(s) swept, 0 undetected"
                )
            } else {
                corrupt_bad.join("; ")
            },
        },
        Verdict {
            name: "resume_identity",
            pass: resume_bad.is_empty(),
            evidence: if resume_bad.is_empty() {
                format!(
                    "all {} post-cut --resume runs byte-identical to the unfaulted \
                     reference ({} bytes)",
                    cycles.len(),
                    ref_json.len()
                )
            } else {
                format!("diverged in: {}", resume_bad.join(", "))
            },
        },
        Verdict {
            name: "warm_identity",
            pass: warm_bad.is_empty(),
            evidence: if warm_bad.is_empty() {
                format!(
                    "{warm_loaded} of {warm_persisted} persisted cache entries survived \
                     the cuts, every one byte-identical"
                )
            } else {
                warm_bad.join("; ")
            },
        },
        Verdict {
            name: "ledger_identity",
            pass: ledger_bad.is_empty(),
            evidence: if ledger_bad.is_empty() {
                format!(
                    "{injected_total} fault(s) injected; every error kind matches its \
                     accounted count exactly ({accounted_total} error(s) accounted)"
                )
            } else {
                ledger_bad.join("; ")
            },
        },
    ]
}

/// Renders the artifact payload.
fn torture_json(
    cfg: &TortureConfig,
    cycles: &[(String, CycleOutcome)],
    verdicts: &[Verdict],
    wall_seconds: f64,
) -> String {
    let injected: u64 = cycles.iter().map(|(_, c)| c.injected.total()).sum();
    let accounted: u64 = cycles.iter().map(|(_, c)| c.ledger.accounted.errors()).sum();
    let flips: u64 = cycles.iter().map(|(_, c)| c.ledger.flips_detected).sum();
    let dropped: u64 = cycles.iter().map(|(_, c)| c.renames_dropped).sum();
    let swept: u64 = cycles.iter().map(|(_, c)| c.tmp_swept).sum();
    let quarantined: u64 =
        cycles.iter().map(|(_, c)| c.quarantined_files + c.warm_quarantined).sum();
    let mut out = String::from("{\n  \"schema\": \"colt-torture/v1\",\n");
    out.push_str(&format!(
        "  \"seeds\": {},\n  \"base_seed\": {},\n  \"cuts\": {},\n  \
         \"rate\": {},\n  \"window\": {},\n  \"accesses\": {},\n  \
         \"bench\": \"{}\",\n  \"cycles\": {},\n  \"wall_seconds\": {:.3},\n",
        cfg.seeds,
        cfg.base_seed,
        cfg.cuts,
        cfg.rate,
        cfg.window,
        cfg.accesses,
        artifact::json_escape(&cfg.bench),
        cycles.len(),
        wall_seconds
    ));
    out.push_str(&format!(
        "  \"io_faults_injected\": {injected},\n  \"io_faults_accounted\": {accounted},\n  \
         \"bit_flips_detected\": {flips},\n  \"renames_dropped\": {dropped},\n  \
         \"tmp_files_swept\": {swept},\n  \"files_quarantined\": {quarantined},\n"
    ));
    let mut all_ok = true;
    for v in verdicts {
        all_ok &= v.pass;
        out.push_str(&format!(
            "  \"{}\": {},\n  \"{}_evidence\": \"{}\",\n",
            v.name,
            v.pass,
            v.name,
            artifact::json_escape(&v.evidence)
        ));
    }
    out.push_str(&format!("  \"all_ok\": {all_ok}\n}}"));
    out
}

/// Runs the torture sweep end to end and writes the artifact. Returns
/// the payload plus whether every verdict passed.
///
/// # Errors
/// Infrastructure failures (scratch dir, the reference run, the
/// artifact write) — distinct from a *failed verdict*, which still
/// produces the artifact and `Ok((_, false))`.
pub fn run(cfg: &TortureConfig) -> Result<(String, bool), String> {
    let scratch =
        std::env::temp_dir().join(format!("colt-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .map_err(|e| format!("create {}: {e}", scratch.display()))?;
    // Snapshots must hit disk for the snapshot leg to be tortured at
    // all (the library default is memory-only). Restored on every exit
    // path: leaking `true` would make unrelated tests in the same
    // process write snapshots into their working directory.
    struct DiskPersistenceGuard(bool);
    impl Drop for DiskPersistenceGuard {
        fn drop(&mut self) {
            snapshot_cache::set_disk_persistence(self.0);
        }
    }
    let _disk_guard = DiskPersistenceGuard(snapshot_cache::disk_persistence());
    snapshot_cache::set_disk_persistence(true);
    let wall_start = Instant::now();

    // The unfaulted reference: the byte-identity target for every
    // cycle's recovery run.
    vfs::reset();
    snapshot_cache::set_dir_override(Some(scratch.join("ref-snapshots")));
    snapshot_cache::clear_memory();
    let (ref_report, _) = pressure::run(&payload_opts(cfg));
    if !ref_report.failures.is_empty() {
        snapshot_cache::set_dir_override(None);
        return Err(format!(
            "reference pressure run failed {} cell(s); cannot torture against it",
            ref_report.failures.len()
        ));
    }
    let ref_json = payload_json(&ref_report);

    let mut cycles: Vec<(String, CycleOutcome)> = Vec::new();
    for s in 0..cfg.seeds.max(1) {
        for j in 0..cfg.cuts.max(1) {
            let seed = cfg.base_seed.wrapping_add(s);
            let cut_after = 2 + 5 * j;
            let label = format!("seed-{seed}-cut-{cut_after}");
            let plan = FaultConfig { rate: cfg.rate, window: cfg.window, seed };
            let cyc = scratch.join(&label);
            std::fs::create_dir_all(&cyc)
                .map_err(|e| format!("create {}: {e}", cyc.display()))?;
            let outcome = run_cycle(cfg, &cyc, plan, cut_after);
            if !cfg.quiet {
                println!(
                    "torture: {label}: {} fault(s) injected, {} accounted, {} flip(s) \
                     detected, {} rename(s) dropped at the cut{}",
                    outcome.injected.total(),
                    outcome.ledger.accounted.errors(),
                    outcome.ledger.flips_detected,
                    outcome.renames_dropped,
                    if outcome.panicked { " [PANICKED]" } else { "" }
                );
            }
            cycles.push((label, outcome));
        }
    }
    snapshot_cache::set_dir_override(None);
    snapshot_cache::clear_memory();

    let verdicts = judge(&cycles, &ref_json);
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let payload = torture_json(cfg, &cycles, &verdicts, wall_seconds);
    if let Some(moved) = artifact::quarantine_if_corrupt(&cfg.out)
        .map_err(|e| format!("inspect {}: {e}", cfg.out.display()))?
    {
        eprintln!(
            "torture: WARNING: corrupt {} quarantined to {}",
            cfg.out.display(),
            moved.display()
        );
    }
    if let Some(parent) = cfg.out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    artifact::atomic_write_json(&cfg.out, &payload)
        .map_err(|e| format!("write {}: {e}", cfg.out.display()))?;
    let _ = std::fs::remove_dir_all(&scratch);

    let all_ok = verdicts.iter().all(|v| v.pass);
    if !cfg.quiet {
        for v in &verdicts {
            println!(
                "torture: {} {} — {}",
                if v.pass { "PASS" } else { "FAIL" },
                v.name,
                v.evidence
            );
        }
    }
    Ok((payload, all_ok))
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

fn torture_usage() -> String {
    "usage: repro torture [--seeds N] [--cuts N] [--accesses N] [--bench NAME]\n\
     \u{20}                    [--io-faults rate=R,window=W,seed=S] [--out PATH]\n\
     \u{20}                    [--quiet]\n\
     Sweeps seeded storage-fault schedules x simulated power-cut points\n\
     over the journal, snapshot, artifact, and serve-cache layers, then\n\
     gates five crash-consistency verdicts with evidence: zero panics,\n\
     no corrupt bytes accepted, --resume byte-identity, warm-cache\n\
     identity, and an exact injected-vs-accounted fault ledger. Writes\n\
     results/BENCH_torture.json and exits nonzero when any verdict\n\
     fails. --io-faults sets the plan template (its seed is the sweep\n\
     base; --seeds counts schedules from there)."
        .to_string()
}

/// `repro torture` entry point.
pub fn cli(args: &[String]) -> ExitCode {
    let mut cfg = TortureConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = args.get(i + 1);
        let mut took_value = true;
        let parse_u64 = |flag: &str, v: Option<&String>| -> Result<u64, String> {
            v.ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs a number"))
        };
        let result: Result<(), String> = match arg {
            "--seeds" => parse_u64(arg, value).map(|n| cfg.seeds = n.max(1)),
            "--cuts" => parse_u64(arg, value).map(|n| cfg.cuts = n.max(1)),
            "--accesses" => parse_u64(arg, value).map(|n| cfg.accesses = n.max(1)),
            "--bench" => value
                .ok_or_else(|| "--bench needs a name".to_string())
                .map(|v| cfg.bench = v.clone()),
            "--io-faults" => value
                .ok_or_else(|| "--io-faults needs a spec".to_string())
                .and_then(|v| FaultConfig::parse(v))
                .map(|f| {
                    cfg.rate = f.rate;
                    cfg.window = f.window;
                    cfg.base_seed = f.seed;
                }),
            "--out" => value
                .ok_or_else(|| "--out needs a path".to_string())
                .map(|v| cfg.out = PathBuf::from(v)),
            "--quiet" => {
                took_value = false;
                cfg.quiet = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{}", torture_usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = result {
            eprintln!("{e}\n{}", torture_usage());
            return ExitCode::from(2);
        }
        i += if took_value { 2 } else { 1 };
    }
    match run(&cfg) {
        Ok((payload, all_ok)) => {
            if !cfg.quiet {
                println!("torture details written to {}", cfg.out.display());
            }
            if all_ok {
                if !cfg.quiet {
                    println!(
                        "TORTURE PASS: every verdict held (see {})",
                        cfg.out.display()
                    );
                }
                ExitCode::SUCCESS
            } else {
                eprintln!("TORTURE FAIL: one or more verdicts failed; payload:\n{payload}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("torture: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny cycle end to end. Serialized with every other test that
    /// touches the process-global seam or ledger.
    #[test]
    fn one_cycle_torture_passes_all_verdicts() {
        let _guard = crate::io_faults::ledger_test_guard();
        let cfg = TortureConfig {
            seeds: 1,
            cuts: 1,
            accesses: 300,
            rate: 0.2,
            out: std::env::temp_dir()
                .join(format!("colt-torture-test-{}", std::process::id()))
                .join("BENCH_torture.json"),
            quiet: true,
            ..TortureConfig::default()
        };
        let (payload, all_ok) = run(&cfg).expect("torture infrastructure");
        assert!(all_ok, "verdicts failed:\n{payload}");
        crate::artifact::validate_json(&payload).unwrap();
        assert!(payload.contains("\"io_faults_injected\""));
        let _ = std::fs::remove_dir_all(cfg.out.parent().unwrap());
    }
}
