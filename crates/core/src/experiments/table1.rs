//! Table 1: L1/L2 TLB misses per million instructions with THS on and
//! off, per benchmark.
//!
//! The paper's Table 1 comes from on-chip performance counters of the
//! real system (64-entry L1 TLB, 512-entry L2 TLB). We therefore run
//! this experiment with real-system TLB sizes rather than the scaled
//! simulation sizes used by Figures 18–21.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f0, Table};
use crate::runner::{self, SweepCell};
use crate::sim::SimConfig;
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;

/// One benchmark's measured and published MPMIs.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured L1 MPMI, THS on.
    pub l1_ths_on: f64,
    /// Measured L2 MPMI, THS on.
    pub l2_ths_on: f64,
    /// Measured L1 MPMI, THS off.
    pub l1_ths_off: f64,
    /// Measured L2 MPMI, THS off.
    pub l2_ths_off: f64,
    /// Paper's Table-1 values, same order.
    pub paper: [f64; 4],
}

/// The real-system TLB configuration behind Table 1 (§5.1.1).
pub fn real_system_tlbs() -> TlbConfig {
    TlbConfig {
        l1_entries: 64,
        l2_entries: 512,
        ..TlbConfig::baseline()
    }
}

/// Runs the Table-1 experiment.
pub fn run(opts: &ExperimentOptions) -> (Vec<Table1Row>, ExperimentOutput) {
    let scenarios =
        [opts.scenario(Scenario::default_linux()), opts.scenario(Scenario::no_ths())];
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for scenario in &scenarios {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(real_system_tlbs()).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(
                format!("table1/{}/{}", spec.name, scenario.name),
                scenario,
                spec,
                cfg,
            ));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let mut rows = Vec::new();
    for (spec, r) in specs.iter().zip(results.chunks_exact(2)) {
        let measured = [r[0].l1_mpmi(), r[0].l2_mpmi(), r[1].l1_mpmi(), r[1].l2_mpmi()];
        rows.push(Table1Row {
            name: spec.name,
            l1_ths_on: measured[0],
            l2_ths_on: measured[1],
            l1_ths_off: measured[2],
            l2_ths_off: measured[3],
            paper: [
                spec.paper.l1_mpmi_ths_on,
                spec.paper.l2_mpmi_ths_on,
                spec.paper.l1_mpmi_ths_off,
                spec.paper.l2_mpmi_ths_off,
            ],
        });
    }

    let mut table = Table::new(
        "Table 1: TLB misses per million instructions (measured vs paper)",
        &[
            "Benchmark",
            "L1 on",
            "L2 on",
            "L1 off",
            "L2 off",
            "paper L1 on",
            "paper L2 on",
            "paper L1 off",
            "paper L2 off",
        ],
    );
    for r in &rows {
        table.add_row(vec![
            r.name.to_string(),
            f0(r.l1_ths_on),
            f0(r.l2_ths_on),
            f0(r.l1_ths_off),
            f0(r.l2_ths_off),
            f0(r.paper[0]),
            f0(r.paper[1]),
            f0(r.paper[2]),
            f0(r.paper[3]),
        ]);
    }
    (rows, ExperimentOutput { id: "table1", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_system_tlbs_match_the_paper() {
        let c = real_system_tlbs();
        assert_eq!(c.l1_entries, 64);
        assert_eq!(c.l2_entries, 512);
        assert_eq!(c.sp_entries, 16);
    }

    #[test]
    fn ths_off_raises_misses_for_thp_benchmarks() {
        // Milc's paper signature: huge MPMI jump when THS goes off. The
        // hugepage benefit only shows once the pattern re-visits THP-backed
        // regions, so this test needs the full access budget — at the
        // quick 30k budget both scenarios measure identical MPMI.
        let opts = ExperimentOptions {
            accesses: 400_000,
            ..ExperimentOptions::quick()
        }
        .with_benchmarks(&["Milc", "Sjeng"]);
        let (rows, out) = run(&opts);
        assert_eq!(rows.len(), 2);
        let milc = rows.iter().find(|r| r.name == "Milc").unwrap();
        assert!(
            milc.l2_ths_off > milc.l2_ths_on,
            "Milc THS-off L2 MPMI ({:.0}) must exceed THS-on ({:.0})",
            milc.l2_ths_off,
            milc.l2_ths_on
        );
        assert!(!out.render().is_empty());
    }
}
