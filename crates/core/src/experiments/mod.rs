//! Experiment drivers: one module per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the full index).
//!
//! | module | reproduces |
//! |---|---|
//! | [`table1`] | Table 1 — real-system-sized L1/L2 MPMIs, THS on/off |
//! | [`contiguity`] | Figures 7–15 — contiguity CDFs per kernel config |
//! | [`memhog_load`] | Figures 16–17 — contiguity under memhog load |
//! | [`miss_elimination`] | Figure 18 — % misses eliminated by CoLT-SA/FA/All |
//! | [`index_shift`] | Figure 19 — CoLT-SA index left-shift sweep |
//! | [`associativity`] | Figure 20 — 4-way vs 8-way, with/without CoLT |
//! | [`performance`] | Figure 21 — performance vs perfect TLBs |
//! | [`ablation`] | §7.1.3 fill-to-L2 policy + extra design ablations |
//! | [`virtualization`] | §7.2's expectation: CoLT under nested paging |
//! | [`related_work`] | §2.1/§2.4: CoLT vs sequential TLB prefetching |
//! | [`context_switch`] | extension: elimination vs TLB-flush frequency |
//! | [`summary`] | scorecard: paper vs measured, in one table |
//! | [`grid`] | all twelve §5.1.1 kernel configurations |
//! | [`noise`] | seed-sensitivity of the headline averages |
//! | [`multiprog`] | extension: two benchmarks sharing one machine |
//! | [`smp`] | extension: N-core mixes, ASID tagging, shootdown IPIs |
//! | [`pressure`] | robustness: fault-injection intensity sweep |
//! | [`policy`] | extension: MM-policy sweep across the 8 TLB configs |
//!
//! Every driver returns structured rows plus [`Table`]s whose columns
//! include the paper's published values next to the measured ones, so
//! the `repro` binary's output doubles as the EXPERIMENTS.md data source.

pub mod ablation;
pub mod associativity;
pub mod context_switch;
pub mod contiguity;
pub mod grid;
pub mod index_shift;
pub mod memhog_load;
pub mod miss_elimination;
pub mod multiprog;
pub mod noise;
pub mod performance;
pub mod policy;
pub mod pressure;
pub mod related_work;
pub mod smp;
pub mod summary;
pub mod table1;
pub mod torture;
pub mod virtualization;

use crate::journal::Journal;
use crate::report::Table;
use crate::runner::SweepOptions;
use colt_os_mem::faults::FaultConfig;
use colt_os_mem::policy::PolicyKind;
use colt_workloads::spec::{all_benchmarks, BenchmarkSpec};
use std::sync::Arc;

/// Options shared by all experiment drivers.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// Simulated memory references per benchmark per configuration.
    pub accesses: u64,
    /// Restrict to these benchmarks (None = all 14).
    pub benchmarks: Option<Vec<String>>,
    /// Master seed for patterns.
    pub seed: u64,
    /// Worker threads for the sweep runner. Results are deterministic
    /// regardless of this value; it only changes wall-clock time.
    pub jobs: usize,
    /// Simulated cores for the `smp_*` experiments (ignored by the
    /// single-core paper experiments). 1 keeps every existing headline
    /// table untouched.
    pub cores: usize,
    /// Fault-injection plan for the `pressure` experiment and for
    /// `--check` runs under injection (`None` everywhere else — the
    /// paper experiments never see a fault).
    pub faults: Option<FaultConfig>,
    /// Retries per failing sweep cell beyond the first attempt
    /// (`repro --retries N`). A cell that exhausts its retries is
    /// quarantined instead of failing the whole sweep.
    pub retries: u32,
    /// Durable cell journal for this experiment run. `Some` when the
    /// `repro` binary wants crash-safe progress (always, for journaled
    /// experiments); replayed on `--resume`.
    pub journal: Option<Arc<Journal>>,
    /// Memory-management policy every scenario boots under
    /// (`repro --policy NAME`). [`PolicyKind::Default`] reproduces the
    /// historical headline tables byte-identically; the `policy`
    /// experiment sweeps all shipped policies regardless of this value.
    pub policy: PolicyKind,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            accesses: 400_000,
            benchmarks: None,
            seed: 0x5EED,
            jobs: default_jobs(),
            cores: 1,
            faults: None,
            retries: 1,
            journal: None,
            policy: PolicyKind::Default,
        }
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl ExperimentOptions {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self { accesses: 30_000, ..Self::default() }
    }

    /// Overrides the worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Restricts the benchmark set.
    #[must_use]
    pub fn with_benchmarks(mut self, names: &[&str]) -> Self {
        self.benchmarks = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sets the memory-management policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Applies this run's memory-management policy to a driver's
    /// scenario. Every experiment driver routes its scenarios through
    /// here so `repro --policy NAME` governs the whole run; the default
    /// policy leaves the scenario (name and bytes) untouched.
    #[must_use]
    pub fn scenario(&self, scenario: colt_workloads::scenario::Scenario)
    -> colt_workloads::scenario::Scenario {
        scenario.with_policy(self.policy)
    }

    /// The sweep supervision policy these options describe, for the
    /// runner's `run_cells_sweep`/`run_tasks_sweep` entry points.
    pub fn sweep(&self) -> SweepOptions<'_> {
        SweepOptions {
            jobs: self.jobs,
            retries: self.retries,
            hard_deadline: None,
            journal: self.journal.as_deref(),
        }
    }

    /// Fingerprint of this invocation for `experiment`: a checksum over
    /// every flag that changes results. Journal records carrying a
    /// different fingerprint are never replayed.
    pub fn fingerprint(&self, experiment: &str) -> String {
        let benchmarks = match &self.benchmarks {
            None => "all".to_string(),
            Some(names) => names.join("+"),
        };
        let faults = match &self.faults {
            None => "none".to_string(),
            Some(f) => format!(
                "rate={:016x},window={},seed={}",
                f.rate.to_bits(),
                f.window,
                f.seed
            ),
        };
        let canonical = format!(
            "{experiment};accesses={};seed={};benchmarks={benchmarks};cores={};\
             faults={faults};policy={}",
            self.accesses,
            self.seed,
            self.cores,
            self.policy.name()
        );
        crate::journal::fingerprint_of(&canonical)
    }

    /// The benchmark models this run covers.
    pub fn selected_benchmarks(&self) -> Vec<BenchmarkSpec> {
        let specs = all_benchmarks();
        match &self.benchmarks {
            None => specs,
            Some(names) => specs
                .into_iter()
                .filter(|s| names.iter().any(|n| n.eq_ignore_ascii_case(s.name)))
                .collect(),
        }
    }
}

/// A rendered experiment: its name and one or more output tables.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Experiment identifier (e.g. "fig18").
    pub id: &'static str,
    /// Output tables in presentation order.
    pub tables: Vec<Table>,
}

impl ExperimentOutput {
    /// Renders all tables.
    pub fn render(&self) -> String {
        self.tables.iter().map(Table::render).collect::<Vec<_>>().join("\n")
    }
}

/// The result of [`run_named`]: the rendered output plus the structured
/// side products some experiments produce (the binary feeds them into
/// `BENCH_smp.json` / `BENCH_pressure.json`; `repro serve` only needs
/// the tables).
pub struct NamedRun {
    /// The experiment's tables.
    pub output: ExperimentOutput,
    /// SMP rows (non-empty only for `smp_mix` / `smp_scaling`).
    pub smp_rows: Vec<smp::SmpRow>,
    /// The pressure report (`Some` only for `pressure`).
    pub pressure: Option<pressure::PressureReport>,
    /// The policy-sweep report (`Some` only for `policy`).
    pub policy: Option<policy::PolicyReport>,
}

/// Dispatches one experiment by its CLI name (`fig18`, `table1`, …).
/// `None` for an unknown name — no side effects, no partial run. This
/// is the single name→driver table; the `repro` binary and the serve
/// dispatcher both route through it so a sweep served over a socket is
/// the same code path as one run directly.
pub fn run_named(name: &str, opts: &ExperimentOptions) -> Option<NamedRun> {
    let mut smp_rows: Vec<smp::SmpRow> = Vec::new();
    let mut pressure_report: Option<pressure::PressureReport> = None;
    let mut policy_report: Option<policy::PolicyReport> = None;
    let output: ExperimentOutput = match name {
        "table1" => table1::run(opts).1,
        "fig7-9" => contiguity::run(contiguity::ContiguityConfig::ThsOn, opts).1,
        "fig10-12" => contiguity::run(contiguity::ContiguityConfig::ThsOff, opts).1,
        "fig13-15" => {
            contiguity::run(contiguity::ContiguityConfig::LowCompaction, opts).1
        }
        "fig16-17" => memhog_load::run(opts).1,
        "fig18" => miss_elimination::run(opts).1,
        "fig19" => index_shift::run(opts).1,
        "fig20" => associativity::run(opts).1,
        "fig21" => performance::run(opts).1,
        "ablation" => ablation::run(opts).1,
        "virt" => virtualization::run(opts).1,
        "related" => related_work::run(opts).1,
        "ctxswitch" => context_switch::run(opts).1,
        "summary" => summary::run(opts).1,
        "grid" => grid::run(opts).1,
        "noise" => noise::run(opts).1,
        "multiprog" => multiprog::run(opts).1,
        "smp_mix" => {
            let (rows, out) = smp::run_mix(opts);
            smp_rows.extend(rows);
            out
        }
        "smp_scaling" => {
            let (rows, out) = smp::run_scaling(opts);
            smp_rows.extend(rows);
            out
        }
        "pressure" => {
            let (report, out) = pressure::run(opts);
            pressure_report = Some(report);
            out
        }
        "policy" => {
            let (report, out) = policy::run(opts);
            policy_report = Some(report);
            out
        }
        _ => return None,
    };
    Some(NamedRun {
        output,
        smp_rows,
        pressure: pressure_report,
        policy: policy_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_named_rejects_unknown_names_without_side_effects() {
        let opts = ExperimentOptions::quick();
        assert!(run_named("not-an-experiment", &opts).is_none());
        assert!(run_named("", &opts).is_none());
    }

    #[test]
    fn options_select_benchmarks() {
        let all = ExperimentOptions::default().selected_benchmarks();
        assert_eq!(all.len(), 14);
        let two = ExperimentOptions::default()
            .with_benchmarks(&["mcf", "Bzip2"])
            .selected_benchmarks();
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn quick_options_are_cheaper() {
        assert!(ExperimentOptions::quick().accesses < ExperimentOptions::default().accesses);
    }

    #[test]
    fn fingerprints_separate_policies_and_scenario_helper_tags_names() {
        let base = ExperimentOptions::quick();
        let mut prints: Vec<String> = PolicyKind::all()
            .iter()
            .map(|&p| base.clone().with_policy(p).fingerprint("fig18"))
            .collect();
        prints.sort();
        prints.dedup();
        assert_eq!(
            prints.len(),
            PolicyKind::all().len(),
            "every policy must fingerprint distinctly — journals and sweep \
             caches key on it"
        );

        // The scenario() helper is how every driver picks the policy up.
        let tagged = base
            .clone()
            .with_policy(PolicyKind::Adversarial)
            .scenario(colt_workloads::scenario::Scenario::default_linux());
        assert!(tagged.name.contains("[policy=adversarial]"), "{}", tagged.name);
        let untouched = base.scenario(colt_workloads::scenario::Scenario::default_linux());
        assert_eq!(
            untouched.name,
            colt_workloads::scenario::Scenario::default_linux().name,
            "the default policy must leave scenario names byte-identical"
        );
    }
}
