//! Figure 21: performance improvement of CoLT-SA/FA/All against the
//! baseline, with perfect (100%-hit) TLBs as the upper bound.
//!
//! Uses the paper's own interpolation method (§5.2.1): page walks are
//! serialized on the critical path, so cycles saved on walks translate
//! directly to runtime (see [`crate::perf`]).

use super::{ExperimentOptions, ExperimentOutput};
use crate::perf::PerfModel;
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::{SimConfig, SimResult};
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;

/// Performance results for one benchmark.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Perfect-TLB improvement (%) over baseline.
    pub perfect: f64,
    /// CoLT-SA / CoLT-FA / CoLT-All improvements (%).
    pub colt: [f64; 3],
    /// The underlying simulation results
    /// (baseline, SA, FA, All).
    pub results: [SimResult; 4],
}

/// Runs the performance study.
pub fn run(opts: &ExperimentOptions) -> (Vec<PerfRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let model = PerfModel::default();
    let configs = [
        TlbConfig::baseline(),
        TlbConfig::colt_sa(),
        TlbConfig::colt_fa(),
        TlbConfig::colt_all(),
    ];
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for tlb in configs {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(
                format!("fig21/{}/{}", spec.name, tlb.mode.label()),
                &scenario,
                spec,
                cfg,
            ));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<PerfRow> = specs
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(spec, r)| {
            let baseline = r[0];
            PerfRow {
                name: spec.name,
                perfect: model.perfect_improvement_pct(&baseline),
                colt: [
                    model.improvement_pct(&baseline, &r[1]),
                    model.improvement_pct(&baseline, &r[2]),
                    model.improvement_pct(&baseline, &r[3]),
                ],
                results: [r[0], r[1], r[2], r[3]],
            }
        })
        .collect();

    let mut table = Table::new(
        "Figure 21: performance improvement % (paper avg: SA 12, FA 14, All 14)",
        &["Benchmark", "Perfect", "CoLT-SA", "CoLT-FA", "CoLT-All"],
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        let vals = [r.perfect, r.colt[0], r.colt[1], r.colt[2]];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        table.add_row(vec![
            r.name.to_string(),
            f1(r.perfect),
            f1(r.colt[0]),
            f1(r.colt[1]),
            f1(r.colt[2]),
        ]);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        table.add_row(vec![
            "Average".to_string(),
            f1(sums[0] / n),
            f1(sums[1] / n),
            f1(sums[2] / n),
            f1(sums[3] / n),
        ]);
    }
    (rows, ExperimentOutput { id: "fig21", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tlb_bounds_every_colt_design() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Astar", "Bzip2"]);
        let (rows, _) = run(&opts);
        for r in &rows {
            for (i, &c) in r.colt.iter().enumerate() {
                assert!(
                    c <= r.perfect + 1.0,
                    "{}: design {i} improvement {:.1}% exceeds perfect {:.1}%",
                    r.name,
                    c,
                    r.perfect
                );
            }
        }
    }

    #[test]
    fn tlb_bound_benchmarks_gain_from_coalescing() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM"]);
        let (rows, out) = run(&opts);
        let r = &rows[0];
        assert!(r.perfect > 0.0, "a TLB-stressed benchmark has walk headroom");
        assert!(
            r.colt.iter().any(|&c| c > 0.0),
            "at least one CoLT design must improve CactusADM, got {:?}",
            r.colt
        );
        assert!(out.render().contains("Perfect"));
    }
}
