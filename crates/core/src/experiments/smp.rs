//! SMP extension (`smp_*` experiments): multiprogrammed mixes
//! co-scheduled over N cores with private TLB hierarchies, one shared
//! LLC, and cross-core shootdowns (see [`colt_smp`]).
//!
//! Two studies:
//!
//! * **`smp_mix`** — each eight-benchmark mix runs twice at the
//!   requested core count, once untagged (full translation flush at
//!   every context switch, the paper's machine) and once ASID-tagged
//!   (switches retarget the current ASID and keep warmed state). The
//!   table shows what tagging buys — flushes avoided, walks saved —
//!   and what SMP costs — shootdown IPIs and remote invalidations
//!   under kernel churn.
//! * **`smp_scaling`** — one mix swept over core counts with tagging
//!   on, showing how per-core TLB pressure and IPI traffic change as
//!   the same work spreads over more private hierarchies contending on
//!   one LLC.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::Table;
use crate::runner::{self, SweepTask};
use colt_os_mem::policy::PolicyKind;
use colt_smp::{SmpConfig, SmpMachine};
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;

/// A lighter eight-benchmark mix (~33k pages): two workloads per core
/// at four cores, so every core co-schedules and context-switches.
pub const MIX_LIGHT: [&str; 8] =
    ["Gobmk", "Povray", "FastaProt", "Sjeng", "Xalancbmk", "Bzip2", "Omnetpp", "GemsFDTD"];

/// A heavier mix (~47k pages) led by Mcf, the paper's largest
/// footprint.
pub const MIX_HEAVY: [&str; 8] =
    ["Mcf", "CactusADM", "Omnetpp", "Gobmk", "Xalancbmk", "Sjeng", "Povray", "FastaProt"];

/// One (mix, mode, core-count) measurement.
#[derive(Clone, Debug)]
pub struct SmpRow {
    /// Which experiment produced the row ("smp_mix" / "smp_scaling").
    pub experiment: &'static str,
    /// Mix label ("light8" / "heavy8").
    pub mix: String,
    /// "untagged" or "tagged".
    pub mode: &'static str,
    /// Core count.
    pub cores: usize,
    /// Aggregate memory references measured.
    pub accesses: u64,
    /// Aggregate L1-level TLB misses.
    pub l1_misses: u64,
    /// Aggregate page walks (L2 misses).
    pub walks: u64,
    /// Full translation flushes at context switches.
    pub full_flushes: u64,
    /// Switches that kept state thanks to ASID tagging.
    pub flushes_avoided: u64,
    /// Shootdown IPIs sent.
    pub ipis_sent: u64,
    /// Shootdown IPIs received.
    pub ipis_received: u64,
    /// Entries invalidated remotely.
    pub remote_invalidations: u64,
    /// Cycles spent sending/servicing IPIs.
    pub ipi_cycles: u64,
}

impl crate::journal::JournalPayload for SmpRow {
    fn encode(&self) -> String {
        crate::journal::Enc::new("smp1")
            .s(self.experiment)
            .s(&self.mix)
            .s(self.mode)
            .u(self.cores as u64)
            .u(self.accesses)
            .u(self.l1_misses)
            .u(self.walks)
            .u(self.full_flushes)
            .u(self.flushes_avoided)
            .u(self.ipis_sent)
            .u(self.ipis_received)
            .u(self.remote_invalidations)
            .u(self.ipi_cycles)
            .done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = crate::journal::Dec::new(s, "smp1")?;
        // The two &'static str fields come back through a closed-world
        // match: an unknown value means a foreign payload, not a guess.
        let experiment = match d.s()?.as_str() {
            "smp_mix" => "smp_mix",
            "smp_scaling" => "smp_scaling",
            _ => return None,
        };
        let mix = d.s()?;
        let mode = match d.s()?.as_str() {
            "tagged" => "tagged",
            "untagged" => "untagged",
            _ => return None,
        };
        let row = SmpRow {
            experiment,
            mix,
            mode,
            cores: usize::try_from(d.u()?).ok()?,
            accesses: d.u()?,
            l1_misses: d.u()?,
            walks: d.u()?,
            full_flushes: d.u()?,
            flushes_avoided: d.u()?,
            ipis_sent: d.u()?,
            ipis_received: d.u()?,
            remote_invalidations: d.u()?,
            ipi_cycles: d.u()?,
        };
        d.exhausted().then_some(row)
    }
}

fn measure(
    experiment: &'static str,
    mix_name: &str,
    names: &[&str],
    cores: usize,
    tagged: bool,
    accesses: u64,
    seed: u64,
    policy: PolicyKind,
) -> SmpRow {
    let specs: Vec<_> = names
        .iter()
        .map(|n| benchmark(n).expect("Table-1 benchmark"))
        .collect();
    let multi = Scenario::default_linux()
        .with_policy(policy)
        .prepare_many(&specs)
        .unwrap_or_else(|e| panic!("prepare_many({mix_name}): {e}"));
    let mut cfg = SmpConfig::new(cores, TlbConfig::colt_all());
    if tagged {
        cfg = cfg.tagged();
    }
    let mut machine = SmpMachine::new(multi, cfg, seed);
    machine.run(accesses / 10);
    machine.mark();
    machine.run(accesses);
    let agg = machine.result().aggregate();
    SmpRow {
        experiment,
        mix: mix_name.to_string(),
        mode: if tagged { "tagged" } else { "untagged" },
        cores,
        accesses: agg.counters.accesses,
        l1_misses: agg.tlb.l1_misses,
        walks: agg.tlb.l2_misses,
        full_flushes: agg.counters.full_flushes,
        flushes_avoided: agg.counters.flushes_avoided,
        ipis_sent: agg.counters.ipis_sent,
        ipis_received: agg.counters.ipis_received,
        remote_invalidations: agg.counters.remote_invalidations,
        ipi_cycles: agg.counters.ipi_cycles,
    }
}

fn mix_table(title: String, rows: &[SmpRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "mix", "mode", "cores", "walks", "full flushes", "flushes avoided",
            "IPIs sent", "remote invals", "IPI cycles",
        ],
    );
    for r in rows {
        table.add_row(vec![
            r.mix.clone(),
            r.mode.to_string(),
            r.cores.to_string(),
            r.walks.to_string(),
            r.full_flushes.to_string(),
            r.flushes_avoided.to_string(),
            r.ipis_sent.to_string(),
            r.remote_invalidations.to_string(),
            r.ipi_cycles.to_string(),
        ]);
    }
    table
}

/// Runs the tagged-vs-untagged mix study at `opts.cores` cores.
pub fn run_mix(opts: &ExperimentOptions) -> (Vec<SmpRow>, ExperimentOutput) {
    let cores = opts.cores.max(1);
    let accesses = opts.accesses;
    let seed = opts.seed;
    let policy = opts.policy;
    let mixes: [(&str, &[&str]); 2] = [("light8", &MIX_LIGHT), ("heavy8", &MIX_HEAVY)];
    let tasks: Vec<SweepTask<Vec<SmpRow>>> = mixes
        .iter()
        .map(|&(mix_name, names)| {
            let refs = 2 * cores as u64 * (accesses + accesses / 10);
            SweepTask::new(format!("smp_mix/{mix_name}"), refs, move || {
                [false, true]
                    .iter()
                    .map(|&tagged| {
                        measure(
                            "smp_mix", mix_name, names, cores, tagged, accesses, seed,
                            policy,
                        )
                    })
                    .collect()
            })
        })
        .collect();
    let rows: Vec<SmpRow> =
        runner::expect_all(runner::run_tasks_sweep(tasks, &opts.sweep())).into_iter().flatten().collect();
    let table = mix_table(
        format!(
            "SMP mixes (extension): {cores} core(s), CoLT-All per core, shared LLC, \
             10k-step quanta, kernel churn every 2k steps"
        ),
        &rows,
    );
    (rows, ExperimentOutput { id: "smp_mix", tables: vec![table] })
}

/// Core counts the scaling study sweeps: 1, half, and the requested
/// width (at least 4).
fn scaling_core_counts(requested: usize) -> Vec<usize> {
    let top = requested.max(4);
    let mut counts = vec![1, (top / 2).max(2), top];
    counts.dedup();
    counts
}

/// Runs the core-count scaling study (ASID-tagged CoLT-All).
pub fn run_scaling(opts: &ExperimentOptions) -> (Vec<SmpRow>, ExperimentOutput) {
    let accesses = opts.accesses;
    let seed = opts.seed;
    let policy = opts.policy;
    let tasks: Vec<SweepTask<SmpRow>> = scaling_core_counts(opts.cores)
        .into_iter()
        .map(|cores| {
            let refs = cores as u64 * (accesses + accesses / 10);
            SweepTask::new(format!("smp_scaling/{cores}c"), refs, move || {
                measure(
                    "smp_scaling", "light8", &MIX_LIGHT, cores, true, accesses, seed, policy,
                )
            })
        })
        .collect();
    let rows = runner::expect_all(runner::run_tasks_sweep(tasks, &opts.sweep()));
    let table = mix_table(
        "SMP scaling (extension): light8 mix, ASID-tagged CoLT-All, cores swept".to_string(),
        &rows,
    );
    (rows, ExperimentOutput { id: "smp_scaling", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagging_eliminates_flushes_and_churn_costs_ipis() {
        // Enough steps to cross several 10k-step scheduling quanta.
        let opts = ExperimentOptions { accesses: 35_000, cores: 2, ..ExperimentOptions::quick() };
        let (rows, out) = run_mix(&opts);
        assert_eq!(out.id, "smp_mix");
        assert_eq!(rows.len(), 4, "two mixes x two modes");
        for pair in rows.chunks(2) {
            let (untagged, tagged) = (&pair[0], &pair[1]);
            assert_eq!(untagged.mix, tagged.mix);
            assert!(
                tagged.full_flushes < untagged.full_flushes,
                "tagging must cut full flushes ({} vs {})",
                tagged.full_flushes,
                untagged.full_flushes
            );
            assert!(tagged.flushes_avoided > 0);
            assert_eq!(tagged.accesses, untagged.accesses);
        }
        // Shootdown volume depends on what the kernel's churn actually
        // moves, so only light8 — whose layout compaction does migrate —
        // must show the IPI bill.
        let light_tagged = &rows[1];
        assert_eq!(light_tagged.mix, "light8");
        assert!(light_tagged.ipis_sent > 0, "churn must cost IPIs in tagged mode");
        assert!(light_tagged.remote_invalidations > 0);
    }

    #[test]
    fn scaling_covers_the_requested_width() {
        assert_eq!(scaling_core_counts(1), vec![1, 2, 4]);
        assert_eq!(scaling_core_counts(4), vec![1, 2, 4]);
        assert_eq!(scaling_core_counts(8), vec![1, 4, 8]);
    }

    #[test]
    fn scaling_rows_are_deterministic_at_any_jobs_width() {
        let opts = ExperimentOptions { accesses: 5_000, cores: 2, jobs: 1, ..ExperimentOptions::quick() };
        let (a, _) = run_scaling(&opts);
        let (b, _) = run_scaling(&ExperimentOptions { jobs: 8, ..opts });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.walks, y.walks);
            assert_eq!(x.ipis_sent, y.ipis_sent);
            assert_eq!(x.remote_invalidations, y.remote_invalidations);
        }
    }
}
