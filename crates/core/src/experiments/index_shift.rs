//! Figure 19: CoLT-SA's fundamental tradeoff — left-shifting the index
//! bits by 1, 2, or 3 bits (maximum coalescing 2, 4, or 8) against the
//! conflict misses the more aggressive shifts cause.
//!
//! The paper finds shift-2 the sweet spot, with shift-3 *increasing*
//! misses for many benchmarks (negative elimination bars in the figure).

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::{SimConfig, SimResult};
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// The index shifts Figure 19 sweeps.
pub const SHIFTS: [u32; 3] = [1, 2, 3];

/// Results for one benchmark across the shift sweep.
#[derive(Clone, Debug)]
pub struct ShiftRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline (no coalescing) result.
    pub baseline: SimResult,
    /// CoLT-SA results at shifts 1, 2, 3.
    pub shifted: [SimResult; 3],
}

impl ShiftRow {
    /// Percent of baseline L1 misses eliminated at `SHIFTS[i]`.
    pub fn l1_elim(&self, i: usize) -> f64 {
        pct_misses_eliminated(self.baseline.tlb.l1_misses, self.shifted[i].tlb.l1_misses)
    }

    /// Percent of baseline L2 misses eliminated at `SHIFTS[i]`.
    pub fn l2_elim(&self, i: usize) -> f64 {
        pct_misses_eliminated(self.baseline.tlb.l2_misses, self.shifted[i].tlb.l2_misses)
    }
}

/// Runs the shift sweep.
pub fn run(opts: &ExperimentOptions) -> (Vec<ShiftRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        let mut configs = vec![("base".to_string(), TlbConfig::baseline())];
        configs.extend(
            SHIFTS.map(|s| (format!("shift{s}"), TlbConfig::colt_sa().with_shift(s))),
        );
        for (label, tlb) in configs {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(format!("fig19/{}/{label}", spec.name), &scenario, spec, cfg));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<ShiftRow> = specs
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(spec, r)| ShiftRow {
            name: spec.name,
            baseline: r[0],
            shifted: [r[1], r[2], r[3]],
        })
        .collect();

    let mut table = Table::new(
        "Figure 19: CoLT-SA miss elimination by index left-shift (paper: shift 2 is best)",
        &["Benchmark", "L1 s1", "L1 s2", "L1 s3", "L2 s1", "L2 s2", "L2 s3"],
    );
    let mut sums = [0.0f64; 6];
    for r in &rows {
        let vals = [
            r.l1_elim(0), r.l1_elim(1), r.l1_elim(2),
            r.l2_elim(0), r.l2_elim(1), r.l2_elim(2),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        let mut cells = vec![r.name.to_string()];
        cells.extend(vals.iter().map(|v| f1(*v)));
        table.add_row(cells);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let mut cells = vec!["Average".to_string()];
        cells.extend(sums.iter().map(|s| f1(s / n)));
        table.add_row(cells);
    }
    (rows, ExperimentOutput { id: "fig19", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift2_beats_shift1_on_contiguous_workloads() {
        // With 4-page-plus contiguity, allowing 4-way coalescing must
        // beat 2-way coalescing.
        let opts = ExperimentOptions::quick().with_benchmarks(&["Bzip2"]);
        let (rows, _) = run(&opts);
        let r = &rows[0];
        assert!(
            r.l2_elim(1) >= r.l2_elim(0),
            "shift2 ({:.1}%) must match or beat shift1 ({:.1}%)",
            r.l2_elim(1),
            r.l2_elim(0)
        );
    }

    #[test]
    fn sweep_produces_three_results_per_benchmark() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Gobmk"]);
        let (rows, out) = run(&opts);
        assert_eq!(rows[0].shifted.len(), 3);
        assert!(out.render().contains("L2 s3"));
    }
}
