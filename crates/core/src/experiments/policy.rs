//! Memory-management policy sweep (`policy` experiment).
//!
//! Repro policy experiment, not a paper figure: the paper's headline
//! result — CoLT's miss elimination — rests entirely on the contiguity
//! the *operating system* happens to produce (§3, §6). This sweep makes
//! that dependence measurable: every shipped [`PolicyKind`] boots the
//! default-Linux scenario, prepares the benchmark under its own THP /
//! compaction / reclaim / placement rules, and runs all eight `--check`
//! TLB configurations (the four paper designs and their future-work
//! variants) on the result.
//!
//! The interesting ordering, and the one `verify.sh` gates on: a
//! contiguity-greedy policy must beat the default, and the adversarial
//! policy (interleaved placement, no THP, no compaction) must trail it —
//! with CoLT's walk elimination tracking the same order. A TLB proposal
//! whose win survives the adversarial OS is robust; one that only works
//! under `greedy_contig` is an OS result wearing a hardware costume.
//!
//! The sweep runs through [`runner::run_cells_sweep`]: cells are
//! journaled (crash-safe, `--resume`-replayable), retried, and
//! quarantined on persistent failure, like every other journaled
//! experiment.

use super::{ExperimentOptions, ExperimentOutput};
use crate::check::check_configs;
use crate::report::Table;
use crate::runner::{self, CellOutcome, SweepCell};
use crate::sim::{SimConfig, SimResult};
use colt_os_mem::kernel::KernelStats;
use colt_os_mem::policy::PolicyKind;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::{benchmark, BenchmarkSpec};

/// Default benchmark subset (the full policy × config × benchmark cube
/// at all 14 benchmarks is `--bench`-selectable but slow): the paper's
/// largest footprint, a mid-size headline program, and a small-chunk
/// allocator that fragments itself.
pub const DEFAULT_BENCHMARKS: [&str; 3] = ["Mcf", "Gobmk", "Xalancbmk"];

/// One (policy × benchmark × TLB config) measurement.
#[derive(Clone, Debug)]
pub struct PolicyRow {
    /// Policy name ("default", "greedy_contig", ...).
    pub policy: String,
    /// Benchmark name.
    pub benchmark: String,
    /// TLB configuration label ("Baseline", "CoLT-All+fw", ...).
    pub config: String,
    /// Memory references simulated.
    pub accesses: u64,
    /// L1-level TLB misses.
    pub l1_misses: u64,
    /// Page walks (L2 misses).
    pub walks: u64,
    /// Cycles spent walking.
    pub walk_cycles: u64,
    /// Average physical contiguity of the prepared footprint (the
    /// paper's §6 measurement, and the policy's direct product).
    pub avg_contiguity: f64,
    /// Kernel counters from the preparation phase — the policy counters
    /// in here show the policy actually made decisions.
    pub kernel: KernelStats,
}

/// The per-cell sweep payload: simulation result, preparation-phase
/// kernel counters, and the footprint's average contiguity.
impl crate::journal::JournalPayload for (SimResult, KernelStats, f64) {
    fn encode(&self) -> String {
        let e = crate::journal::enc_kernel(
            crate::journal::enc_sim(crate::journal::Enc::new("simkerc1"), &self.0),
            &self.1,
        );
        e.f(self.2).done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = crate::journal::Dec::new(s, "simkerc1")?;
        let sim = crate::journal::dec_sim(&mut d)?;
        let kernel = crate::journal::dec_kernel(&mut d)?;
        let contig = d.f()?;
        d.exhausted().then_some((sim, kernel, contig))
    }
}

/// Per-policy aggregate across the sweep — the summary table, the
/// `BENCH_policy.json` headline block, and `verify.sh`'s gate.
#[derive(Clone, Debug)]
pub struct PolicySummary {
    /// Policy name.
    pub policy: String,
    /// Mean footprint contiguity across benchmarks (TLB reach proxy).
    pub avg_contiguity: f64,
    /// Mean CoLT-All walk elimination vs the same policy's baseline, %.
    pub colt_all_elim: f64,
    /// Sum of `policy_decisions` across the policy's cells.
    pub decisions: u64,
    /// Sum of `policy_huge_grants`.
    pub huge_grants: u64,
    /// Sum of `policy_huge_denies`.
    pub huge_denies: u64,
    /// Sum of `policy_collapses_triggered`.
    pub collapses: u64,
    /// Sum of `policy_compactions_requested`.
    pub compactions: u64,
}

/// Everything the policy sweep produced.
#[derive(Clone, Debug, Default)]
pub struct PolicyReport {
    /// Per-cell rows, in (policy, benchmark, config) order.
    pub rows: Vec<PolicyRow>,
    /// Per-policy aggregates, in [`PolicyKind::all`] order.
    pub summaries: Vec<PolicySummary>,
    /// Cells that failed; the sweep completed around them.
    pub failures: Vec<super::pressure::FailedCell>,
}

/// Walks eliminated vs the same (policy, benchmark) baseline config.
fn elimination(rows: &[PolicyRow], row: &PolicyRow) -> Option<f64> {
    let base = rows.iter().find(|r| {
        r.policy == row.policy && r.benchmark == row.benchmark && r.config == "Baseline"
    })?;
    if base.walks == 0 {
        return None;
    }
    Some(100.0 * (1.0 - row.walks as f64 / base.walks as f64))
}

fn summarize(rows: &[PolicyRow]) -> Vec<PolicySummary> {
    PolicyKind::all()
        .iter()
        .map(|kind| {
            let mine: Vec<&PolicyRow> =
                rows.iter().filter(|r| r.policy == kind.name()).collect();
            let baselines: Vec<&&PolicyRow> =
                mine.iter().filter(|r| r.config == "Baseline").collect();
            let avg_contiguity = if baselines.is_empty() {
                0.0
            } else {
                baselines.iter().map(|r| r.avg_contiguity).sum::<f64>()
                    / baselines.len() as f64
            };
            let elims: Vec<f64> = mine
                .iter()
                .filter(|r| r.config == "CoLT-All")
                .filter_map(|r| elimination(rows, r))
                .collect();
            let colt_all_elim = if elims.is_empty() {
                0.0
            } else {
                elims.iter().sum::<f64>() / elims.len() as f64
            };
            // Kernel counters repeat per TLB config (one preparation
            // per scenario); sum over baselines only so each
            // preparation counts once.
            let sum = |f: fn(&KernelStats) -> u64| {
                baselines.iter().map(|r| f(&r.kernel)).sum::<u64>()
            };
            PolicySummary {
                policy: kind.name().to_string(),
                avg_contiguity,
                colt_all_elim,
                decisions: sum(|k| k.policy_decisions),
                huge_grants: sum(|k| k.policy_huge_grants),
                huge_denies: sum(|k| k.policy_huge_denies),
                collapses: sum(|k| k.policy_collapses_triggered),
                compactions: sum(|k| k.policy_compactions_requested),
            }
        })
        .collect()
}

/// Runs the sweep. Deterministic at any `jobs` width.
pub fn run(opts: &ExperimentOptions) -> (PolicyReport, ExperimentOutput) {
    let specs: Vec<BenchmarkSpec> = match &opts.benchmarks {
        Some(_) => opts.selected_benchmarks(),
        None => DEFAULT_BENCHMARKS
            .iter()
            .map(|n| benchmark(n).expect("Table-1 benchmark"))
            .collect(),
    };
    let configs = check_configs();

    let mut meta: Vec<(String, String, String)> = Vec::new();
    let mut cells: Vec<SweepCell<(SimResult, KernelStats, f64)>> = Vec::new();
    for kind in PolicyKind::all() {
        let scenario = Scenario::default_linux().with_policy(kind);
        for spec in &specs {
            for (cname, tlb_cfg) in &configs {
                let label = format!("policy/{}/{}/{cname}", kind.name(), spec.name);
                let cfg = SimConfig {
                    pattern_seed: opts.seed,
                    ..SimConfig::new(*tlb_cfg).with_accesses(opts.accesses)
                };
                meta.push((
                    kind.name().to_string(),
                    spec.name.to_string(),
                    cname.clone(),
                ));
                let refs = cfg.warmup + cfg.accesses;
                cells.push(SweepCell::new(label, &scenario, spec, refs, move |w| {
                    (
                        crate::sim::run(w, &cfg),
                        w.kernel.stats(),
                        w.contiguity().average_contiguity(),
                    )
                }));
            }
        }
    }

    let mut report = PolicyReport::default();
    for (outcome, (policy, bench, cname)) in
        runner::run_cells_sweep(cells, &opts.sweep()).into_iter().zip(meta)
    {
        match outcome {
            CellOutcome::Ok((sim, kernel, contig)) => report.rows.push(PolicyRow {
                policy,
                benchmark: bench,
                config: cname,
                accesses: sim.tlb.accesses,
                l1_misses: sim.tlb.l1_misses,
                walks: sim.tlb.l2_misses,
                walk_cycles: sim.walk_cycles,
                avg_contiguity: contig,
                kernel,
            }),
            CellOutcome::Failed { label, payload } => {
                report.failures.push(super::pressure::FailedCell {
                    label,
                    payload,
                    attempts: 1,
                });
            }
            CellOutcome::Quarantined { label, attempts, reason } => {
                report.failures.push(super::pressure::FailedCell {
                    label,
                    payload: reason,
                    attempts,
                });
            }
        }
    }
    report.summaries = summarize(&report.rows);

    let mut tables = vec![summary_table(&report.summaries), sweep_table(&report)];
    if !report.failures.is_empty() {
        tables.push(failure_table(&report.failures));
    }
    (report, ExperimentOutput { id: "policy", tables })
}

fn summary_table(summaries: &[PolicySummary]) -> Table {
    let mut table = Table::new(
        "MM-policy summary: contiguity and CoLT-All walk elimination per policy \
         (counters summed over one preparation per benchmark)"
            .to_string(),
        &[
            "policy", "avg contiguity", "CoLT-All % elim", "decisions",
            "huge grants", "huge denies", "collapses", "compactions",
        ],
    );
    for s in summaries {
        table.add_row(vec![
            s.policy.clone(),
            format!("{:.1}", s.avg_contiguity),
            format!("{:.1}", s.colt_all_elim),
            s.decisions.to_string(),
            s.huge_grants.to_string(),
            s.huge_denies.to_string(),
            s.collapses.to_string(),
            s.compactions.to_string(),
        ]);
    }
    table
}

fn sweep_table(report: &PolicyReport) -> Table {
    let mut table = Table::new(
        "MM-policy sweep: every shipped policy × benchmark × 8 TLB configs".to_string(),
        &[
            "policy", "benchmark", "config", "walks", "% elim vs base",
            "avg contig", "thp allocs", "thp fallbacks", "compactions",
        ],
    );
    for r in &report.rows {
        let elim = elimination(&report.rows, r)
            .map_or_else(|| "-".to_string(), |e| format!("{e:.1}"));
        table.add_row(vec![
            r.policy.clone(),
            r.benchmark.clone(),
            r.config.clone(),
            r.walks.to_string(),
            elim,
            format!("{:.1}", r.avg_contiguity),
            r.kernel.thp_allocs.to_string(),
            r.kernel.thp_fallbacks.to_string(),
            r.kernel.policy_compactions_requested.to_string(),
        ]);
    }
    table
}

fn failure_table(failures: &[super::pressure::FailedCell]) -> Table {
    let mut table = Table::new(
        "Failed cells (sweep completed around them)".to_string(),
        &["cell", "attempts", "cause"],
    );
    for f in failures {
        let mut cause = f.payload.clone();
        cause.truncate(80);
        table.add_row(vec![f.label.clone(), f.attempts.to_string(), cause]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExperimentOptions {
        ExperimentOptions {
            accesses: 5_000,
            ..ExperimentOptions::quick().with_benchmarks(&["Gobmk"])
        }
    }

    #[test]
    fn sweep_covers_every_policy_and_orders_contiguity() {
        let (report, out) = run(&tiny_opts());
        assert_eq!(out.id, "policy");
        // 5 policies × 1 benchmark × 8 configs.
        assert_eq!(report.rows.len(), 40);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.summaries.len(), PolicyKind::all().len());
        let contig = |name: &str| {
            report
                .summaries
                .iter()
                .find(|s| s.policy == name)
                .map(|s| s.avg_contiguity)
                .unwrap()
        };
        assert!(
            contig("greedy_contig") >= contig("default"),
            "greedy must not trail default"
        );
        assert!(
            contig("default") > contig("adversarial"),
            "default must beat adversarial"
        );
        // Every policy makes decisions; only non-granting ones deny.
        for s in &report.summaries {
            assert!(s.decisions > 0, "{} made no decisions", s.policy);
        }
        let denies = |name: &str| {
            report.summaries.iter().find(|s| s.policy == name).unwrap().huge_denies
        };
        assert_eq!(denies("default"), 0);
        assert!(denies("no_thp") > 0);
        assert!(denies("adversarial") > 0);
    }

    #[test]
    fn sweep_is_deterministic_at_any_jobs_width() {
        let (a, _) = run(&tiny_opts().with_jobs(1));
        let (b, _) = run(&tiny_opts().with_jobs(8));
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!((&x.policy, &x.benchmark, &x.config), (&y.policy, &y.benchmark, &y.config));
            assert_eq!(x.walks, y.walks);
            assert_eq!(x.kernel, y.kernel);
        }
    }

    #[test]
    fn cell_payload_round_trips_through_the_journal_codec() {
        use crate::journal::JournalPayload;
        let spec = benchmark("Gobmk").unwrap();
        let w = Scenario::default_linux()
            .with_policy(PolicyKind::GreedyContig)
            .prepare(&spec)
            .unwrap();
        let cfg = SimConfig::new(colt_tlb::config::TlbConfig::colt_all())
            .with_accesses(2_000);
        let payload = (
            crate::sim::run(&w, &cfg),
            w.kernel.stats(),
            w.contiguity().average_contiguity(),
        );
        let encoded = payload.encode();
        let back = <(SimResult, KernelStats, f64)>::decode(&encoded).unwrap();
        assert_eq!(back.encode(), encoded, "decode must invert encode");
        assert_eq!(back.1, payload.1);
        assert_eq!(back.2, payload.2);
    }
}
