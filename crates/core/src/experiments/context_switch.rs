//! Context-switch sensitivity (extension): how CoLT's miss elimination
//! holds up when the TLBs are flushed periodically, as on a machine
//! without PCID/ASID tagging.
//!
//! Coalesced entries amortize one walk across several translations, so a
//! flushed CoLT hierarchy re-warms in fewer walks than a flushed
//! baseline — the same §4 fill-path property that makes cold misses
//! cheaper makes context switches cheaper.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::SimConfig;
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// The flush periods swept (accesses between context switches; `None` =
/// never).
pub const PERIODS: [Option<u64>; 4] = [None, Some(50_000), Some(10_000), Some(2_000)];

/// One benchmark's elimination at each flush period.
#[derive(Clone, Debug)]
pub struct ContextSwitchRow {
    /// Benchmark name.
    pub name: &'static str,
    /// CoLT-All L2 elimination (%) per period, [`PERIODS`] order.
    pub elim: [f64; 4],
}

/// Runs the context-switch sweep.
pub fn run(opts: &ExperimentOptions) -> (Vec<ContextSwitchRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (i, &period) in PERIODS.iter().enumerate() {
            for tlb in [TlbConfig::baseline(), TlbConfig::colt_all()] {
                let mut cfg = SimConfig {
                    pattern_seed: opts.seed,
                    ..SimConfig::new(tlb).with_accesses(opts.accesses)
                };
                cfg.flush_period = period;
                cells.push(SweepCell::sim(
                    format!("ctxswitch/{}/p{i}/{}", spec.name, tlb.mode.label()),
                    &scenario,
                    spec,
                    cfg,
                ));
            }
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<ContextSwitchRow> = specs
        .iter()
        .zip(results.chunks_exact(8))
        .map(|(spec, r)| {
            let mut elim = [0.0f64; 4];
            for (i, pair) in r.chunks_exact(2).enumerate() {
                elim[i] = pct_misses_eliminated(pair[0].tlb.l2_misses, pair[1].tlb.l2_misses);
            }
            ContextSwitchRow { name: spec.name, elim }
        })
        .collect();

    let mut table = Table::new(
        "Context switches: CoLT-All L2 elimination vs flush period (extension)",
        &["Benchmark", "no flush", "per 50k", "per 10k", "per 2k"],
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        for (s, v) in sums.iter_mut().zip(r.elim) {
            *s += v;
        }
        let mut cells = vec![r.name.to_string()];
        cells.extend(r.elim.iter().map(|v| f1(*v)));
        table.add_row(cells);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let mut cells = vec!["Average".to_string()];
        cells.extend(sums.iter().map(|s| f1(s / n)));
        table.add_row(cells);
    }
    (rows, ExperimentOutput { id: "ctxswitch", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colt_still_eliminates_misses_under_frequent_flushes() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM"]);
        let (rows, out) = run(&opts);
        let r = &rows[0];
        for (i, &e) in r.elim.iter().enumerate() {
            assert!(
                e > 10.0,
                "period {:?}: CoLT must keep eliminating misses, got {e:.1}%",
                PERIODS[i]
            );
        }
        assert!(out.render().contains("per 2k"));
    }
}
