//! The full §5.1.1 configuration grid: average contiguity for every one
//! of the paper's twelve system configurations (THS on/off × compaction
//! normal/low × memhog 0/25/50%).
//!
//! The paper measures all twelve but prints only five "due to space
//! constraints"; this reproduction has no such constraint.

use super::{ExperimentOptions, ExperimentOutput};
use crate::metrics::mean;
use crate::report::{f2, Table};
use crate::runner::{self, SweepCell};
use colt_workloads::scenario::Scenario;

/// One configuration's cross-benchmark summary.
#[derive(Clone, Debug)]
pub struct GridRow {
    /// Configuration name.
    pub scenario: String,
    /// Average contiguity across the selected benchmarks.
    pub avg_contiguity: f64,
    /// Fraction of benchmarks with average contiguity ≥ 4 (enough for
    /// full CoLT-SA coalescing).
    pub coalescible_share: f64,
}

/// Runs the twelve-configuration grid.
pub fn run(opts: &ExperimentOptions) -> (Vec<GridRow>, ExperimentOutput) {
    let scenarios: Vec<_> =
        Scenario::all_twelve().into_iter().map(|s| opts.scenario(s)).collect();
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for scenario in &scenarios {
        for spec in &specs {
            cells.push(SweepCell::new(
                format!("grid/{}/{}", scenario.name, spec.name),
                scenario,
                spec,
                0,
                |workload| workload.contiguity().average_contiguity(),
            ));
        }
    }
    let averages = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let mut rows = Vec::new();
    for (scenario, avgs) in scenarios.iter().zip(averages.chunks_exact(specs.len().max(1))) {
        let coalescible = avgs.iter().filter(|&&a| a >= 4.0).count() as f64
            / avgs.len().max(1) as f64;
        rows.push(GridRow {
            scenario: scenario.name.clone(),
            avg_contiguity: mean(avgs),
            coalescible_share: coalescible,
        });
    }

    let mut table = Table::new(
        "Configuration grid (sec 5.1.1): contiguity across all twelve kernel settings",
        &["configuration", "avg contiguity", "share of benchmarks >= 4-page contiguity"],
    );
    for r in &rows {
        table.add_row(vec![
            r.scenario.clone(),
            f2(r.avg_contiguity),
            f2(r.coalescible_share),
        ]);
    }
    (rows, ExperimentOutput { id: "grid", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_twelve_and_contiguity_exists_everywhere() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Gobmk", "Povray"]);
        let (rows, out) = run(&opts);
        assert_eq!(rows.len(), 12);
        // §6.6 conclusion 1 over the full grid: intermediate contiguity
        // exists under every single configuration.
        for r in &rows {
            assert!(
                r.avg_contiguity >= 1.0,
                "{}: contiguity must exist ({:.2})",
                r.scenario,
                r.avg_contiguity
            );
        }
        assert!(out.render().contains("memhog(50%)"));
    }
}
