//! Related-work comparison (paper §2.1/§2.4): CoLT versus TLB
//! prefetching with a distinct prefetch buffer.
//!
//! The paper argues qualitatively that coalescing dominates prefetching:
//! prefetches cost extra page walks and bandwidth and stage only one
//! translation per entry, while CoLT harvests up to eight translations
//! from the cache line the demand walk already fetched ("unlike prior
//! work on speculation or prefetching, CoLT does not augment the
//! standard TLBs with separate structures", §2.4). This experiment makes
//! that comparison quantitative.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::SimConfig;
use colt_tlb::config::TlbConfig;
use colt_tlb::prefetch::PrefetchConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// Comparison results for one benchmark.
#[derive(Clone, Debug)]
pub struct RelatedWorkRow {
    /// Benchmark name.
    pub name: &'static str,
    /// % of baseline L2 misses eliminated by a degree-1 prefetcher.
    pub prefetch1_elim: f64,
    /// % eliminated by a degree-2 prefetcher.
    pub prefetch2_elim: f64,
    /// % eliminated by CoLT-All.
    pub colt_elim: f64,
    /// Extra background walks per 1000 accesses the degree-2 prefetcher
    /// spends (CoLT spends zero).
    pub prefetch2_walk_overhead: f64,
}

/// Runs the prefetcher-vs-CoLT comparison.
pub fn run(opts: &ExperimentOptions) -> (Vec<RelatedWorkRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (label, tlb) in [
            ("base", TlbConfig::baseline()),
            (
                "pf1",
                TlbConfig::baseline()
                    .with_prefetch(PrefetchConfig { buffer_entries: 16, degree: 1 }),
            ),
            (
                "pf2",
                TlbConfig::baseline()
                    .with_prefetch(PrefetchConfig { buffer_entries: 16, degree: 2 }),
            ),
            ("colt", TlbConfig::colt_all()),
        ] {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(format!("related/{}/{label}", spec.name), &scenario, spec, cfg));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<RelatedWorkRow> = specs
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(spec, r)| {
            let (base, pf1, pf2, colt) = (&r[0], &r[1], &r[2], &r[3]);
            RelatedWorkRow {
                name: spec.name,
                prefetch1_elim: pct_misses_eliminated(base.tlb.l2_misses, pf1.tlb.l2_misses),
                prefetch2_elim: pct_misses_eliminated(base.tlb.l2_misses, pf2.tlb.l2_misses),
                colt_elim: pct_misses_eliminated(base.tlb.l2_misses, colt.tlb.l2_misses),
                prefetch2_walk_overhead: 2.0 * pf2.tlb.l2_misses as f64 * 1000.0
                    / pf2.tlb.accesses.max(1) as f64,
            }
        })
        .collect();

    let mut table = Table::new(
        "Related work: sequential TLB prefetching vs CoLT (L2 miss elimination %)",
        &["Benchmark", "prefetch d=1", "prefetch d=2", "CoLT-All", "pf d=2 walks/1k acc"],
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        let vals = [r.prefetch1_elim, r.prefetch2_elim, r.colt_elim, r.prefetch2_walk_overhead];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        table.add_row(vec![
            r.name.to_string(),
            f1(r.prefetch1_elim),
            f1(r.prefetch2_elim),
            f1(r.colt_elim),
            f1(r.prefetch2_walk_overhead),
        ]);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let mut cells = vec!["Average".to_string()];
        cells.extend(sums.iter().map(|s| f1(s / n)));
        table.add_row(cells);
    }
    (rows, ExperimentOutput { id: "related", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_helps_sequential_workloads_but_colt_wins() {
        // Bzip2 streams sequentially: a next-page prefetcher's best case.
        let opts = ExperimentOptions::quick().with_benchmarks(&["Bzip2"]);
        let (rows, out) = run(&opts);
        let r = &rows[0];
        assert!(
            r.prefetch1_elim > 0.0,
            "a sequential prefetcher must help a streaming workload ({:.1}%)",
            r.prefetch1_elim
        );
        assert!(
            r.colt_elim > r.prefetch1_elim,
            "CoLT-All ({:.1}%) must beat degree-1 prefetching ({:.1}%)",
            r.colt_elim,
            r.prefetch1_elim
        );
        assert!(r.prefetch2_walk_overhead > 0.0, "prefetching costs extra walks");
        assert!(out.render().contains("CoLT-All"));
    }

    #[test]
    fn next_page_prefetching_whiffs_on_wider_strides() {
        // CactusADM strides by 3 pages: v+1/v+2 prefetches are useless —
        // while CoLT coalesces the whole line and wins regardless.
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM"]);
        let (rows, _) = run(&opts);
        let r = &rows[0];
        assert!(r.prefetch1_elim.abs() < 5.0, "got {:.1}%", r.prefetch1_elim);
        assert!(r.colt_elim > 30.0, "got {:.1}%", r.colt_elim);
    }
}
