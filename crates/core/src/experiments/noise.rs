//! Seed-sensitivity study: how robust the headline Figure-18 averages
//! are to the randomness this reproduction introduces (the paper's
//! numbers come from single traces; ours from seeded synthetic
//! workloads, so the honest question is how much the seeds matter).
//!
//! Two axes are varied independently:
//! * **pattern seeds** — the access stream over a fixed memory layout;
//! * **scenario seeds** — the machine history (aging, interference,
//!   memhog placement), i.e. a different memory layout.

use super::{ExperimentOptions, ExperimentOutput};
use crate::metrics::mean;
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::SimConfig;
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// Mean and spread of one design's average elimination across seeds.
#[derive(Clone, Debug)]
pub struct NoiseRow {
    /// What was varied.
    pub axis: String,
    /// Design label.
    pub design: &'static str,
    /// Mean of the per-seed Figure-18 averages (%).
    pub mean_elim: f64,
    /// Min across seeds.
    pub min_elim: f64,
    /// Max across seeds.
    pub max_elim: f64,
}

fn elim_for(
    opts: &ExperimentOptions,
    scenario_seed: u64,
    pattern_seed: u64,
) -> [f64; 3] {
    let scenario = opts.scenario(Scenario::default_linux().with_seed(scenario_seed));
    let configs = [TlbConfig::colt_sa(), TlbConfig::colt_fa(), TlbConfig::colt_all()];
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (i, tlb) in std::iter::once(TlbConfig::baseline()).chain(configs).enumerate() {
            let cfg = SimConfig {
                pattern_seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(
                format!("noise/{}/s{scenario_seed:x}/p{pattern_seed:x}/v{i}", spec.name),
                &scenario,
                spec,
                cfg,
            ));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let mut sums = [0.0f64; 3];
    for chunk in results.chunks_exact(4) {
        for (i, r) in chunk[1..].iter().enumerate() {
            sums[i] += pct_misses_eliminated(chunk[0].tlb.l2_misses, r.tlb.l2_misses);
        }
    }
    let n = specs.len().max(1) as f64;
    [sums[0] / n, sums[1] / n, sums[2] / n]
}

/// Runs the seed-sensitivity study (3 pattern seeds × 3 scenario seeds).
pub fn run(opts: &ExperimentOptions) -> (Vec<NoiseRow>, ExperimentOutput) {
    let designs = ["CoLT-SA", "CoLT-FA", "CoLT-All"];
    let base_scenario_seed = 0xC011_7E57;
    let mut rows = Vec::new();

    // Axis 1: pattern seeds over the fixed default layout.
    let pattern_runs: Vec<[f64; 3]> = (0..3)
        .map(|i| elim_for(opts, base_scenario_seed, opts.seed.wrapping_add(i * 7919)))
        .collect();
    // Axis 2: scenario seeds with the fixed default pattern seed.
    let scenario_runs: Vec<[f64; 3]> = (0..3)
        .map(|i| elim_for(opts, base_scenario_seed.wrapping_add(i * 104_729), opts.seed))
        .collect();

    for (axis, runs) in [("pattern seed", &pattern_runs), ("machine history", &scenario_runs)] {
        for (d, design) in designs.iter().enumerate() {
            let vals: Vec<f64> = runs.iter().map(|r| r[d]).collect();
            rows.push(NoiseRow {
                axis: axis.to_string(),
                design,
                mean_elim: mean(&vals),
                min_elim: vals.iter().cloned().fold(f64::INFINITY, f64::min),
                max_elim: vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            });
        }
    }

    let mut table = Table::new(
        "Seed sensitivity of the Figure-18 averages (3 seeds per axis)",
        &["varied", "design", "mean L2 elim %", "min", "max"],
    );
    for r in &rows {
        table.add_row(vec![
            r.axis.clone(),
            r.design.to_string(),
            f1(r.mean_elim),
            f1(r.min_elim),
            f1(r.max_elim),
        ]);
    }
    (rows, ExperimentOutput { id: "noise", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_are_seed_robust() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM", "Gobmk"]);
        let (rows, out) = run(&opts);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.max_elim - r.min_elim < 40.0,
                "{} / {}: spread too wide ({:.1}..{:.1})",
                r.axis,
                r.design,
                r.min_elim,
                r.max_elim
            );
            assert!(r.mean_elim > 0.0, "{} / {} must eliminate misses", r.axis, r.design);
        }
        assert!(out.render().contains("machine history"));
    }
}
