//! Virtualization extension (not a paper figure; the paper's stated
//! expectation): "This number worsens to 50% in virtualized
//! environments" (§1) and "as applications with even larger working sets
//! or virtualization are considered, these performance improvements will
//! be even higher" (§7.2).
//!
//! Repeats the Figure-21 methodology with two-dimensional nested page
//! walks (each guest page-table access is itself host-translated), and
//! compares CoLT's performance improvement native vs virtualized.

use super::{ExperimentOptions, ExperimentOutput};
use crate::perf::PerfModel;
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::SimConfig;
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;

/// Virtualization results for one benchmark.
#[derive(Clone, Debug)]
pub struct VirtRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Native perfect-TLB headroom (%).
    pub native_perfect: f64,
    /// Native CoLT-All improvement (%).
    pub native_colt: f64,
    /// Virtualized perfect-TLB headroom (%).
    pub virt_perfect: f64,
    /// Virtualized CoLT-All improvement (%).
    pub virt_colt: f64,
}

/// Runs the virtualization study.
pub fn run(opts: &ExperimentOptions) -> (Vec<VirtRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let model = PerfModel::default();
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (label, tlb, nested) in [
            ("native-base", TlbConfig::baseline(), false),
            ("native-colt", TlbConfig::colt_all(), false),
            ("virt-base", TlbConfig::baseline(), true),
            ("virt-colt", TlbConfig::colt_all(), true),
        ] {
            let mut cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            if nested {
                cfg = cfg.virtualized();
            }
            cells.push(SweepCell::sim(format!("virt/{}/{label}", spec.name), &scenario, spec, cfg));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<VirtRow> = specs
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(spec, r)| VirtRow {
            name: spec.name,
            native_perfect: model.perfect_improvement_pct(&r[0]),
            native_colt: model.improvement_pct(&r[0], &r[1]),
            virt_perfect: model.perfect_improvement_pct(&r[2]),
            virt_colt: model.improvement_pct(&r[2], &r[3]),
        })
        .collect();

    let mut table = Table::new(
        "Virtualization: CoLT-All improvement, native vs nested paging (paper sec 7.2 expectation)",
        &["Benchmark", "native perfect", "native CoLT-All", "virt perfect", "virt CoLT-All"],
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        let vals = [r.native_perfect, r.native_colt, r.virt_perfect, r.virt_colt];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        table.add_row(vec![
            r.name.to_string(),
            f1(r.native_perfect),
            f1(r.native_colt),
            f1(r.virt_perfect),
            f1(r.virt_colt),
        ]);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let mut cells = vec!["Average".to_string()];
        cells.extend(sums.iter().map(|s| f1(s / n)));
        table.add_row(cells);
    }
    (rows, ExperimentOutput { id: "virt", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtualization_raises_colt_gains() {
        // The paper's §7.2 expectation: walk penalties triple under
        // nested paging, so the same eliminated misses buy more runtime.
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM"]);
        let (rows, out) = run(&opts);
        let r = &rows[0];
        assert!(
            r.virt_perfect > r.native_perfect,
            "nested walks must raise the perfect-TLB headroom ({:.1} vs {:.1})",
            r.virt_perfect,
            r.native_perfect
        );
        assert!(
            r.virt_colt > r.native_colt,
            "CoLT must gain more under virtualization ({:.1} vs {:.1})",
            r.virt_colt,
            r.native_colt
        );
        assert!(out.render().contains("virt CoLT-All"));
    }
}
