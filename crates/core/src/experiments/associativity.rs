//! Figure 20: does higher associativity substitute for coalescing?
//!
//! Three L2 configurations against the 4-way, 128-entry no-CoLT
//! baseline: 4-way with CoLT-SA, 8-way without CoLT, and 8-way with
//! CoLT-SA (fixed 128-entry size). The paper finds mere associativity
//! buys ~10% while CoLT-SA alone buys ~40% and the combination ~60%.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::{SimConfig, SimResult};
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// Results for one benchmark across the associativity study.
#[derive(Clone, Debug)]
pub struct AssocRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The 4-way no-CoLT baseline.
    pub baseline: SimResult,
    /// 4-way CoLT-SA / 8-way no CoLT / 8-way CoLT-SA.
    pub variants: [SimResult; 3],
}

impl AssocRow {
    /// Percent of baseline L2 misses eliminated by variant `i`.
    pub fn l2_elim(&self, i: usize) -> f64 {
        pct_misses_eliminated(self.baseline.tlb.l2_misses, self.variants[i].tlb.l2_misses)
    }
}

/// The variant labels, in order.
pub const VARIANTS: [&str; 3] = ["4-way CoLT-SA", "8-way no CoLT", "8-way CoLT-SA"];

/// Runs the associativity study.
pub fn run(opts: &ExperimentOptions) -> (Vec<AssocRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let configs = [
        TlbConfig::colt_sa(),
        TlbConfig::baseline().with_l2_ways(8),
        TlbConfig::colt_sa().with_l2_ways(8),
    ];
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (i, tlb) in std::iter::once(TlbConfig::baseline()).chain(configs).enumerate() {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(format!("fig20/{}/v{i}", spec.name), &scenario, spec, cfg));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<AssocRow> = specs
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(spec, r)| AssocRow {
            name: spec.name,
            baseline: r[0],
            variants: [r[1], r[2], r[3]],
        })
        .collect();

    let mut table = Table::new(
        "Figure 20: % of 4-way baseline L2 misses eliminated (paper avg: 40 / 10 / 60)",
        &["Benchmark", VARIANTS[0], VARIANTS[1], VARIANTS[2]],
    );
    let mut sums = [0.0f64; 3];
    for r in &rows {
        let vals = [r.l2_elim(0), r.l2_elim(1), r.l2_elim(2)];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        table.add_row(vec![r.name.to_string(), f1(vals[0]), f1(vals[1]), f1(vals[2])]);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        table.add_row(vec![
            "Average".to_string(),
            f1(sums[0] / n),
            f1(sums[1] / n),
            f1(sums[2] / n),
        ]);
    }
    (rows, ExperimentOutput { id: "fig20", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_with_8way_is_at_least_as_good_as_4way_coalescing() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["CactusADM"]);
        let (rows, _) = run(&opts);
        let r = &rows[0];
        assert!(
            r.l2_elim(2) + 8.0 >= r.l2_elim(0),
            "8-way CoLT-SA ({:.1}%) should not trail 4-way CoLT-SA ({:.1}%) badly",
            r.l2_elim(2),
            r.l2_elim(0)
        );
    }

    #[test]
    fn study_compares_three_variants() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Gobmk"]);
        let (rows, out) = run(&opts);
        assert_eq!(rows[0].variants.len(), 3);
        assert!(out.render().contains("8-way CoLT-SA"));
    }
}
