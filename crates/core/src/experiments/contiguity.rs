//! Figures 7–15: contiguity CDFs of non-superpage pages under three
//! kernel configurations, with per-benchmark averages in the legends.
//!
//! * Figures 7–9 — THS on, normal compaction (scenario 1),
//! * Figures 10–12 — THS off, normal compaction (scenario 2),
//! * Figures 13–15 — THS off, low compaction (scenario 3).
//!
//! This experiment needs no TLB simulation: it allocates each benchmark
//! under the scenario and scans its page table, exactly like the paper's
//! instrumented-kernel walk (§5.1.1).

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f2, Table};
use crate::runner::{self, SweepCell};
use colt_os_mem::contiguity::PAPER_CDF_POINTS;
use colt_workloads::scenario::Scenario;

/// Which kernel configuration (and hence figure group) to reproduce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContiguityConfig {
    /// Figures 7–9: THS on, normal compaction.
    ThsOn,
    /// Figures 10–12: THS off, normal compaction.
    ThsOff,
    /// Figures 13–15: THS off, low compaction.
    LowCompaction,
}

impl ContiguityConfig {
    /// The scenario implementing this configuration.
    pub fn scenario(self) -> Scenario {
        match self {
            ContiguityConfig::ThsOn => Scenario::default_linux(),
            ContiguityConfig::ThsOff => Scenario::no_ths(),
            ContiguityConfig::LowCompaction => Scenario::no_ths_low_compaction(),
        }
    }

    /// The figure numbers this configuration reproduces.
    pub fn figures(self) -> &'static str {
        match self {
            ContiguityConfig::ThsOn => "Figures 7-9",
            ContiguityConfig::ThsOff => "Figures 10-12",
            ContiguityConfig::LowCompaction => "Figures 13-15",
        }
    }

    /// The paper's per-benchmark average for this configuration.
    pub fn paper_average(self, paper: &colt_workloads::PaperBenchmark) -> f64 {
        match self {
            ContiguityConfig::ThsOn => paper.contig_ths_on,
            ContiguityConfig::ThsOff => paper.contig_ths_off,
            ContiguityConfig::LowCompaction => paper.contig_low_compaction,
        }
    }
}

/// One benchmark's contiguity distribution.
#[derive(Clone, Debug)]
pub struct ContiguityRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Measured average contiguity (the figure legend number).
    pub average: f64,
    /// Paper's legend value.
    pub paper_average: f64,
    /// CDF evaluated at the paper's ticks (1, 4, 16, 64, 256, 1024).
    pub cdf: Vec<f64>,
    /// Fraction of pages with ≥512-page contiguity (§6.1's statistic).
    pub over_512: f64,
}

impl crate::journal::JournalPayload for ContiguityRow {
    fn encode(&self) -> String {
        let mut e = crate::journal::Enc::new("contig1")
            .s(self.name)
            .f(self.average)
            .f(self.paper_average)
            .u(self.cdf.len() as u64);
        for &point in &self.cdf {
            e = e.f(point);
        }
        e.f(self.over_512).done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = crate::journal::Dec::new(s, "contig1")?;
        // The &'static name comes back through the benchmark registry.
        let name = colt_workloads::spec::benchmark(&d.s()?)?.name;
        let average = d.f()?;
        let paper_average = d.f()?;
        let n = usize::try_from(d.u()?).ok()?;
        let mut cdf = Vec::with_capacity(n);
        for _ in 0..n {
            cdf.push(d.f()?);
        }
        let row = ContiguityRow { name, average, paper_average, cdf, over_512: d.f()? };
        d.exhausted().then_some(row)
    }
}

/// Runs the contiguity characterization for one kernel configuration.
pub fn run(config: ContiguityConfig, opts: &ExperimentOptions) -> (Vec<ContiguityRow>, ExperimentOutput) {
    let scenario = opts.scenario(config.scenario());
    let cells: Vec<SweepCell<ContiguityRow>> = opts
        .selected_benchmarks()
        .into_iter()
        .map(|spec| {
            let paper_average = config.paper_average(spec.paper);
            let name = spec.name;
            SweepCell::new(
                format!("contiguity/{}/{name}", scenario.name),
                &scenario,
                &spec,
                0,
                move |workload| {
                    let report = workload.contiguity();
                    ContiguityRow {
                        name,
                        average: report.average_contiguity(),
                        paper_average,
                        cdf: report.cdf(&PAPER_CDF_POINTS),
                        over_512: report.fraction_with_contiguity_at_least(512),
                    }
                },
            )
        })
        .collect();
    let rows = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));

    let mut headers = vec!["Benchmark", "avg", "paper avg"];
    let tick_labels: Vec<String> =
        PAPER_CDF_POINTS.iter().map(|p| format!("cdf@{p}")).collect();
    headers.extend(tick_labels.iter().map(String::as_str));
    headers.push(">=512");
    let mut table = Table::new(
        format!("{} ({}): contiguity CDF of non-superpage pages", config.figures(), scenario.name),
        &headers,
    );
    let mut avg_sum = 0.0;
    for r in &rows {
        let mut cells = vec![r.name.to_string(), f2(r.average), f2(r.paper_average)];
        cells.extend(r.cdf.iter().map(|c| f2(*c)));
        cells.push(f2(r.over_512));
        table.add_row(cells);
        avg_sum += r.average;
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let paper_avg: f64 = rows.iter().map(|r| r.paper_average).sum::<f64>() / n;
        let mut cells = vec!["Average".to_string(), f2(avg_sum / n), f2(paper_avg)];
        cells.extend(std::iter::repeat_n("-".to_string(), PAPER_CDF_POINTS.len() + 1));
        table.add_row(cells);
    }
    (rows, ExperimentOutput { id: "contiguity", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ths_on_beats_low_compaction_on_average() {
        // The paper's macro trend: config 1 (41.2) > config 3 (15.4).
        let opts = ExperimentOptions::quick().with_benchmarks(&["Mcf", "CactusADM", "Milc"]);
        let (on, _) = run(ContiguityConfig::ThsOn, &opts);
        let (low, _) = run(ContiguityConfig::LowCompaction, &opts);
        let avg = |rows: &[ContiguityRow]| {
            rows.iter().map(|r| r.average).sum::<f64>() / rows.len() as f64
        };
        assert!(
            avg(&on) > avg(&low),
            "THS-on avg ({:.1}) must exceed low-compaction avg ({:.1})",
            avg(&on),
            avg(&low)
        );
    }

    #[test]
    fn cdfs_are_monotone_and_terminate_at_one() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Sjeng", "Xalancbmk"]);
        let (rows, out) = run(ContiguityConfig::ThsOff, &opts);
        for r in &rows {
            for w in r.cdf.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "{}: CDF must be monotone", r.name);
            }
            assert!((r.cdf.last().unwrap() - 1.0).abs() < 1e-9);
        }
        assert!(out.render().contains("Average"));
    }
}
