//! Figure 18: percentage of baseline L1 and L2 TLB misses eliminated by
//! CoLT-SA, CoLT-FA, and CoLT-All.
//!
//! Baseline: 32-entry/128-entry 4-way L1/L2 plus a 16-entry superpage
//! TLB. CoLT-SA keeps the 16-entry superpage TLB and shifts the index
//! bits by two; CoLT-FA and CoLT-All conservatively halve the superpage
//! TLB to 8 entries (§7.1.1). All four designs replay the same workload
//! under the default Linux scenario.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f1, Table};
use crate::runner::{self, SweepCell};
use crate::sim::{SimConfig, SimResult};
use colt_tlb::config::TlbConfig;
use colt_tlb::stats::pct_misses_eliminated;
use colt_workloads::scenario::Scenario;

/// Results of the four designs for one benchmark.
#[derive(Clone, Debug)]
pub struct EliminationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline / CoLT-SA / CoLT-FA / CoLT-All results.
    pub results: [SimResult; 4],
}

impl EliminationRow {
    /// Percent of baseline L1 misses eliminated by design `i`
    /// (1 = SA, 2 = FA, 3 = All).
    pub fn l1_elim(&self, i: usize) -> f64 {
        pct_misses_eliminated(self.results[0].tlb.l1_misses, self.results[i].tlb.l1_misses)
    }

    /// Percent of baseline L2 misses eliminated by design `i`.
    pub fn l2_elim(&self, i: usize) -> f64 {
        pct_misses_eliminated(self.results[0].tlb.l2_misses, self.results[i].tlb.l2_misses)
    }
}

/// The four Figure-18 TLB configurations.
pub fn figure18_configs() -> [TlbConfig; 4] {
    [
        TlbConfig::baseline(),
        TlbConfig::colt_sa(),
        TlbConfig::colt_fa(),
        TlbConfig::colt_all(),
    ]
}

/// Runs all four designs over one benchmark set.
pub fn run(opts: &ExperimentOptions) -> (Vec<EliminationRow>, ExperimentOutput) {
    let scenario = opts.scenario(Scenario::default_linux());
    let configs = figure18_configs();
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (label, tlb) in ["base", "SA", "FA", "All"].iter().zip(configs) {
            let cfg = SimConfig {
                pattern_seed: opts.seed,
                ..SimConfig::new(tlb).with_accesses(opts.accesses)
            };
            cells.push(SweepCell::sim(format!("fig18/{}/{label}", spec.name), &scenario, spec, cfg));
        }
    }
    let results = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<EliminationRow> = specs
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(spec, r)| EliminationRow {
            name: spec.name,
            results: [r[0], r[1], r[2], r[3]],
        })
        .collect();

    let mut table = Table::new(
        "Figure 18: % of baseline TLB misses eliminated (paper avg: SA 40, FA/All ~55)",
        &["Benchmark", "L1 SA", "L1 FA", "L1 All", "L2 SA", "L2 FA", "L2 All"],
    );
    let mut sums = [0.0f64; 6];
    for r in &rows {
        let vals = [
            r.l1_elim(1),
            r.l1_elim(2),
            r.l1_elim(3),
            r.l2_elim(1),
            r.l2_elim(2),
            r.l2_elim(3),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        let mut cells = vec![r.name.to_string()];
        cells.extend(vals.iter().map(|v| f1(*v)));
        table.add_row(cells);
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let mut cells = vec!["Average".to_string()];
        cells.extend(sums.iter().map(|s| f1(s / n)));
        table.add_row(cells);
    }
    (rows, ExperimentOutput { id: "fig18", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_eliminate_misses_on_contiguous_benchmarks() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Bzip2", "CactusADM"]);
        let (rows, out) = run(&opts);
        for r in &rows {
            for design in 1..4 {
                assert!(
                    r.l2_elim(design) > 0.0,
                    "{}: design {design} must eliminate L2 misses, got {:.1}%",
                    r.name,
                    r.l2_elim(design)
                );
            }
        }
        assert!(out.render().contains("Average"));
    }

    #[test]
    fn rows_expose_all_four_results() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Povray"]);
        let (rows, _) = run(&opts);
        assert_eq!(rows.len(), 1);
        // Baseline elimination of itself is zero by definition.
        assert_eq!(rows[0].l1_elim(0), 0.0);
        assert_eq!(rows[0].l2_elim(0), 0.0);
    }
}
