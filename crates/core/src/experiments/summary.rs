//! One-stop validation: runs the headline experiments and prints the
//! paper-vs-measured scorecard (the EXPERIMENTS.md summary table),
//! including rank correlations of per-benchmark orderings.

use super::{associativity, contiguity, miss_elimination, performance, ExperimentOptions,
    ExperimentOutput};
use crate::metrics::{mean, rank_correlation};
use crate::report::{f2, Table};
use colt_workloads::calibration::{
    PAPER_AGGREGATES, PAPER_AVG_CONTIG_LOW_COMPACTION, PAPER_AVG_CONTIG_THS_OFF,
    PAPER_AVG_CONTIG_THS_ON,
};

/// One scorecard line.
#[derive(Clone, Debug)]
pub struct SummaryRow {
    /// Metric name.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// This reproduction's value.
    pub measured: f64,
    /// Shape check: same sign and within 3× (or rank correlation > 0.5).
    pub ok: bool,
}

fn row(metric: &str, paper: f64, measured: f64) -> SummaryRow {
    let ratio = if paper != 0.0 { measured / paper } else { 1.0 };
    SummaryRow {
        metric: metric.to_string(),
        paper,
        measured,
        ok: ratio > 1.0 / 3.0 && ratio < 3.0,
    }
}

/// Runs the scorecard.
pub fn run(opts: &ExperimentOptions) -> (Vec<SummaryRow>, ExperimentOutput) {
    let mut rows = Vec::new();

    // Contiguity averages + per-benchmark rank correlation (THS on).
    let (on, _) = contiguity::run(contiguity::ContiguityConfig::ThsOn, opts);
    let (off, _) = contiguity::run(contiguity::ContiguityConfig::ThsOff, opts);
    let (low, _) = contiguity::run(contiguity::ContiguityConfig::LowCompaction, opts);
    let avg = |rows: &[contiguity::ContiguityRow]| {
        mean(&rows.iter().map(|r| r.average).collect::<Vec<_>>())
    };
    rows.push(row("avg contiguity, THS on", PAPER_AVG_CONTIG_THS_ON, avg(&on)));
    rows.push(row("avg contiguity, THS off", PAPER_AVG_CONTIG_THS_OFF, avg(&off)));
    rows.push(row(
        "avg contiguity, low compaction",
        PAPER_AVG_CONTIG_LOW_COMPACTION,
        avg(&low),
    ));
    if on.len() >= 3 {
        let measured: Vec<f64> = on.iter().map(|r| r.average).collect();
        let paper: Vec<f64> = on.iter().map(|r| r.paper_average).collect();
        let rho = rank_correlation(&measured, &paper);
        rows.push(SummaryRow {
            metric: "contiguity rank correlation (THS on)".into(),
            paper: 1.0,
            measured: rho,
            ok: rho > 0.5,
        });
    }

    // Figure 18 averages.
    let (elim, _) = miss_elimination::run(opts);
    let avg_elim = |design: usize| {
        mean(&elim.iter().map(|r| r.l2_elim(design)).collect::<Vec<_>>())
    };
    let paper18 = PAPER_AGGREGATES.fig18_avg_elimination;
    rows.push(row("fig18 avg L2 elim, CoLT-SA (%)", paper18[0], avg_elim(1)));
    rows.push(row("fig18 avg L2 elim, CoLT-FA (%)", paper18[1], avg_elim(2)));
    rows.push(row("fig18 avg L2 elim, CoLT-All (%)", paper18[2], avg_elim(3)));

    // Figure 20: coalescing vs associativity.
    let (assoc, _) = associativity::run(opts);
    let avg_assoc = |i: usize| {
        mean(&assoc.iter().map(|r| r.l2_elim(i)).collect::<Vec<_>>())
    };
    let paper20 = PAPER_AGGREGATES.fig20_avg_elimination;
    rows.push(row("fig20 4-way CoLT-SA (%)", paper20[0], avg_assoc(0)));
    rows.push(SummaryRow {
        metric: "fig20 coalescing beats associativity".into(),
        paper: 1.0,
        measured: f64::from(avg_assoc(0) > avg_assoc(1)),
        ok: avg_assoc(0) > avg_assoc(1),
    });

    // Figure 21 averages.
    let (perf, _) = performance::run(opts);
    let paper21 = PAPER_AGGREGATES.fig21_avg_perf;
    let avg_perf = |i: usize| mean(&perf.iter().map(|r| r.colt[i]).collect::<Vec<_>>());
    rows.push(row("fig21 avg speedup, CoLT-SA (%)", paper21[0], avg_perf(0)));
    rows.push(row("fig21 avg speedup, CoLT-FA (%)", paper21[1], avg_perf(1)));
    rows.push(row("fig21 avg speedup, CoLT-All (%)", paper21[2], avg_perf(2)));

    let mut table = Table::new(
        "Scorecard: paper vs measured (shape check: within 3x / rank rho > 0.5)",
        &["metric", "paper", "measured", "verdict"],
    );
    for r in &rows {
        table.add_row(vec![
            r.metric.clone(),
            f2(r.paper),
            f2(r.measured),
            if r.ok { "OK".into() } else { "DEVIATES".into() },
        ]);
    }
    (rows, ExperimentOutput { id: "summary", tables: vec![table] })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorecard_runs_and_mostly_passes() {
        let opts = ExperimentOptions::quick()
            .with_benchmarks(&["Mcf", "CactusADM", "Bzip2", "Gobmk"]);
        let (rows, out) = run(&opts);
        assert!(rows.len() >= 10);
        let passing = rows.iter().filter(|r| r.ok).count();
        assert!(
            passing * 2 > rows.len(),
            "most scorecard rows must pass at quick scale ({passing}/{})",
            rows.len()
        );
        assert!(out.render().contains("verdict"));
    }
}
