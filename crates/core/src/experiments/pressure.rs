//! Memory-pressure fault-injection sweep (`pressure` experiment).
//!
//! Robustness study, not a paper figure: every TLB configuration (the
//! four paper designs plus their future-work variants) is simulated on
//! workloads prepared by a kernel suffering *injected* memory-pressure
//! faults — buddy-allocation failures, direct-compaction aborts, and
//! reclaim spikes from a seeded [`FaultPlan`](colt_os_mem::faults) —
//! at increasing intensity (rate 0, rate/2, rate). The interesting
//! questions:
//!
//! * does graceful degradation hold (THP base-page fallback + deferred
//!   khugepaged collapse, compaction backoff, emergency reclaim, the
//!   deterministic OOM killer), i.e. does every sweep cell still
//!   complete and stay deterministic, and
//! * what does degraded contiguity cost CoLT — how much of the
//!   miss-elimination headline survives when superpage allocation keeps
//!   failing underneath it.
//!
//! The sweep runs through [`runner::run_cells_sweep`], so a cell that
//! dies is retried (`--retries`), then quarantined as a failure row
//! instead of killing the sweep — the BENCH json carries partial
//! results plus the failure report. With a journal in the options the
//! sweep is also crash-safe: finished cells are fsynced to
//! `results/journal/pressure.jsonl` and `--resume` replays them.
//!
//! With `--cores N` (N > 1) an SMP leg rides along: the light
//! eight-benchmark mix on N ASID-tagged cores, with the fault plan
//! installed in the shared kernel *after* preparation, so kernel churn
//! degrades (and OOM-kills) live under cross-core shootdown traffic.

use super::smp::MIX_LIGHT;
use super::{ExperimentOptions, ExperimentOutput};
use crate::check::check_configs;
use crate::report::Table;
use crate::runner::{self, CellOutcome, SweepCell, SweepTask};
use crate::sim::SimConfig;
use colt_os_mem::faults::FaultConfig;
use colt_os_mem::kernel::KernelStats;
use colt_os_mem::policy::PolicyKind;
use colt_smp::{SmpConfig, SmpMachine};
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::{benchmark, BenchmarkSpec};

/// Default benchmark subset: the paper's largest footprint (Mcf), the
/// two headline mid-size programs, and a small one — enough spread to
/// see degradation without sweeping all 14 at 24 cells each.
pub const DEFAULT_BENCHMARKS: [&str; 4] = ["Mcf", "Gobmk", "Xalancbmk", "Bzip2"];

/// One (benchmark × TLB config × fault intensity) measurement.
#[derive(Clone, Debug)]
pub struct PressureRow {
    /// Benchmark name.
    pub benchmark: String,
    /// TLB configuration label ("Baseline", "CoLT-All+fw", ...).
    pub config: String,
    /// Injected fault rate for this cell (0.0 = clean baseline).
    pub rate: f64,
    /// Memory references simulated.
    pub accesses: u64,
    /// L1-level TLB misses.
    pub l1_misses: u64,
    /// Page walks (L2 misses).
    pub walks: u64,
    /// Cycles spent walking.
    pub walk_cycles: u64,
    /// Kernel degradation counters from the preparation phase.
    pub kernel: KernelStats,
}

/// One SMP measurement under injection (only with `--cores N`, N > 1).
#[derive(Clone, Debug)]
pub struct SmpPressureRow {
    /// Injected fault rate (0.0 = clean baseline).
    pub rate: f64,
    /// Core count.
    pub cores: usize,
    /// Aggregate memory references.
    pub accesses: u64,
    /// Aggregate page walks.
    pub walks: u64,
    /// Shootdown IPIs sent.
    pub ipis_sent: u64,
    /// Kernel counters after the run (includes live-phase degradation).
    pub kernel: KernelStats,
}

impl crate::journal::JournalPayload for SmpPressureRow {
    fn encode(&self) -> String {
        let e = crate::journal::Enc::new("smpress2")
            .f(self.rate)
            .u(self.cores as u64)
            .u(self.accesses)
            .u(self.walks)
            .u(self.ipis_sent);
        crate::journal::enc_kernel(e, &self.kernel).done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = crate::journal::Dec::new(s, "smpress2")?;
        let row = SmpPressureRow {
            rate: d.f()?,
            cores: usize::try_from(d.u()?).ok()?,
            accesses: d.u()?,
            walks: d.u()?,
            ipis_sent: d.u()?,
            kernel: crate::journal::dec_kernel(&mut d)?,
        };
        d.exhausted().then_some(row)
    }
}

/// A sweep cell that died (panic, failed preparation, or hard-deadline
/// expiry) on every attempt the watchdog allowed it.
#[derive(Clone, Debug)]
pub struct FailedCell {
    /// Label of the failed cell.
    pub label: String,
    /// Panic message, preparation error, or deadline report.
    pub payload: String,
    /// Attempts consumed (1 = failed its only try; >1 = quarantined
    /// after retries).
    pub attempts: u32,
}

/// Everything the pressure sweep produced: per-cell rows, the SMP leg,
/// and the failure report (empty on a healthy run).
#[derive(Clone, Debug, Default)]
pub struct PressureReport {
    /// Single-core rows, in (benchmark, rate, config) order.
    pub rows: Vec<PressureRow>,
    /// SMP rows, in rate order (empty unless `--cores N`, N > 1).
    pub smp_rows: Vec<SmpPressureRow>,
    /// Cells that failed; the sweep still completed around them.
    pub failures: Vec<FailedCell>,
}

/// The swept fault intensities: clean, half rate, full rate (deduped —
/// rate 0.0 sweeps only the clean point).
fn intensities(max: f64) -> Vec<f64> {
    let mut out = vec![0.0, max / 2.0, max];
    out.dedup();
    out
}

fn scenario_for(rate: f64, base: FaultConfig, policy: PolicyKind) -> Scenario {
    let scenario = Scenario::default_linux().with_policy(policy);
    if rate > 0.0 {
        scenario.with_faults(FaultConfig { rate, ..base })
    } else {
        scenario
    }
}

/// Runs the sweep. Deterministic at any `jobs` width.
pub fn run(opts: &ExperimentOptions) -> (PressureReport, ExperimentOutput) {
    let base_cfg = opts.faults.unwrap_or_default();
    let specs: Vec<BenchmarkSpec> = match &opts.benchmarks {
        Some(_) => opts.selected_benchmarks(),
        None => DEFAULT_BENCHMARKS
            .iter()
            .map(|n| benchmark(n).expect("Table-1 benchmark"))
            .collect(),
    };
    let rates = intensities(base_cfg.rate);
    let configs = check_configs();

    let mut meta: Vec<(String, String, f64)> = Vec::new();
    let mut cells: Vec<SweepCell<(crate::sim::SimResult, KernelStats)>> = Vec::new();
    for spec in &specs {
        for &rate in &rates {
            let scenario = scenario_for(rate, base_cfg, opts.policy);
            for (cname, tlb_cfg) in &configs {
                let label = format!("pressure/{}/{cname}/r{rate:.3}", spec.name);
                let cfg = SimConfig {
                    pattern_seed: opts.seed,
                    ..SimConfig::new(*tlb_cfg).with_accesses(opts.accesses)
                };
                meta.push((spec.name.to_string(), cname.clone(), rate));
                let refs = cfg.warmup + cfg.accesses;
                cells.push(SweepCell::new(label, &scenario, spec, refs, move |w| {
                    (crate::sim::run(w, &cfg), w.kernel.stats())
                }));
            }
        }
    }

    let mut report = PressureReport::default();
    for (outcome, (bench, cname, rate)) in
        runner::run_cells_sweep(cells, &opts.sweep()).into_iter().zip(meta)
    {
        match outcome {
            CellOutcome::Ok((sim, kernel)) => report.rows.push(PressureRow {
                benchmark: bench,
                config: cname,
                rate,
                accesses: sim.tlb.accesses,
                l1_misses: sim.tlb.l1_misses,
                walks: sim.tlb.l2_misses,
                walk_cycles: sim.walk_cycles,
                kernel,
            }),
            CellOutcome::Failed { label, payload } => {
                report.failures.push(FailedCell { label, payload, attempts: 1 });
            }
            CellOutcome::Quarantined { label, attempts, reason } => {
                report.failures.push(FailedCell { label, payload: reason, attempts });
            }
        }
    }

    if opts.cores > 1 {
        run_smp_leg(opts, base_cfg, &rates, &mut report);
    }

    let mut tables = vec![sweep_table(&report, base_cfg)];
    if !report.smp_rows.is_empty() {
        tables.push(smp_table(&report.smp_rows));
    }
    if !report.failures.is_empty() {
        tables.push(failure_table(&report.failures));
    }
    (report, ExperimentOutput { id: "pressure", tables })
}

/// The SMP leg: the light mix at `opts.cores` tagged cores per
/// intensity, fault plan armed after preparation.
fn run_smp_leg(
    opts: &ExperimentOptions,
    base_cfg: FaultConfig,
    rates: &[f64],
    report: &mut PressureReport,
) {
    let cores = opts.cores;
    let accesses = opts.accesses;
    let seed = opts.seed;
    let policy = opts.policy;
    let tasks: Vec<SweepTask<SmpPressureRow>> = rates
        .iter()
        .map(|&rate| {
            let refs = cores as u64 * (accesses + accesses / 10);
            SweepTask::new(format!("pressure/smp/{cores}c/r{rate:.3}"), refs, move || {
                let specs: Vec<_> = MIX_LIGHT
                    .iter()
                    .map(|n| benchmark(n).expect("Table-1 benchmark"))
                    .collect();
                let multi = Scenario::default_linux()
                    .with_policy(policy)
                    .prepare_many(&specs)
                    .unwrap_or_else(|e| panic!("prepare_many(pressure/smp): {e}"));
                let cfg = SmpConfig::new(cores, colt_tlb::config::TlbConfig::colt_all())
                    .tagged();
                let mut machine = SmpMachine::new(multi, cfg, seed);
                if rate > 0.0 {
                    machine.install_fault_plan(FaultConfig { rate, ..base_cfg });
                }
                machine.run(accesses / 10);
                machine.mark();
                machine.run(accesses);
                let agg = machine.result().aggregate();
                SmpPressureRow {
                    rate,
                    cores,
                    accesses: agg.counters.accesses,
                    walks: agg.tlb.l2_misses,
                    ipis_sent: agg.counters.ipis_sent,
                    kernel: machine.kernel_stats(),
                }
            })
        })
        .collect();
    for outcome in runner::run_tasks_sweep(tasks, &opts.sweep()) {
        match outcome {
            CellOutcome::Ok(row) => report.smp_rows.push(row),
            CellOutcome::Failed { label, payload } => {
                report.failures.push(FailedCell { label, payload, attempts: 1 });
            }
            CellOutcome::Quarantined { label, attempts, reason } => {
                report.failures.push(FailedCell { label, payload: reason, attempts });
            }
        }
    }
}

/// Walks eliminated vs the baseline TLB at the *same* (benchmark,
/// rate): how much of CoLT's win survives degraded contiguity.
fn elimination(rows: &[PressureRow], row: &PressureRow) -> Option<f64> {
    let base = rows.iter().find(|r| {
        r.benchmark == row.benchmark && r.rate == row.rate && r.config == "Baseline"
    })?;
    if base.walks == 0 {
        return None;
    }
    Some(100.0 * (1.0 - row.walks as f64 / base.walks as f64))
}

fn sweep_table(report: &PressureReport, base_cfg: FaultConfig) -> Table {
    let mut table = Table::new(
        format!(
            "Fault-injection pressure sweep (robustness): rates {:?}, window {}, seed {} \
             — kernel counters are from the preparation phase",
            intensities(base_cfg.rate),
            base_cfg.window,
            base_cfg.seed
        ),
        &[
            "benchmark", "config", "rate", "walks", "% elim vs base",
            "faults", "thp fallbacks", "collapse retries", "compact deferred", "oom kills",
        ],
    );
    for r in &report.rows {
        let elim = elimination(&report.rows, r)
            .map_or_else(|| "-".to_string(), |e| format!("{e:.1}"));
        table.add_row(vec![
            r.benchmark.clone(),
            r.config.clone(),
            format!("{:.3}", r.rate),
            r.walks.to_string(),
            elim,
            r.kernel.faults_injected.to_string(),
            r.kernel.thp_fallbacks.to_string(),
            r.kernel.thp_deferred_retries.to_string(),
            r.kernel.compact_deferred.to_string(),
            r.kernel.oom_kills.to_string(),
        ]);
    }
    table
}

fn smp_table(rows: &[SmpPressureRow]) -> Table {
    let mut table = Table::new(
        "Pressure SMP leg: light8 mix, ASID-tagged CoLT-All, fault plan armed post-prep"
            .to_string(),
        &["rate", "cores", "walks", "IPIs sent", "faults", "oom kills", "thp fallbacks"],
    );
    for r in rows {
        table.add_row(vec![
            format!("{:.3}", r.rate),
            r.cores.to_string(),
            r.walks.to_string(),
            r.ipis_sent.to_string(),
            r.kernel.faults_injected.to_string(),
            r.kernel.oom_kills.to_string(),
            r.kernel.thp_fallbacks.to_string(),
        ]);
    }
    table
}

fn failure_table(failures: &[FailedCell]) -> Table {
    let mut table = Table::new(
        "Failed cells (sweep completed around them)".to_string(),
        &["cell", "attempts", "cause"],
    );
    for f in failures {
        let mut cause = f.payload.clone();
        cause.truncate(80);
        table.add_row(vec![f.label.clone(), f.attempts.to_string(), cause]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExperimentOptions {
        ExperimentOptions {
            accesses: 5_000,
            ..ExperimentOptions::quick().with_benchmarks(&["Gobmk"])
        }
    }

    #[test]
    fn sweep_completes_with_no_failures_and_injects_faults() {
        let (report, out) = run(&tiny_opts());
        assert_eq!(out.id, "pressure");
        // 1 benchmark × 3 intensities × 8 configs.
        assert_eq!(report.rows.len(), 24);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let clean: Vec<_> = report.rows.iter().filter(|r| r.rate == 0.0).collect();
        let faulted: Vec<_> = report.rows.iter().filter(|r| r.rate > 0.0).collect();
        assert!(clean.iter().all(|r| r.kernel.faults_injected == 0));
        assert!(
            faulted.iter().all(|r| r.kernel.faults_injected > 0),
            "every faulted cell must see injections"
        );
        // Degradation must be visible: the faulted preparations fall
        // back to base pages at least once.
        assert!(faulted.iter().any(|r| r.kernel.thp_fallbacks > 0));
    }

    #[test]
    fn sweep_is_deterministic_at_any_jobs_width() {
        let (a, _) = run(&tiny_opts().with_jobs(1));
        let (b, _) = run(&tiny_opts().with_jobs(8));
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!((x.benchmark.as_str(), x.config.as_str()), (y.benchmark.as_str(), y.config.as_str()));
            assert_eq!(x.walks, y.walks);
            assert_eq!(x.kernel, y.kernel);
        }
    }

    #[test]
    fn intensities_dedupe_the_zero_rate() {
        assert_eq!(intensities(0.0), vec![0.0]);
        assert_eq!(intensities(0.1), vec![0.0, 0.05, 0.1]);
    }
}
