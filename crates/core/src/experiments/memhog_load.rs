//! Figures 16 and 17: average contiguity under memhog load.
//!
//! Figure 16 uses the default Linux setting (THS on, normal compaction)
//! with memhog fragmenting 0%, 25%, and 50% of memory; Figure 17 repeats
//! with THS off. The paper's headline observation: moderate load (25%)
//! can *increase* contiguity because it triggers the compaction daemon
//! more often, while heavy load (50%) reduces it.

use super::{ExperimentOptions, ExperimentOutput};
use crate::report::{f2, Table};
use crate::runner::{self, SweepCell};
use colt_workloads::scenario::Scenario;

/// The memhog fractions both figures sweep.
pub const MEMHOG_FRACTIONS: [f64; 3] = [0.0, 0.25, 0.50];

/// One benchmark's average contiguity per memhog level.
#[derive(Clone, Debug)]
pub struct MemhogRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Average contiguity at memhog 0% / 25% / 50%.
    pub averages: [f64; 3],
}

/// Results for one figure (one THS setting).
#[derive(Clone, Debug)]
pub struct MemhogFigure {
    /// True = Figure 16 (THS on); false = Figure 17 (THS off).
    pub ths: bool,
    /// Per-benchmark rows.
    pub rows: Vec<MemhogRow>,
    /// Cross-benchmark average per memhog level.
    pub averages: [f64; 3],
}

/// Runs one of the two figures.
pub fn run_figure(ths: bool, opts: &ExperimentOptions) -> MemhogFigure {
    let specs = opts.selected_benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for &fraction in &MEMHOG_FRACTIONS {
            let scenario = opts.scenario(if fraction == 0.0 {
                if ths { Scenario::default_linux() } else { Scenario::no_ths() }
            } else if ths {
                Scenario::default_with_memhog(fraction)
            } else {
                Scenario::no_ths_with_memhog(fraction)
            });
            cells.push(SweepCell::new(
                format!("fig16-17/{}/memhog({fraction})", spec.name),
                &scenario,
                spec,
                0,
                |workload| workload.contiguity().average_contiguity(),
            ));
        }
    }
    let averages = runner::expect_all(runner::run_cells_sweep(cells, &opts.sweep()));
    let rows: Vec<MemhogRow> = specs
        .iter()
        .zip(averages.chunks_exact(3))
        .map(|(spec, a)| MemhogRow { name: spec.name, averages: [a[0], a[1], a[2]] })
        .collect();
    let n = rows.len().max(1) as f64;
    let mut averages = [0.0f64; 3];
    for (i, slot) in averages.iter_mut().enumerate() {
        *slot = rows.iter().map(|r| r.averages[i]).sum::<f64>() / n;
    }
    MemhogFigure { ths, rows, averages }
}

/// Runs both figures and renders them.
pub fn run(opts: &ExperimentOptions) -> (Vec<MemhogFigure>, ExperimentOutput) {
    let figures = vec![run_figure(true, opts), run_figure(false, opts)];
    let mut tables = Vec::new();
    for fig in &figures {
        let (num, title) = if fig.ths {
            ("16", "THS on, normal compaction")
        } else {
            ("17", "THS off, normal compaction")
        };
        let mut table = Table::new(
            format!("Figure {num}: average contiguity with memhog load ({title})"),
            &["Benchmark", "no memhog", "memhog(25%)", "memhog(50%)"],
        );
        for r in &fig.rows {
            table.add_row(vec![
                r.name.to_string(),
                f2(r.averages[0]),
                f2(r.averages[1]),
                f2(r.averages[2]),
            ]);
        }
        table.add_row(vec![
            "Average".to_string(),
            f2(fig.averages[0]),
            f2(fig.averages[1]),
            f2(fig.averages[2]),
        ]);
        tables.push(table);
    }
    (figures, ExperimentOutput { id: "fig16-17", tables })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_load_reduces_contiguity_versus_moderate() {
        // Figure 16/17 macro shape: memhog(50%) sits below memhog(25%).
        let opts = ExperimentOptions::quick().with_benchmarks(&["Mcf", "Sjeng", "Mummer"]);
        let fig = run_figure(true, &opts);
        assert!(
            fig.averages[2] <= fig.averages[1] * 1.25,
            "memhog(50%) avg {:.1} should not exceed memhog(25%) avg {:.1} by much",
            fig.averages[2],
            fig.averages[1]
        );
    }

    #[test]
    fn output_has_both_figures() {
        let opts = ExperimentOptions::quick().with_benchmarks(&["Povray"]);
        let (figs, out) = run(&opts);
        assert_eq!(figs.len(), 2);
        assert!(figs[0].ths && !figs[1].ths);
        let text = out.render();
        assert!(text.contains("Figure 16"));
        assert!(text.contains("Figure 17"));
    }
}
