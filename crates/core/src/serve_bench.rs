//! `repro serve-bench` — the load generator for [`crate::serve`].
//!
//! Opens N client connections against a running `repro serve`, drives a
//! mixed translate/sweep workload through them, and publishes
//! `results/BENCH_serve.json` with the serving numbers the ROADMAP
//! cares about: p50/p99 request latency, requests per second, and the
//! sweep cache hit rate. With `--verify-sweep` it also proves the
//! determinism guarantee end to end: the sweep is requested twice over
//! the socket (the second answer must be served from the LRU cache and
//! be byte-identical) and compared against the same sweep run directly
//! in-process via [`serve::sweep_csv`] — three byte-identical copies or
//! a non-zero exit.

use crate::artifact;
use crate::serve::{self, json};
use colt_prng::rngs::SmallRng;
use colt_prng::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator parameters (one flag each; see `--help`).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Server host.
    pub host: String,
    /// Server port (resolved from `--port-file` when 0).
    pub port: u16,
    /// File to read the port from (written by `repro serve --port-file`).
    pub port_file: Option<PathBuf>,
    /// Client connections, one thread each.
    pub conns: usize,
    /// Translate requests per connection.
    pub requests: u64,
    /// Access budget per translate request.
    pub accesses: u64,
    /// Experiment for the sweep requests.
    pub sweep: String,
    /// Issue a sweep request every N translates per connection (0 = no
    /// in-traffic sweeps; `--verify-sweep` still runs its own).
    pub sweep_every: u64,
    /// Access budget for sweep requests.
    pub sweep_accesses: u64,
    /// Benchmark rotation for translates and the sweep's `bench` list.
    pub bench: String,
    /// Run the determinism check (served twice + direct in-process run).
    pub verify_sweep: bool,
    /// Send `{"op":"shutdown"}` when done.
    pub shutdown: bool,
    /// Artifact path.
    pub out: PathBuf,
    /// Transport-level retry/backoff/breaker tuning.
    pub retry: RetryPolicy,
    /// Seed for the per-worker backoff jitter streams.
    pub seed: u64,
    /// Per-request deadline sent as `"deadline_ms"` (0 = none sent;
    /// the server then applies its own ceiling).
    pub deadline_ms: u64,
    /// Suppress progress lines.
    pub quiet: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 0,
            port_file: None,
            conns: 4,
            requests: 100,
            accesses: 5_000,
            sweep: "fig18".to_string(),
            sweep_every: 0,
            sweep_accesses: 20_000,
            bench: "Gobmk".to_string(),
            verify_sweep: false,
            shutdown: false,
            out: PathBuf::from("results/BENCH_serve.json"),
            retry: RetryPolicy::default(),
            seed: 1,
            deadline_ms: 0,
            quiet: false,
        }
    }
}

// ---------------------------------------------------------------------
// Client plumbing
// ---------------------------------------------------------------------

/// One protocol connection: write a request line, read a response line.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with retries (the server may still be binding when a
    /// script launches both sides together).
    fn connect(host: &str, port: u16) -> Result<Self, String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect((host, port)) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let writer = stream
                        .try_clone()
                        .map_err(|e| format!("clone stream: {e}"))?;
                    return Ok(Client { writer, reader: BufReader::new(stream) });
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(format!("connect {host}:{port}: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    fn request(&mut self, line: &str) -> Result<json::Json, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        json::parse(response.trim()).map_err(|e| format!("bad response JSON: {e}"))
    }
}

// ---------------------------------------------------------------------
// Chaos-tolerant client: retries, backoff, circuit breaker
// ---------------------------------------------------------------------

/// Transport-retry tuning for the chaos-tolerant client.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` tries).
    pub max_retries: u32,
    /// First backoff; doubles each retry (plus jitter in `[0, base)`).
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Consecutive transport failures before the breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker holds requests before a half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            breaker_threshold: 4,
            breaker_cooldown_ms: 250,
        }
    }
}

/// The jittered exponential backoff before retry `attempt` (0-based):
/// `base * 2^attempt + (jitter % base)`, capped at the policy ceiling.
/// The jitter draw comes from the caller's seeded stream, so a bench
/// run's backoff schedule replays with its seed.
pub fn backoff_ms(policy: &RetryPolicy, attempt: u32, jitter: u64) -> u64 {
    let base = policy.base_backoff_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(16));
    exp.saturating_add(jitter % base).min(policy.max_backoff_ms.max(base))
}

/// Per-worker circuit breaker: `threshold` consecutive transport
/// failures open it, and an open breaker holds the worker out of the
/// server's face for the cooldown instead of hammering a failing
/// endpoint; the next request is the half-open probe.
struct Breaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

impl Breaker {
    fn new() -> Self {
        Breaker { consecutive_failures: 0, open_until: None }
    }

    fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_until = None;
    }

    /// Records a transport failure; returns true when this one opened
    /// the breaker.
    fn on_failure(&mut self, policy: &RetryPolicy) -> bool {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= policy.breaker_threshold.max(1) {
            self.open_until = Some(
                Instant::now() + Duration::from_millis(policy.breaker_cooldown_ms),
            );
            self.consecutive_failures = 0;
            return true;
        }
        false
    }

    /// Blocks out the cooldown if open; the call after this is the
    /// half-open probe.
    fn wait_if_open(&mut self) {
        if let Some(until) = self.open_until.take() {
            let now = Instant::now();
            if until > now {
                std::thread::sleep(until - now);
            }
        }
    }
}

/// A chaos-tolerant protocol client. Transport failures — torn frames
/// (unparseable response), mid-response resets, dropped connections,
/// refused connects — are retried with jittered exponential backoff on
/// a *fresh* connection (the old one's framing is suspect), gated by a
/// per-worker circuit breaker. Polite rejections (`"rejected":
/// "quota"|"busy"|"shed"|…`) are responses, not failures: they are
/// returned to the caller untouched, because re-asking an overloaded
/// server is exactly what load shedding asks clients not to do.
pub(crate) struct RobustClient<'a> {
    host: &'a str,
    port: u16,
    policy: RetryPolicy,
    conn: Option<Client>,
    rng: SmallRng,
    breaker: Breaker,
    tally: &'a Tally,
}

impl<'a> RobustClient<'a> {
    pub(crate) fn new(
        host: &'a str,
        port: u16,
        policy: RetryPolicy,
        seed: u64,
        tally: &'a Tally,
    ) -> Self {
        RobustClient {
            host,
            port,
            policy,
            conn: None,
            rng: SmallRng::seed_from_u64(seed ^ 0xBE11_C0DE_5EED_0001),
            breaker: Breaker::new(),
            tally,
        }
    }

    pub(crate) fn request(&mut self, line: &str) -> Result<json::Json, String> {
        let mut last_err = String::new();
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                self.tally.retries.fetch_add(1, Ordering::Relaxed);
                let jitter = self.rng.next_u64();
                std::thread::sleep(Duration::from_millis(backoff_ms(
                    &self.policy,
                    attempt - 1,
                    jitter,
                )));
            }
            self.breaker.wait_if_open();
            let mut client = match self.conn.take() {
                Some(c) => c,
                None => match Client::connect(self.host, self.port) {
                    Ok(c) => c,
                    Err(e) => {
                        self.note_failure();
                        last_err = e;
                        continue;
                    }
                },
            };
            match client.request(line) {
                Ok(response) => {
                    self.conn = Some(client);
                    self.breaker.on_success();
                    if attempt > 0 {
                        self.tally.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(response);
                }
                Err(e) => {
                    self.note_failure();
                    last_err = e;
                }
            }
        }
        Err(format!(
            "request failed after {} attempt(s): {last_err}",
            self.policy.max_retries + 1
        ))
    }

    fn note_failure(&mut self) {
        self.tally.transport_errors.fetch_add(1, Ordering::Relaxed);
        if self.breaker.on_failure(&self.policy) {
            self.tally.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

/// `p`-th percentile (0..=100) of an unsorted sample, by the
/// nearest-rank method on a sorted copy. 0.0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    sorted[rank.round() as usize]
}

#[derive(Default)]
pub(crate) struct Tally {
    pub(crate) ok: AtomicU64,
    pub(crate) rejected_quota: AtomicU64,
    pub(crate) rejected_busy: AtomicU64,
    pub(crate) rejected_shed: AtomicU64,
    pub(crate) rejected_too_large: AtomicU64,
    pub(crate) rejected_deadline: AtomicU64,
    pub(crate) rejected_malformed: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) sweeps: AtomicU64,
    pub(crate) sweep_cache_hits: AtomicU64,
    pub(crate) idem_replays: AtomicU64,
    pub(crate) transport_errors: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) recovered: AtomicU64,
    pub(crate) breaker_opens: AtomicU64,
}

pub(crate) fn classify(tally: &Tally, response: &json::Json) -> bool {
    if response.get("ok").and_then(json::Json::as_bool) == Some(true) {
        tally.ok.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    match response.get("rejected").and_then(json::Json::as_str) {
        Some("quota") => tally.rejected_quota.fetch_add(1, Ordering::Relaxed),
        Some("busy") => tally.rejected_busy.fetch_add(1, Ordering::Relaxed),
        Some("shed") => tally.rejected_shed.fetch_add(1, Ordering::Relaxed),
        Some("too_large") => tally.rejected_too_large.fetch_add(1, Ordering::Relaxed),
        Some("deadline") => tally.rejected_deadline.fetch_add(1, Ordering::Relaxed),
        Some("malformed") => tally.rejected_malformed.fetch_add(1, Ordering::Relaxed),
        _ => tally.errors.fetch_add(1, Ordering::Relaxed),
    };
    false
}

// ---------------------------------------------------------------------
// The bench run
// ---------------------------------------------------------------------

const CONFIG_ROTATION: [&str; 4] = ["baseline", "colt_sa", "colt_fa", "colt_all"];

/// The optional `"deadline_ms"` request field (empty when unset).
fn deadline_field(cfg: &BenchConfig) -> String {
    if cfg.deadline_ms > 0 {
        format!("\"deadline_ms\": {}, ", cfg.deadline_ms)
    } else {
        String::new()
    }
}

fn translate_line(cfg: &BenchConfig, bench: &str, config: &str) -> String {
    format!(
        "{{\"op\": \"translate\", {}\"benchmark\": \"{}\", \"config\": \"{config}\", \
         \"accesses\": {}}}",
        deadline_field(cfg),
        artifact::json_escape(bench),
        cfg.accesses
    )
}

/// A sweep request. The idempotency key, when given, is constant across
/// the retries of one logical request (the retry loop resends the same
/// line), which is what lets the server prove a retried sweep coalesced
/// onto the original flight instead of recomputing.
fn sweep_line(cfg: &BenchConfig, idem: Option<&str>) -> String {
    let idem = idem
        .map(|k| format!("\"idem\": \"{}\", ", artifact::json_escape(k)))
        .unwrap_or_default();
    format!(
        "{{\"op\": \"sweep\", {}{idem}\"experiment\": \"{}\", \"accesses\": {}, \
         \"bench\": \"{}\"}}",
        deadline_field(cfg),
        artifact::json_escape(&cfg.sweep),
        cfg.sweep_accesses,
        artifact::json_escape(&cfg.bench)
    )
}

fn note_sweep(tally: &Tally, response: &json::Json) {
    tally.sweeps.fetch_add(1, Ordering::Relaxed);
    let cached = response.get("cached").and_then(json::Json::as_bool) == Some(true)
        || response.get("coalesced").and_then(json::Json::as_bool) == Some(true);
    if cached {
        tally.sweep_cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    if response.get("idem_replayed").and_then(json::Json::as_bool) == Some(true) {
        tally.idem_replays.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker(
    cfg: &BenchConfig,
    benches: &[String],
    tally: &Tally,
    worker_index: usize,
) -> Result<Vec<f64>, String> {
    let mut client = RobustClient::new(
        &cfg.host,
        cfg.port,
        cfg.retry,
        cfg.seed.wrapping_add(worker_index as u64),
        tally,
    );
    let mut latencies_ms = Vec::with_capacity(cfg.requests as usize);
    for i in 0..cfg.requests {
        // Spread the rotation across workers so concurrent connections
        // ask for the same few configurations at the same time — that is
        // what batching + coalesced preparation are for.
        let step = worker_index as u64 + i;
        let bench = &benches[(step as usize) % benches.len()];
        let config = CONFIG_ROTATION[(step as usize) % CONFIG_ROTATION.len()];
        let line = translate_line(cfg, bench, config);
        let start = Instant::now();
        let response = client.request(&line)?;
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        classify(tally, &response);

        if cfg.sweep_every > 0 && (i + 1) % cfg.sweep_every == 0 {
            let idem = format!("w{worker_index}-r{i}");
            let start = Instant::now();
            let response = client.request(&sweep_line(cfg, Some(&idem)))?;
            latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
            if classify(tally, &response) {
                note_sweep(tally, &response);
            }
        }
    }
    Ok(latencies_ms)
}

/// The determinism check: the sweep served twice (second from cache)
/// must be byte-identical, and both must match the direct in-process
/// run with identical options.
fn verify_sweep(cfg: &BenchConfig, tally: &Tally) -> Result<(), String> {
    let mut client = RobustClient::new(
        &cfg.host,
        cfg.port,
        cfg.retry,
        cfg.seed ^ 0x5EED_F00D,
        tally,
    );
    let line = sweep_line(cfg, Some("verify-sweep"));
    let first = client.request(&line)?;
    let second = client.request(&line)?;
    for (which, response) in [("first", &first), ("second", &second)] {
        if response.get("ok").and_then(json::Json::as_bool) != Some(true) {
            return Err(format!(
                "{which} verification sweep failed: {}",
                response
                    .get("error")
                    .and_then(json::Json::as_str)
                    .unwrap_or("unknown error")
            ));
        }
        tally.sweeps.fetch_add(1, Ordering::Relaxed);
    }
    let first_bytes = first
        .get("bytes")
        .and_then(json::Json::as_str)
        .ok_or("first sweep response carried no bytes")?;
    let second_bytes = second
        .get("bytes")
        .and_then(json::Json::as_str)
        .ok_or("second sweep response carried no bytes")?;
    if second.get("cached").and_then(json::Json::as_bool) != Some(true) {
        return Err(
            "second identical sweep was not served from the result cache".to_string()
        );
    }
    tally.sweep_cache_hits.fetch_add(1, Ordering::Relaxed);
    if first_bytes != second_bytes {
        return Err("cached sweep bytes differ from the originally served bytes".to_string());
    }

    // The server clamps with its own max_accesses; the direct run here
    // uses the default bound, which only diverges if the operator asked
    // for more than 10M accesses per cell — keep verification budgets
    // below that.
    let opts = serve::sweep_options(
        Some(cfg.sweep_accesses),
        Some(&cfg.bench),
        None,
        colt_os_mem::policy::PolicyKind::Default,
        1,
        crate::serve::ServeConfig::default().max_accesses,
    );
    let direct = serve::sweep_csv(&cfg.sweep, &opts)?;
    if first_bytes != direct {
        return Err(format!(
            "served sweep bytes differ from the direct run ({} vs {} bytes) — \
             determinism guarantee violated",
            first_bytes.len(),
            direct.len()
        ));
    }
    Ok(())
}

/// The `BENCH_serve.json` payload.
#[allow(clippy::too_many_arguments)]
fn bench_json(
    cfg: &BenchConfig,
    tally: &Tally,
    latencies_ms: &[f64],
    wall_seconds: f64,
    verified: Option<bool>,
) -> String {
    let load = |f: &AtomicU64| f.load(Ordering::Relaxed);
    let total = latencies_ms.len() as u64;
    let sweeps = load(&tally.sweeps);
    let hits = load(&tally.sweep_cache_hits);
    let hit_rate = if sweeps > 0 { hits as f64 / sweeps as f64 } else { 0.0 };
    let rps = if wall_seconds > 0.0 { total as f64 / wall_seconds } else { 0.0 };
    format!
    (
        "{{\n  \"schema\": \"colt-bench-serve/v2\",\n  \"conns\": {},\n  \
         \"requests\": {total},\n  \"ok\": {},\n  \"rejected_quota\": {},\n  \
         \"rejected_busy\": {},\n  \"rejected_shed\": {},\n  \
         \"rejected_too_large\": {},\n  \"rejected_deadline\": {},\n  \
         \"rejected_malformed\": {},\n  \"errors\": {},\n  \
         \"transport_errors\": {},\n  \"retries\": {},\n  \"recovered\": {},\n  \
         \"breaker_opens\": {},\n  \"idem_replays\": {},\n  \
         \"wall_seconds\": {:.6},\n  \
         \"requests_per_sec\": {:.3},\n  \"p50_latency_ms\": {:.3},\n  \
         \"p99_latency_ms\": {:.3},\n  \"translate_accesses\": {},\n  \
         \"sweep_experiment\": \"{}\",\n  \"sweep_requests\": {sweeps},\n  \
         \"sweep_cache_hits\": {hits},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \
         \"verified\": {}\n}}",
        cfg.conns,
        load(&tally.ok),
        load(&tally.rejected_quota),
        load(&tally.rejected_busy),
        load(&tally.rejected_shed),
        load(&tally.rejected_too_large),
        load(&tally.rejected_deadline),
        load(&tally.rejected_malformed),
        load(&tally.errors),
        load(&tally.transport_errors),
        load(&tally.retries),
        load(&tally.recovered),
        load(&tally.breaker_opens),
        load(&tally.idem_replays),
        wall_seconds,
        rps,
        percentile(latencies_ms, 50.0),
        percentile(latencies_ms, 99.0),
        cfg.accesses,
        artifact::json_escape(&cfg.sweep),
        match verified {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        }
    )
}

/// Runs the bench against a live server and writes the artifact.
///
/// # Errors
/// Connection failures, protocol errors, a failed determinism check, or
/// an artifact-write failure — each with a description.
pub fn run(cfg: &BenchConfig) -> Result<String, String> {
    let benches: Vec<String> = cfg
        .bench
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if benches.is_empty() {
        return Err("--bench needs at least one benchmark name".to_string());
    }

    let tally = Arc::new(Tally::default());
    let start = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut worker_errors: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..cfg.conns.max(1) {
            let tally = Arc::clone(&tally);
            let benches = &benches;
            handles.push(scope.spawn(move || worker(cfg, benches, &tally, w)));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(lat)) => latencies_ms.extend(lat),
                Ok(Err(e)) => worker_errors.push(e),
                Err(_) => worker_errors.push("bench worker panicked".to_string()),
            }
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    if let Some(e) = worker_errors.first() {
        return Err(format!(
            "{} of {} bench worker(s) failed; first error: {e}",
            worker_errors.len(),
            cfg.conns
        ));
    }

    let verified = if cfg.verify_sweep {
        verify_sweep(cfg, &tally)?;
        Some(true)
    } else {
        None
    };

    if cfg.shutdown {
        let mut client =
            RobustClient::new(&cfg.host, cfg.port, cfg.retry, cfg.seed ^ 0xD1E, &tally);
        let response = client.request("{\"op\": \"shutdown\"}")?;
        if response.get("ok").and_then(json::Json::as_bool) != Some(true) {
            return Err("shutdown request was not acknowledged".to_string());
        }
    }

    let payload = bench_json(cfg, &tally, &latencies_ms, wall_seconds, verified);
    if let Some(moved) = artifact::quarantine_if_corrupt(&cfg.out)
        .map_err(|e| format!("inspect {}: {e}", cfg.out.display()))?
    {
        eprintln!(
            "serve-bench: WARNING: corrupt {} quarantined to {}",
            cfg.out.display(),
            moved.display()
        );
    }
    artifact::atomic_write_json(&cfg.out, &payload)
        .map_err(|e| format!("write {}: {e}", cfg.out.display()))?;
    Ok(payload)
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

fn bench_usage() -> String {
    "usage: repro serve-bench --port N | --port-file PATH [--host H] [--conns N]\n\
     \u{20}                        [--requests N] [--accesses N] [--sweep EXP]\n\
     \u{20}                        [--sweep-every N] [--sweep-accesses N]\n\
     \u{20}                        [--bench A,B] [--verify-sweep] [--shutdown]\n\
     \u{20}                        [--retries N] [--backoff-ms N] [--seed N]\n\
     \u{20}                        [--deadline-ms N] [--out PATH] [--quiet]\n\
     --requests N      translate requests per connection\n\
     --sweep-every N   interleave a sweep request every N translates\n\
     --verify-sweep    request the sweep twice (second must be a cache hit)\n\
     \u{20}                 and compare byte-for-byte with a direct in-process run\n\
     --shutdown        send {\"op\":\"shutdown\"} when done\n\
     --retries N       transport retries per request (jittered exp. backoff)\n\
     --backoff-ms N    first backoff; doubles per retry\n\
     --seed N          seed for the backoff jitter streams\n\
     --deadline-ms N   send a per-request deadline (0 = server default)\n\
     --out PATH        artifact path (default results/BENCH_serve.json)"
        .to_string()
}

fn resolve_port(cfg: &mut BenchConfig) -> Result<(), String> {
    if cfg.port != 0 {
        return Ok(());
    }
    let Some(path) = &cfg.port_file else {
        return Err("need --port or --port-file".to_string());
    };
    // The server writes the file after binding; a script may start both
    // sides at once, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse::<u16>() {
                if port != 0 {
                    cfg.port = port;
                    return Ok(());
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("no usable port in {} after 10s", path.display()));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// `repro serve-bench` entry point.
pub fn cli(args: &[String]) -> ExitCode {
    let mut cfg = BenchConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = args.get(i + 1);
        let mut took_value = true;
        let numeric = || -> Result<u64, String> {
            let raw = value.ok_or_else(|| format!("{arg} needs a value"))?;
            raw.parse::<u64>().map_err(|_| format!("{arg} {raw}: not a number"))
        };
        let text = || -> Result<String, String> {
            value.cloned().ok_or_else(|| format!("{arg} needs a value"))
        };
        let outcome: Result<(), String> = match arg {
            "--host" => text().map(|v| cfg.host = v),
            "--port" => numeric().and_then(|n| {
                if n == 0 || n > u64::from(u16::MAX) {
                    Err("--port must be 1..=65535".to_string())
                } else {
                    cfg.port = n as u16;
                    Ok(())
                }
            }),
            "--port-file" => text().map(|v| cfg.port_file = Some(PathBuf::from(v))),
            "--conns" => numeric().map(|n| cfg.conns = n.max(1) as usize),
            "--requests" => numeric().map(|n| cfg.requests = n),
            "--accesses" => numeric().map(|n| cfg.accesses = n.max(1)),
            "--sweep" => text().map(|v| cfg.sweep = v),
            "--sweep-every" => numeric().map(|n| cfg.sweep_every = n),
            "--sweep-accesses" => numeric().map(|n| cfg.sweep_accesses = n.max(1)),
            "--bench" => text().map(|v| cfg.bench = v),
            "--out" => text().map(|v| cfg.out = PathBuf::from(v)),
            "--retries" => numeric().map(|n| cfg.retry.max_retries = n.min(32) as u32),
            "--backoff-ms" => numeric().map(|n| cfg.retry.base_backoff_ms = n.max(1)),
            "--seed" => numeric().map(|n| cfg.seed = n),
            "--deadline-ms" => numeric().map(|n| cfg.deadline_ms = n),
            "--verify-sweep" => {
                took_value = false;
                cfg.verify_sweep = true;
                Ok(())
            }
            "--shutdown" => {
                took_value = false;
                cfg.shutdown = true;
                Ok(())
            }
            "--quiet" => {
                took_value = false;
                cfg.quiet = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{}", bench_usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown serve-bench flag '{other}'\n{}", bench_usage())),
        };
        if let Err(e) = outcome {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        i += if took_value { 2 } else { 1 };
    }
    if let Err(e) = resolve_port(&mut cfg) {
        eprintln!("serve-bench: {e}");
        return ExitCode::from(2);
    }
    if !cfg.quiet {
        println!(
            "serve-bench: {} conn(s) x {} request(s) against {}:{}",
            cfg.conns, cfg.requests, cfg.host, cfg.port
        );
    }
    match run(&cfg) {
        Ok(payload) => {
            if !cfg.quiet {
                println!("{payload}");
                println!("serve-bench: wrote {}", cfg.out.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve-bench: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank_on_a_sorted_copy() {
        let unsorted = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert!((percentile(&unsorted, 50.0) - 3.0).abs() < 1e-12);
        assert!((percentile(&unsorted, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&unsorted, 100.0) - 5.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert!((percentile(&[7.5], 99.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn bench_json_is_valid_and_carries_the_headline_fields() {
        let cfg = BenchConfig::default();
        let tally = Tally::default();
        tally.ok.store(10, Ordering::Relaxed);
        tally.sweeps.store(4, Ordering::Relaxed);
        tally.sweep_cache_hits.store(3, Ordering::Relaxed);
        let payload =
            bench_json(&cfg, &tally, &[1.0, 2.0, 3.0, 4.0], 2.0, Some(true));
        artifact::validate_json(&payload).unwrap();
        assert!(payload.contains("\"requests_per_sec\": 2.000"));
        assert!(payload.contains("\"cache_hit_rate\": 0.7500"));
        assert!(payload.contains("\"p50_latency_ms\""));
        assert!(payload.contains("\"p99_latency_ms\""));
        assert!(payload.contains("\"verified\": true"));
        let unverified = bench_json(&cfg, &Tally::default(), &[], 0.0, None);
        artifact::validate_json(&unverified).unwrap();
        assert!(unverified.contains("\"verified\": null"));
        assert!(unverified.contains("\"cache_hit_rate\": 0.0000"));
    }

    #[test]
    fn request_lines_are_valid_protocol_json() {
        let cfg = BenchConfig::default();
        let t = translate_line(&cfg, "Gobmk", "colt_all");
        let parsed = json::parse(&t).unwrap();
        assert_eq!(parsed.get("op").and_then(json::Json::as_str), Some("translate"));
        assert!(parsed.get("deadline_ms").is_none(), "no deadline unless asked");
        let s = sweep_line(&cfg, None);
        let parsed = json::parse(&s).unwrap();
        assert_eq!(parsed.get("op").and_then(json::Json::as_str), Some("sweep"));
        assert_eq!(
            parsed.get("accesses").and_then(json::Json::as_u64),
            Some(cfg.sweep_accesses)
        );
        let with_extras =
            BenchConfig { deadline_ms: 2500, ..BenchConfig::default() };
        let s = sweep_line(&with_extras, Some("w1-r7"));
        let parsed = json::parse(&s).unwrap();
        assert_eq!(parsed.get("idem").and_then(json::Json::as_str), Some("w1-r7"));
        assert_eq!(parsed.get("deadline_ms").and_then(json::Json::as_u64), Some(2500));
        let t = translate_line(&with_extras, "Gobmk", "baseline");
        let parsed = json::parse(&t).unwrap();
        assert_eq!(parsed.get("deadline_ms").and_then(json::Json::as_u64), Some(2500));
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter_and_a_cap() {
        let policy = RetryPolicy {
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            ..RetryPolicy::default()
        };
        assert!(backoff_ms(&policy, 0, 0) == 10);
        assert!(backoff_ms(&policy, 1, 0) == 20);
        assert!(backoff_ms(&policy, 2, 0) == 40);
        // Jitter adds at most base-1.
        assert!(backoff_ms(&policy, 0, u64::MAX) < 20);
        // The ceiling holds at any attempt.
        assert_eq!(backoff_ms(&policy, 20, 12345), 100);
    }

    #[test]
    fn backoff_replays_with_the_same_jitter_stream() {
        let policy = RetryPolicy::default();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for attempt in 0..8 {
            assert_eq!(
                backoff_ms(&policy, attempt, a.next_u64()),
                backoff_ms(&policy, attempt, b.next_u64())
            );
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_on_success() {
        let policy = RetryPolicy {
            breaker_threshold: 3,
            breaker_cooldown_ms: 1,
            ..RetryPolicy::default()
        };
        let mut breaker = Breaker::new();
        assert!(!breaker.on_failure(&policy));
        assert!(!breaker.on_failure(&policy));
        assert!(breaker.on_failure(&policy), "third consecutive failure opens it");
        assert!(breaker.open_until.is_some());
        breaker.wait_if_open();
        assert!(breaker.open_until.is_none(), "waiting consumes the open state");
        // After the half-open probe succeeds, the slate is clean.
        assert!(!breaker.on_failure(&policy));
        breaker.on_success();
        assert!(!breaker.on_failure(&policy));
        assert!(!breaker.on_failure(&policy));
    }

    #[test]
    fn classify_buckets_every_rejection_category() {
        let tally = Tally::default();
        for kind in ["quota", "busy", "shed", "too_large", "deadline", "malformed"] {
            let line = format!(
                "{{\"ok\": false, \"error\": \"x\", \"rejected\": \"{kind}\"}}"
            );
            assert!(!classify(&tally, &json::parse(&line).unwrap()));
        }
        assert!(!classify(
            &tally,
            &json::parse("{\"ok\": false, \"error\": \"boom\"}").unwrap()
        ));
        let load = |f: &AtomicU64| f.load(Ordering::Relaxed);
        assert_eq!(load(&tally.rejected_quota), 1);
        assert_eq!(load(&tally.rejected_busy), 1);
        assert_eq!(load(&tally.rejected_shed), 1);
        assert_eq!(load(&tally.rejected_too_large), 1);
        assert_eq!(load(&tally.rejected_deadline), 1);
        assert_eq!(load(&tally.rejected_malformed), 1);
        assert_eq!(load(&tally.errors), 1);
    }
}
