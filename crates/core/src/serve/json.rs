//! A minimal JSON reader for the serve protocol.
//!
//! The workspace is offline and std-only, so requests are parsed here
//! rather than by a crates.io dependency. [`crate::artifact`] already
//! owns a *validator* (is this well-formed?); the server additionally
//! needs the *values* — hence this small tree parser. It accepts
//! exactly standard JSON (objects, arrays, strings with escapes
//! including `\uXXXX`, numbers, booleans, null), bounds nesting depth,
//! and reports errors with byte offsets so a client can debug its own
//! request line.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 carries every integer the protocol uses exactly,
    /// up to 2^53 — far above any access budget or port).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value
    /// on lookup-by-iteration order below: `get` returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if this is a
    /// number representable as one (negative and fractional values are
    /// rejected — every protocol integer is a count).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number (fractions included —
    /// latencies and rates, where [`as_u64`] covers the counts).
    ///
    /// [`as_u64`]: Json::as_u64
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one complete JSON value (trailing whitespace allowed,
/// trailing garbage is an error).
///
/// # Errors
/// A message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(format!("unexpected byte 0x{other:02x} at offset {}", self.pos))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at offset {}", self.pos))?;
        let text = std::str::from_utf8(slice)
            .map_err(|_| format!("non-ASCII \\u escape at offset {}", self.pos))?;
        let code = u16::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape at offset {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes.get(self.pos..self.pos + 2)
                                    != Some(b"\\u")
                                {
                                    return Err(format!(
                                        "lone high surrogate at offset {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "bad low surrogate at offset {}",
                                        self.pos
                                    ));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code).ok_or_else(|| {
                                    format!("bad surrogate pair at offset {}", self.pos)
                                })?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(format!(
                                    "lone low surrogate at offset {}",
                                    self.pos
                                ));
                            } else {
                                char::from_u32(u32::from(hi)).ok_or_else(|| {
                                    format!("bad \\u escape at offset {}", self.pos)
                                })?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at offset {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!(
                        "unescaped control byte 0x{b:02x} at offset {}",
                        self.pos
                    ))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input arrived as &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_requests() {
        let v = parse(
            "{\"op\": \"sweep\", \"experiment\": \"fig18\", \"accesses\": 30000, \
             \"bench\": \"Gobmk,Bzip2\", \"deep\": {\"list\": [1, 2.5, -3, true, null]}}",
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("sweep"));
        assert_eq!(v.get("accesses").and_then(Json::as_u64), Some(30_000));
        assert_eq!(
            v.get("deep").and_then(|d| d.get("list")),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0),
                Json::Bool(true),
                Json::Null,
            ]))
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings_including_surrogate_pairs() {
        let v = parse("\"a\\n\\t\\\"b\\\\c\\u0041\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"b\\cA\u{1F600}"));
        assert!(parse("\"\\uD800\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\uDC00\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\q\"").is_err(), "unknown escape");
    }

    #[test]
    fn round_trips_artifact_escaping() {
        // The server escapes sweep CSV bytes with artifact::json_escape;
        // clients (and serve-bench) must get the original back.
        let original = "name,value\n\"quoted, cell\",1\nunicode: \u{3bb}\ttab\n";
        let line = format!("{{\"bytes\": \"{}\"}}", crate::artifact::json_escape(original));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("bytes").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "{\"a\"}", "{\"a\":}", "[1,]", "{\"a\":1,}", "tru", "1 2",
            "{\"a\": 1} x", "\"unterminated", "{\"a\": 0x10}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        assert!(parse("01").is_err() || parse("01").is_ok(), "leading zeros tolerated");
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
    }
}
