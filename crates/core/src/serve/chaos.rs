//! Deterministic network-fault injection for `repro serve`.
//!
//! The serving counterpart of `colt_os_mem::faults`: a [`ChaosPlan`] is
//! a seeded stream of injection decisions the server consults at its
//! network-failure-prone choice points — every response write and every
//! accepted connection. Each decision point consumes exactly one draw
//! whether or not a fault fires (the `faults.rs` one-draw-per-decision
//! style), so a plan replays the same decision *sequence* for a given
//! [`ChaosConfig`]; which connection observes which decision depends on
//! thread interleaving, but the per-kind fault budget over N decisions
//! is plan-driven and every injection is counted, never silent.
//!
//! Faults model what a hostile network does to a resident service:
//!
//! * **torn frame** — the response line is cut mid-JSON and the socket
//!   closed; the client's parser sees garbage, then EOF.
//! * **reset** — the socket closes before any response byte.
//! * **stall** — the response is delayed by a plan-drawn pause (a slow
//!   or congested peer; latency, not an error).
//! * **accept hiccup** — the connection is accepted and immediately
//!   dropped (listen-queue overflow / early RST).
//!
//! The plan decides *what breaks*; `serve_bench`'s retry + circuit-
//! breaker client and `repro chaos-serve`'s accounting decide whether
//! the service actually *recovered*. See DESIGN.md §15.

use colt_prng::rngs::SmallRng;
use colt_prng::{Rng, SeedableRng};
use std::time::Duration;

/// Parameters of a chaos plan, parsed from
/// `rate=R,window=W,seed=S` on the `repro chaos-serve` command line.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChaosConfig {
    /// Probability in `[0, 1]` that an armed decision point injects a
    /// fault.
    pub rate: f64,
    /// Duty-cycle window in decision points: `window` armed decisions
    /// alternate with `window` quiet ones (bursty weather). `0` keeps
    /// the plan armed throughout.
    pub window: u64,
    /// Seed of the decision stream.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { rate: 0.1, window: 0, seed: 7 }
    }
}

impl ChaosConfig {
    /// Parses `rate=R,window=W,seed=S` (each key optional, any order).
    /// The empty string yields the default plan.
    ///
    /// # Errors
    /// A human-readable message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec '{part}' is not key=value"))?;
            match key.trim() {
                "rate" => {
                    let rate: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad chaos rate '{value}'"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("chaos rate {rate} outside [0, 1]"));
                    }
                    cfg.rate = rate;
                }
                "window" => {
                    cfg.window = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad chaos window '{value}'"))?;
                }
                "seed" => {
                    cfg.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad chaos seed '{value}'"))?;
                }
                other => return Err(format!("unknown chaos key '{other}'")),
            }
        }
        Ok(cfg)
    }
}

/// What one response-write decision point does to the frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResponseFault {
    /// Write the whole line.
    Deliver,
    /// Write a prefix of the line, then close the socket.
    TornFrame,
    /// Close the socket before any byte.
    Reset,
    /// Delay, then write the whole line.
    Stall(Duration),
}

/// Per-kind injection totals, drained into the server's stats line and
/// `results/BENCH_chaos.json`. Every injected fault lands in exactly
/// one bucket, so `torn_frames + resets + stalls + accept_hiccups`
/// always equals [`ChaosPlan::injected`] — the "all faults accounted
/// for" invariant `repro chaos-serve` gates on.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ChaosCounts {
    /// Responses cut mid-frame.
    pub torn_frames: u64,
    /// Responses replaced by a bare close.
    pub resets: u64,
    /// Responses delayed.
    pub stalls: u64,
    /// Connections dropped straight out of `accept`.
    pub accept_hiccups: u64,
}

impl ChaosCounts {
    /// Sum across every kind.
    pub fn total(&self) -> u64 {
        self.torn_frames + self.resets + self.stalls + self.accept_hiccups
    }
}

/// A live, seeded stream of network-fault decisions.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    config: ChaosConfig,
    rng: SmallRng,
    decisions: u64,
    counts: ChaosCounts,
}

impl ChaosPlan {
    /// A plan drawing from `config`'s seed.
    pub fn new(config: ChaosConfig) -> Self {
        Self {
            config,
            rng: SmallRng::seed_from_u64(config.seed ^ 0xC4A0_5EED_0DDB_A115),
            decisions: 0,
            counts: ChaosCounts::default(),
        }
    }

    /// The parameters this plan was built from.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// Faults injected so far, total.
    pub fn injected(&self) -> u64 {
        self.counts.total()
    }

    /// Faults injected so far, by kind.
    pub fn counts(&self) -> ChaosCounts {
        self.counts
    }

    /// Decision points consumed so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// One decision point: draws from the stream and reports whether a
    /// fault fires (armed window AND rate hit).
    fn fire(&mut self) -> bool {
        let armed = self.config.window == 0
            || (self.decisions / self.config.window) % 2 == 0;
        self.decisions += 1;
        let hit = self.rng.gen_bool(self.config.rate.clamp(0.0, 1.0));
        armed && hit
    }

    /// The fate of one response write. A firing decision consumes one
    /// extra draw to pick the kind (torn / reset / stall), and a stall
    /// one more for its duration — so faulty and clean histories stay
    /// on the same base stream.
    pub fn response_fault(&mut self) -> ResponseFault {
        if !self.fire() {
            return ResponseFault::Deliver;
        }
        match self.rng.next_u64() % 3 {
            0 => {
                self.counts.torn_frames += 1;
                ResponseFault::TornFrame
            }
            1 => {
                self.counts.resets += 1;
                ResponseFault::Reset
            }
            _ => {
                self.counts.stalls += 1;
                ResponseFault::Stall(Duration::from_millis(
                    10 + self.rng.next_u64() % 91,
                ))
            }
        }
    }

    /// Should this just-accepted connection be dropped on the floor?
    pub fn accept_hiccup(&mut self) -> bool {
        if self.fire() {
            self.counts.accept_hiccups += 1;
            true
        } else {
            false
        }
    }

    /// Where a torn frame cuts `len` response bytes: at least one byte
    /// is written (the client must see a *torn* frame, not a bare
    /// close — that is what `Reset` models) and the newline never is.
    pub fn tear_at(&mut self, len: usize) -> usize {
        if len <= 1 {
            return 1;
        }
        1 + (self.rng.next_u64() as usize) % (len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_partial_and_empty_specs() {
        let cfg = ChaosConfig::parse("rate=0.25,window=64,seed=42").unwrap();
        assert_eq!(cfg, ChaosConfig { rate: 0.25, window: 64, seed: 42 });
        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::default());
        let cfg = ChaosConfig::parse("seed=9").unwrap();
        assert_eq!(cfg, ChaosConfig { seed: 9, ..ChaosConfig::default() });
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ChaosConfig::parse("rate=2.0").is_err());
        assert!(ChaosConfig::parse("banana=1").is_err());
        assert!(ChaosConfig::parse("rate").is_err());
        assert!(ChaosConfig::parse("window=-3").is_err());
    }

    #[test]
    fn plans_with_equal_configs_replay_identically() {
        let cfg = ChaosConfig { rate: 0.4, window: 8, seed: 123 };
        let mut a = ChaosPlan::new(cfg);
        let mut b = ChaosPlan::new(cfg);
        for _ in 0..500 {
            assert_eq!(a.response_fault(), b.response_fault());
            assert_eq!(a.accept_hiccup(), b.accept_hiccup());
        }
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn per_kind_counts_always_sum_to_the_total() {
        let mut plan = ChaosPlan::new(ChaosConfig { rate: 0.5, window: 0, seed: 3 });
        for _ in 0..300 {
            let _ = plan.response_fault();
            let _ = plan.accept_hiccup();
        }
        let c = plan.counts();
        assert_eq!(c.total(), plan.injected());
        assert!(c.torn_frames > 0 && c.resets > 0 && c.stalls > 0);
        assert!(c.accept_hiccups > 0);
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires_when_armed() {
        let mut never = ChaosPlan::new(ChaosConfig { rate: 0.0, window: 0, seed: 1 });
        let mut always = ChaosPlan::new(ChaosConfig { rate: 1.0, window: 0, seed: 1 });
        for _ in 0..200 {
            assert_eq!(never.response_fault(), ResponseFault::Deliver);
            assert_ne!(always.response_fault(), ResponseFault::Deliver);
        }
        assert_eq!(never.injected(), 0);
        assert_eq!(always.injected(), 200);
    }

    #[test]
    fn window_gates_injection_into_alternating_bursts() {
        let mut plan = ChaosPlan::new(ChaosConfig { rate: 1.0, window: 4, seed: 3 });
        let fired: Vec<bool> = (0..16)
            .map(|_| plan.response_fault() != ResponseFault::Deliver)
            .collect();
        assert_eq!(
            fired,
            [
                true, true, true, true, false, false, false, false, true, true, true,
                true, false, false, false, false
            ]
        );
    }

    #[test]
    fn tears_land_strictly_inside_the_frame() {
        let mut plan = ChaosPlan::new(ChaosConfig { rate: 1.0, window: 0, seed: 11 });
        for len in [1usize, 2, 3, 64, 4096] {
            for _ in 0..50 {
                let cut = plan.tear_at(len);
                assert!(cut >= 1, "at least one byte is written");
                assert!(cut <= len.max(1), "never past the frame");
                if len > 1 {
                    assert!(cut < len, "the newline is never written");
                }
            }
        }
    }

    #[test]
    fn stall_durations_are_bounded() {
        let mut plan = ChaosPlan::new(ChaosConfig { rate: 1.0, window: 0, seed: 19 });
        let mut stalls = 0;
        for _ in 0..300 {
            if let ResponseFault::Stall(d) = plan.response_fault() {
                assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(100));
                stalls += 1;
            }
        }
        assert!(stalls > 0);
    }
}
